//! `mmhew-campaign` — declarative, sharded, resumable parameter sweeps.
//!
//! A *campaign* is a named parameter grid ([`SweepSpec`]) over the
//! quantities the ICDCS 2011 reproduction studies — network size,
//! channel universe, availability, loss, jamming, churn, robustness,
//! start staggering — executed point by point through the unified
//! [`mmhew_discovery::Scenario`] builder and aggregated into a single
//! deterministic JSON artifact.
//!
//! Three properties define the subsystem (each asserted by tests):
//!
//! 1. **Deterministic point addressing** — every repetition's randomness
//!    derives from `(seed, name, point id, rep)` via [`point_seed`], so
//!    any point can be re-run in isolation ([`run_point`]) and produce
//!    the byte-identical manifest line the full campaign would record.
//! 2. **Sharded work stealing** — repetitions are cut into fixed-size
//!    shards and pooled across points through
//!    [`mmhew_harness::parallel_reps`]; shard/thread/chunk layout never
//!    influences results, including floating-point aggregation order.
//! 3. **Resumable checkpoints** — completed points stream into a JSONL
//!    manifest; a re-launch with `resume` skips them, and the final
//!    artifact is byte-identical to an uninterrupted run's.
//!
//! The `campaign` binary (in this crate) drives it from the command
//! line: `campaign --spec sweep.json [--resume] [--jobs N]`, or
//! `campaign --smoke` for the built-in 4-point CI spec. A finished (or
//! in-flight) manifest can be rendered into a self-contained static HTML
//! report — quantile charts per swept axis plus a point table with
//! replay commands — via `campaign explore --manifest FILE.jsonl`
//! ([`render_explorer`]).

pub mod explorer;
pub mod json;
pub mod run;
pub mod spec;

pub use explorer::{render_explorer, ExplorerError, ExplorerOptions};
pub use run::{
    point_seed, run_campaign, run_point, CampaignError, CampaignOptions, CampaignOutcome,
    MANIFEST_SCHEMA_VERSION,
};
pub use spec::{AxisSpec, EngineKind, GridMode, Point, SpecError, SweepSpec, AXES};
