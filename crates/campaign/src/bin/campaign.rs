//! Campaign harness: executes a sweep spec and writes the aggregated
//! artifact, resumably.
//!
//! ```text
//! campaign --spec sweep.json [--out DIR] [--resume] [--jobs N]
//! campaign --smoke                        # built-in 4-point CI spec
//! campaign --spec sweep.json --point 3    # one point, line to stdout
//! ```
//!
//! Flags: `--spec <file.json>` (the sweep, see `mmhew_campaign::spec`),
//! `--out <dir>` (default `campaign-out`), `--resume` (skip points
//! already in the manifest), `--smoke` (ignore `--spec`, run the
//! built-in smoke grid), `--point <id>` (run one point in isolation and
//! print its record instead of running the campaign), `--max-points <n>`
//! (stop after n new points — for testing interruption), and the
//! standard `--jobs <n>`.

use mmhew_campaign::{run_campaign, run_point, CampaignOptions, SweepSpec};
use mmhew_harness::cli::Args;
use mmhew_harness::set_jobs;

fn usage() -> ! {
    eprintln!(
        "usage: campaign (--spec FILE.json | --smoke) [--out DIR] [--resume] \
         [--point ID] [--max-points N] [--jobs N]"
    );
    std::process::exit(2);
}

fn main() {
    let args = match Args::parse().and_then(|a| {
        a.expect_only(
            &["spec", "out", "point", "max-points"],
            &["resume", "smoke"],
        )?;
        Ok(a)
    }) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    };
    match args.jobs() {
        Ok(Some(jobs)) => set_jobs(jobs),
        Ok(None) => {}
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    }

    let spec = if args.flag("smoke") {
        SweepSpec::smoke()
    } else {
        let Some(path) = args.raw("spec") else {
            eprintln!("campaign: --spec FILE.json (or --smoke) is required");
            usage();
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("campaign: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match SweepSpec::from_json(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("campaign: {path}: {e}");
                std::process::exit(1);
            }
        }
    };

    if let Some(id) = args.raw("point") {
        let Ok(id) = id.parse::<u64>() else {
            eprintln!("campaign: --point {id}: not a point id");
            usage();
        };
        match run_point(&spec, id) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("campaign: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut opts = CampaignOptions::new(args.raw("out").unwrap_or("campaign-out"));
    opts.resume = args.flag("resume");
    opts.max_points = match args.get_or("max-points", 0usize) {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    };

    match run_campaign(&spec, &opts) {
        Ok(outcome) => {
            println!(
                "campaign {:?}: {} points ({} run, {} resumed)",
                spec.name, outcome.total, outcome.completed, outcome.skipped
            );
            match &outcome.artifact {
                Some(path) => println!("artifact: {}", path.display()),
                None => println!(
                    "interrupted after {} of {} points; re-run with --resume to finish",
                    outcome.completed + outcome.skipped,
                    outcome.total
                ),
            }
        }
        Err(e) => {
            eprintln!("campaign: {e}");
            std::process::exit(1);
        }
    }
}
