//! Campaign harness: executes a sweep spec and writes the aggregated
//! artifact, resumably.
//!
//! ```text
//! campaign --spec sweep.json [--out DIR] [--resume] [--jobs N]
//! campaign --smoke                        # built-in 4-point CI spec
//! campaign --spec sweep.json --point 3    # one point, line to stdout
//! campaign explore --manifest out/name.manifest.jsonl --out report.html
//! ```
//!
//! Flags: `--spec <file.json>` (the sweep, see `mmhew_campaign::spec`),
//! `--out <dir>` (default `campaign-out`), `--resume` (skip points
//! already in the manifest), `--smoke` (ignore `--spec`, run the
//! built-in smoke grid), `--point <id>` (run one point in isolation and
//! print its record instead of running the campaign), `--max-points <n>`
//! (stop after n new points — for testing interruption), and the
//! standard `--jobs <n>`.
//!
//! The `explore` subcommand renders a manifest into a single
//! self-contained HTML page (inline SVG quantile charts per swept axis,
//! point table with replay commands): `--manifest <file.jsonl>`
//! (required), `--out <file.html>` (default next to the manifest), and
//! `--spec <file.json>` or `--smoke` to label the replay commands.

use mmhew_campaign::{
    render_explorer, run_campaign, run_point, CampaignOptions, ExplorerOptions, SweepSpec,
};
use mmhew_harness::cli::Args;
use mmhew_harness::set_jobs;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: campaign (--spec FILE.json | --smoke) [--out DIR] [--resume] \
         [--point ID] [--max-points N] [--jobs N]\n\
         \x20      campaign explore --manifest FILE.jsonl [--out FILE.html] \
         (--spec FILE.json | --smoke)"
    );
    std::process::exit(2);
}

/// `campaign explore`: manifest JSONL → static HTML report.
fn explore(rest: Vec<String>) {
    let args = match Args::parse_from(rest).and_then(|a| {
        a.expect_only(&["manifest", "out", "spec"], &["smoke"])?;
        Ok(a)
    }) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign explore: {e}");
            usage();
        }
    };
    let Some(manifest_path) = args.raw("manifest") else {
        eprintln!("campaign explore: --manifest FILE.jsonl is required");
        usage();
    };
    let manifest = match std::fs::read_to_string(manifest_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("campaign explore: cannot read {manifest_path}: {e}");
            std::process::exit(1);
        }
    };
    // "out/name.manifest.jsonl" → title "name", default out
    // "out/name.explorer.html".
    let stem = Path::new(manifest_path)
        .file_name()
        .and_then(|s| s.to_str())
        .map(|s| s.trim_end_matches(".jsonl").trim_end_matches(".manifest"))
        .unwrap_or("campaign");
    let out = args.raw("out").map(String::from).unwrap_or_else(|| {
        Path::new(manifest_path)
            .with_file_name(format!("{stem}.explorer.html"))
            .display()
            .to_string()
    });
    let replay = if args.flag("smoke") {
        "campaign --smoke".to_string()
    } else if let Some(spec) = args.raw("spec") {
        format!("campaign --spec {spec}")
    } else {
        "campaign --spec <spec.json>".to_string()
    };
    match render_explorer(&manifest, &ExplorerOptions::new(stem, replay)) {
        Ok(html) => {
            if let Err(e) = std::fs::write(&out, &html) {
                eprintln!("campaign explore: cannot write {out}: {e}");
                std::process::exit(1);
            }
            println!("wrote {out} ({} bytes)", html.len());
        }
        Err(e) => {
            eprintln!("campaign explore: {manifest_path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("explore") {
        explore(argv.split_off(2));
        return;
    }
    let args = match Args::parse().and_then(|a| {
        a.expect_only(
            &["spec", "out", "point", "max-points"],
            &["resume", "smoke"],
        )?;
        Ok(a)
    }) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    };
    match args.jobs() {
        Ok(Some(jobs)) => set_jobs(jobs),
        Ok(None) => {}
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    }

    let spec = if args.flag("smoke") {
        SweepSpec::smoke()
    } else {
        let Some(path) = args.raw("spec") else {
            eprintln!("campaign: --spec FILE.json (or --smoke) is required");
            usage();
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("campaign: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match SweepSpec::from_json(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("campaign: {path}: {e}");
                std::process::exit(1);
            }
        }
    };

    if let Some(id) = args.raw("point") {
        let Ok(id) = id.parse::<u64>() else {
            eprintln!("campaign: --point {id}: not a point id");
            usage();
        };
        match run_point(&spec, id) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("campaign: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut opts = CampaignOptions::new(args.raw("out").unwrap_or("campaign-out"));
    opts.resume = args.flag("resume");
    opts.max_points = match args.get_or("max-points", 0usize) {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    };

    match run_campaign(&spec, &opts) {
        Ok(outcome) => {
            println!(
                "campaign {:?}: {} points ({} run, {} resumed)",
                spec.name, outcome.total, outcome.completed, outcome.skipped
            );
            match &outcome.artifact {
                Some(path) => println!("artifact: {}", path.display()),
                None => println!(
                    "interrupted after {} of {} points; re-run with --resume to finish",
                    outcome.completed + outcome.skipped,
                    outcome.total
                ),
            }
        }
        Err(e) => {
            eprintln!("campaign: {e}");
            std::process::exit(1);
        }
    }
}
