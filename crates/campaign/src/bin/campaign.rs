//! Campaign harness: executes a sweep spec and writes the aggregated
//! artifact, resumably — locally or through a `campaign-server`.
//!
//! ```text
//! campaign --spec sweep.json [--out DIR] [--resume] [--jobs N]
//! campaign --smoke                        # built-in 4-point CI spec
//! campaign --spec sweep.json --point 3    # one point, line to stdout
//! campaign submit --server URL (--spec sweep.json | --smoke) [--watch]
//! campaign explore --manifest out/name.manifest.jsonl --out report.html
//! campaign explore --server URL --out report.html
//! ```
//!
//! Flags: `--spec <file.json>` (the sweep, see `mmhew_campaign::spec`),
//! `--out <dir>` (default `campaign-out`), `--resume` (skip points
//! already in the manifest), `--smoke` (ignore `--spec`, run the
//! built-in smoke grid), `--point <id>` (run one point in isolation and
//! print its record instead of running the campaign), `--max-points <n>`
//! (stop after n new points — for testing interruption), and the
//! standard `--jobs <n>`.
//!
//! The `submit` subcommand hands the spec to a running `campaign-server`
//! coordinator (`mmhew-serve`) instead of executing locally: `--server
//! <url>` (required), `--spec <file.json>` or `--smoke`, and `--watch`
//! to poll `GET /status` until the worker fleet finishes.
//!
//! The `explore` subcommand renders a manifest into a single
//! self-contained HTML page (inline SVG quantile charts per swept axis,
//! point table with replay commands): `--manifest <file.jsonl>` or
//! `--server <url>` (fetches the live manifest via `GET /manifest`),
//! `--out <file.html>` (default next to the manifest, or
//! `<name>.explorer.html` in the working directory for `--server`), and
//! `--spec <file.json>` or `--smoke` to label the replay commands.

use mmhew_campaign::json::Value;
use mmhew_campaign::{
    client, render_explorer, run_campaign, run_point, CampaignOptions, ExplorerOptions, SweepSpec,
};
use mmhew_harness::cli::Args;
use mmhew_harness::set_jobs;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: campaign (--spec FILE.json | --smoke) [--out DIR] [--resume] \
         [--point ID] [--max-points N] [--jobs N]\n\
         \x20      campaign submit --server URL (--spec FILE.json | --smoke) [--watch]\n\
         \x20      campaign explore (--manifest FILE.jsonl | --server URL) \
         [--out FILE.html] (--spec FILE.json | --smoke)"
    );
    std::process::exit(2);
}

/// Loads the spec named by `--spec` / `--smoke` (shared by the root
/// command and `submit`).
fn spec_from_args(args: &Args, context: &str) -> SweepSpec {
    if args.flag("smoke") {
        return SweepSpec::smoke();
    }
    let Some(path) = args.raw("spec") else {
        eprintln!("{context}: --spec FILE.json (or --smoke) is required");
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{context}: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match SweepSpec::from_json(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{context}: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `campaign submit`: hand the spec to a coordinator; optionally watch.
fn submit(rest: Vec<String>) {
    let args = match Args::parse_from(rest).and_then(|a| {
        a.expect_only(&["server", "spec"], &["smoke", "watch"])?;
        Ok(a)
    }) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign submit: {e}");
            usage();
        }
    };
    let Some(server) = args.raw("server") else {
        eprintln!("campaign submit: --server URL is required");
        usage();
    };
    let spec = spec_from_args(&args, "campaign submit");
    let body = format!(
        "{{\"schema_version\":{},\"spec\":{}}}",
        client::WIRE_SCHEMA_VERSION,
        spec.to_json()
    );
    match client::post(server, "/spec", &body) {
        Ok(resp) if resp.status == 200 => {
            println!("campaign submit: {:?} accepted by {server}", spec.name);
        }
        Ok(resp) => {
            let detail = resp
                .json()
                .ok()
                .and_then(|v| v.get("error").and_then(Value::as_str).map(String::from))
                .unwrap_or(resp.body);
            eprintln!(
                "campaign submit: {server} refused ({}): {detail}",
                resp.status
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("campaign submit: cannot reach {server}: {e}");
            std::process::exit(1);
        }
    }
    if !args.flag("watch") {
        return;
    }
    loop {
        std::thread::sleep(std::time::Duration::from_millis(1000));
        let status = match client::get(server, "/status").and_then(|r| {
            r.json()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
        }) {
            Ok(v) => v,
            Err(_) => {
                // Coordinators exit shortly after completion; treat a
                // vanished server as the campaign having finished.
                println!("campaign submit: coordinator gone; campaign finished");
                return;
            }
        };
        let done = status.get("done").and_then(Value::as_u64).unwrap_or(0);
        let total = status.get("total").and_then(Value::as_u64).unwrap_or(0);
        let leased = status.get("leased").and_then(Value::as_u64).unwrap_or(0);
        println!("campaign submit: {done}/{total} done, {leased} leased");
        if status.get("complete").and_then(Value::as_bool) == Some(true) {
            println!("campaign submit: campaign complete");
            return;
        }
    }
}

/// `campaign explore`: manifest JSONL → static HTML report.
fn explore(rest: Vec<String>) {
    let args = match Args::parse_from(rest).and_then(|a| {
        a.expect_only(&["manifest", "out", "spec", "server"], &["smoke"])?;
        Ok(a)
    }) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign explore: {e}");
            usage();
        }
    };
    let (manifest, source) = if let Some(server) = args.raw("server") {
        match client::get(server, "/manifest") {
            Ok(resp) if resp.status == 200 => (resp.body, server.to_string()),
            Ok(resp) => {
                eprintln!(
                    "campaign explore: {server} returned {}: {}",
                    resp.status, resp.body
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("campaign explore: cannot reach {server}: {e}");
                std::process::exit(1);
            }
        }
    } else if let Some(manifest_path) = args.raw("manifest") {
        match std::fs::read_to_string(manifest_path) {
            Ok(text) => (text, manifest_path.to_string()),
            Err(e) => {
                eprintln!("campaign explore: cannot read {manifest_path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!("campaign explore: --manifest FILE.jsonl or --server URL is required");
        usage();
    };
    // "out/name.manifest.jsonl" → title "name"; a server manifest carries
    // the name in its spec-echo header.
    let stem = if args.raw("server").is_some() {
        manifest
            .lines()
            .next()
            .and_then(|l| mmhew_campaign::json::parse(l).ok())
            .and_then(|v| {
                v.get("spec")
                    .and_then(|s| s.get("name"))
                    .and_then(Value::as_str)
                    .map(String::from)
            })
            .unwrap_or_else(|| "campaign".to_string())
    } else {
        Path::new(&source)
            .file_name()
            .and_then(|s| s.to_str())
            .map(|s| s.trim_end_matches(".jsonl").trim_end_matches(".manifest"))
            .unwrap_or("campaign")
            .to_string()
    };
    let out = args.raw("out").map(String::from).unwrap_or_else(|| {
        if args.raw("server").is_some() {
            format!("{stem}.explorer.html")
        } else {
            Path::new(&source)
                .with_file_name(format!("{stem}.explorer.html"))
                .display()
                .to_string()
        }
    });
    let replay = if args.flag("smoke") {
        "campaign --smoke".to_string()
    } else if let Some(spec) = args.raw("spec") {
        format!("campaign --spec {spec}")
    } else {
        "campaign --spec <spec.json>".to_string()
    };
    match render_explorer(&manifest, &ExplorerOptions::new(&stem, replay)) {
        Ok(html) => {
            if let Err(e) = std::fs::write(&out, &html) {
                eprintln!("campaign explore: cannot write {out}: {e}");
                std::process::exit(1);
            }
            println!("wrote {out} ({} bytes)", html.len());
        }
        Err(e) => {
            eprintln!("campaign explore: {source}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().collect();
    match argv.get(1).map(String::as_str) {
        Some("explore") => {
            explore(argv.split_off(2));
            return;
        }
        Some("submit") => {
            submit(argv.split_off(2));
            return;
        }
        _ => {}
    }
    let args = match Args::parse().and_then(|a| {
        a.expect_only(
            &["spec", "out", "point", "max-points"],
            &["resume", "smoke"],
        )?;
        Ok(a)
    }) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    };
    match args.jobs() {
        Ok(Some(jobs)) => set_jobs(jobs),
        Ok(None) => {}
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    }

    let spec = spec_from_args(&args, "campaign");

    if let Some(id) = args.raw("point") {
        let Ok(id) = id.parse::<u64>() else {
            eprintln!("campaign: --point {id}: not a point id");
            usage();
        };
        match run_point(&spec, id) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("campaign: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut opts = CampaignOptions::new(args.raw("out").unwrap_or("campaign-out"));
    opts.resume = args.flag("resume");
    opts.max_points = match args.get_or("max-points", 0usize) {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(e) => {
            eprintln!("campaign: {e}");
            usage();
        }
    };

    match run_campaign(&spec, &opts) {
        Ok(outcome) => {
            println!(
                "campaign {:?}: {} points ({} run, {} resumed)",
                spec.name, outcome.total, outcome.completed, outcome.skipped
            );
            match &outcome.artifact {
                Some(path) => println!("artifact: {}", path.display()),
                None => println!(
                    "interrupted after {} of {} points; re-run with --resume to finish",
                    outcome.completed + outcome.skipped,
                    outcome.total
                ),
            }
        }
        Err(e) => {
            eprintln!("campaign: {e}");
            std::process::exit(1);
        }
    }
}
