//! Point execution and manifest I/O — the location-independent core the
//! campaign engine and the campaign *service* (`mmhew-serve`) share.
//!
//! Everything here is a pure function of `(spec, point id)` plus the
//! bytes already on disk:
//!
//! * [`run_point_line`] compiles one grid point into a
//!   [`mmhew_discovery::Scenario`], runs its repetitions shard by shard
//!   (merging aggregates in shard order, so floating-point sums never
//!   depend on scheduling), and renders the manifest line — the same
//!   bytes whether it runs in-process, on a worker across the network,
//!   or twice after a crash.
//! * The manifest helpers ([`manifest_header`], [`ensure_manifest_header`],
//!   [`load_manifest`], [`append_manifest`], [`write_artifact_file`])
//!   implement the checkpoint format: a *spec-echo header* line
//!   (`{"schema_version":…,"spec":…}`) followed by one JSON line per
//!   completed point. Appends are whole lines, so a crash leaves at most
//!   one torn final line; loading drops torn data lines, and a torn or
//!   missing header is rewritten rather than aborting a resume.
//!
//! The single-process driver ([`crate::run_campaign`]) and the
//! coordinator/worker pair in `mmhew-serve` are both thin shells over
//! this module, which is what makes a distributed campaign's manifest
//! byte-identical to a single-process run of the same spec and seed.

use crate::json::{self, Value};
use crate::run::CampaignError;
use crate::spec::{EngineKind, Point, SweepSpec};
use mmhew_discovery::{
    AsyncAlgorithm, AsyncParams, Engine, ProtocolError, Scenario, SyncAlgorithm, SyncParams,
    SyncScenario,
};
use mmhew_dynamics::{poisson_churn, ChurnConfig, DynamicsSchedule};
use mmhew_engine::{AsyncRunConfig, StartSchedule, SyncRunConfig};
use mmhew_faults::{FaultPlan, JamSchedule, LinkLossModel};
use mmhew_spectrum::{AvailabilityModel, ChannelSet};
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::{Histogram, SeedTree, Welford};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Repetitions per shard: small enough that work stealing balances
/// heterogeneous points, large enough to amortize scheduling.
pub(crate) const REPS_PER_SHARD: u64 = 4;

/// Schema version stamped on every manifest line (and therefore on each
/// entry of the artifact's `points` array) and on the spec-echo header.
///
/// Version history:
///
/// * **1** — first stamped shape: `schema_version`, `point`, `params`,
///   `reps`, `completed`, `failures`, `mean`, `stddev`, `min`, `max`,
///   `p50`, `p90`, `p99`. Lines *without* the field (written before
///   versioning existed) are the same shape minus the stamp and are
///   accepted by every reader; lines stamped with a *newer* version are
///   rejected rather than misread. The spec-echo header
///   (`{"schema_version":1,"spec":{…}}`) joined the format alongside the
///   campaign service; readers ignore it when absent.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// The seed subtree owning all randomness of one point: derived from the
/// master seed, the campaign name, and the point's *numeric grid id* —
/// nothing else. `branch("net")` seeds the network, `branch("dynamics")`
/// the generated schedules, and `branch("run").index(rep)` each
/// repetition.
///
/// When the categorical `protocol` axis is swept, the point id is reduced
/// modulo [`SweepSpec::numeric_grid_len`] first: every protocol at the
/// same numeric point then draws the identical network, fault, churn, and
/// per-repetition seeds, so head-to-head comparisons are matched — the
/// protocols differ, nothing else does. Without the axis the reduction is
/// the identity and the derivation is unchanged from earlier manifests.
pub fn point_seed(spec: &SweepSpec, point_id: u64) -> SeedTree {
    let grid_id = if spec.protocols.is_empty() {
        point_id
    } else {
        point_id % spec.numeric_grid_len()
    };
    SeedTree::new(spec.seed)
        .branch("campaign")
        .branch(&spec.name)
        .index(grid_id)
}

/// Everything needed to run one point's repetitions, built once.
pub(crate) struct PointContext {
    root: SeedTree,
    network: Network,
    algorithm: Algorithm,
    /// Slotted oracle or the byte-identical event executor (sync only).
    executor: Engine,
    starts: StartSchedule,
    robust: u64,
    faults: Option<FaultPlan>,
    dynamics: Option<DynamicsSchedule>,
    budget: u64,
    /// Degree estimate handed to catalog builders (`protocol` axis).
    delta_est: u64,
}

#[derive(Clone, Copy)]
enum Algorithm {
    Sync(SyncAlgorithm),
    /// A catalog entry from the `protocol` axis: the per-node stack is
    /// rebuilt from the entry's builder every repetition.
    SyncCatalog(&'static mmhew_rivals::ProtocolKind),
    Async(AsyncAlgorithm),
}

pub(crate) fn compile_point(
    spec: &SweepSpec,
    point: &Point,
) -> Result<PointContext, CampaignError> {
    let root = point_seed(spec, point.id);
    let nodes = point.axis("nodes") as usize;
    let universe = point.axis("universe") as u16;
    let avail = point.axis("avail") as u16;
    let builder = match spec.topology.as_str() {
        "complete" => NetworkBuilder::complete(nodes),
        "line" => NetworkBuilder::line(nodes),
        "ring" => NetworkBuilder::ring(nodes),
        "star" => NetworkBuilder::star(nodes),
        "er" => NetworkBuilder::erdos_renyi(nodes, spec.edge_prob),
        other => unreachable!("validated topology {other:?}"),
    };
    let availability = if avail == 0 {
        AvailabilityModel::Full
    } else {
        AvailabilityModel::UniformSubset { size: avail }
    };
    let network = builder
        .universe(universe)
        .availability(availability)
        .build(root.branch("net"))?;

    let delta_est = match point.axis("delta-est") as u64 {
        0 => network.max_degree().max(1) as u64,
        explicit => explicit,
    };
    let algorithm = match (&point.protocol, spec.engine) {
        // Categorical `protocol` axis: the catalog entry overrides the
        // spec-level algorithm for this point.
        (Some(name), EngineKind::Sync | EngineKind::SyncEvent) => Algorithm::SyncCatalog(
            mmhew_rivals::catalog::by_name(name)
                .unwrap_or_else(|| unreachable!("validated protocol {name:?}")),
        ),
        (Some(name), EngineKind::Async) => Algorithm::Async(match name.as_str() {
            "frame-based" => AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est)?),
            other => unreachable!("validated protocol {other:?}"),
        }),
        (None, EngineKind::Sync | EngineKind::SyncEvent) => {
            Algorithm::Sync(match spec.algorithm.as_str() {
                "staged" => SyncAlgorithm::Staged(SyncParams::new(delta_est)?),
                "adaptive" => SyncAlgorithm::Adaptive,
                "uniform" => SyncAlgorithm::Uniform(SyncParams::new(delta_est)?),
                "baseline" => SyncAlgorithm::PerChannelBirthday {
                    tx_probability: 0.5,
                },
                other => unreachable!("validated algorithm {other:?}"),
            })
        }
        (None, EngineKind::Async) => Algorithm::Async(match spec.algorithm.as_str() {
            "frame-based" => AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est)?),
            other => unreachable!("validated algorithm {other:?}"),
        }),
    };

    let window = point.axis("start-window") as u64;
    let starts = if window == 0 {
        StartSchedule::Identical
    } else {
        StartSchedule::Staggered { window }
    };

    let loss = point.axis("loss");
    let jam = point.axis("jam") as u16;
    let faults = (loss > 0.0 || jam > 0).then(|| {
        let mut plan = FaultPlan::new();
        if loss > 0.0 {
            plan = plan.with_default_loss(LinkLossModel::Bernoulli {
                delivery_probability: 1.0 - loss,
            });
        }
        if jam > 0 {
            plan = plan.with_jamming(JamSchedule::fixed(ChannelSet::full(jam)));
        }
        plan
    });

    let churn_rate = point.axis("churn-rate");
    let dynamics = (churn_rate > 0.0).then(|| {
        DynamicsSchedule::new(poisson_churn(
            &network,
            spec.budget,
            &ChurnConfig {
                rate: churn_rate,
                mean_downtime: spec.churn_downtime,
            },
            root.branch("dynamics"),
        ))
    });

    Ok(PointContext {
        root,
        network,
        algorithm,
        executor: match spec.engine {
            EngineKind::SyncEvent => Engine::Event,
            EngineKind::Sync | EngineKind::Async => Engine::Slotted,
        },
        starts,
        robust: point.axis("robust") as u64,
        faults,
        dynamics,
        budget: spec.budget,
        delta_est,
    })
}

/// Applies the point's shared sync wiring (starts, executor, budget,
/// robustness, faults, dynamics) and runs the scenario — identical for
/// named algorithms and catalog stacks, so a protocol-axis `"staged"`
/// line is byte-identical to the named-algorithm line.
fn run_sync_scenario(
    ctx: &PointContext,
    scenario: SyncScenario<'_>,
    rep_seed: SeedTree,
) -> Result<Option<f64>, ProtocolError> {
    let mut scenario = scenario
        .starts(ctx.starts.clone())
        .engine(ctx.executor)
        .config(SyncRunConfig::until_complete(ctx.budget));
    if ctx.robust > 0 {
        scenario = scenario.robust(ctx.robust);
    }
    if let Some(faults) = &ctx.faults {
        scenario = scenario.with_faults(faults.clone());
    }
    if let Some(dynamics) = &ctx.dynamics {
        scenario = scenario.with_dynamics(dynamics.clone());
    }
    let outcome = scenario.run(rep_seed)?;
    Ok(outcome.slots_to_complete().map(|s| s as f64))
}

/// One repetition's completion time (`None` = budget exhausted).
fn run_rep(ctx: &PointContext, rep: u64) -> Result<Option<f64>, ProtocolError> {
    let rep_seed = ctx.root.branch("run").index(rep);
    match ctx.algorithm {
        Algorithm::Sync(algorithm) => {
            run_sync_scenario(ctx, Scenario::sync(&ctx.network, algorithm), rep_seed)
        }
        Algorithm::SyncCatalog(kind) => {
            let stack = kind.build_sync(&ctx.network, ctx.delta_est)?;
            run_sync_scenario(ctx, Scenario::sync_stack(&ctx.network, stack), rep_seed)
        }
        Algorithm::Async(algorithm) => {
            let mut scenario = Scenario::asynchronous(&ctx.network, algorithm)
                .config(AsyncRunConfig::until_complete(ctx.budget));
            if let Some(faults) = &ctx.faults {
                scenario = scenario.with_faults(faults.clone());
            }
            let outcome = scenario.run(rep_seed)?;
            Ok(outcome.min_full_frames_at_completion().map(|f| f as f64))
        }
    }
}

/// Streaming aggregate of one shard (and, after merging, one point).
pub(crate) struct Agg {
    pub(crate) welford: Welford,
    pub(crate) hist: Histogram,
    pub(crate) failures: u64,
}

impl Agg {
    pub(crate) fn new(spec: &SweepSpec) -> Self {
        Self {
            welford: Welford::new(),
            hist: Histogram::new(0.0, spec.budget as f64, spec.hist_bins),
            failures: 0,
        }
    }

    pub(crate) fn merge(&mut self, other: &Agg) {
        self.welford.merge(&other.welford);
        self.hist.merge(&other.hist);
        self.failures += other.failures;
    }
}

pub(crate) fn run_shard(
    spec: &SweepSpec,
    ctx: &PointContext,
    start: u64,
    len: u64,
) -> Result<Agg, ProtocolError> {
    let mut agg = Agg::new(spec);
    for rep in start..start + len {
        match run_rep(ctx, rep)? {
            Some(x) => {
                agg.welford.push(x);
                agg.hist.record(x);
            }
            None => agg.failures += 1,
        }
    }
    Ok(agg)
}

/// The shard decomposition of one point's `reps` repetitions.
pub(crate) fn shards(reps: u64) -> impl Iterator<Item = (u64, u64)> {
    (0..reps.div_ceil(REPS_PER_SHARD)).map(move |s| {
        (
            s * REPS_PER_SHARD,
            REPS_PER_SHARD.min(reps - s * REPS_PER_SHARD),
        )
    })
}

/// One completed point as recorded in the manifest and artifact.
/// Failed (budget-exhausted) repetitions are counted but excluded from
/// the statistics.
#[derive(Serialize)]
struct PointRecord<'a> {
    schema_version: u32,
    point: u64,
    /// Catalog name when the `protocol` axis is swept; absent otherwise,
    /// keeping protocol-free manifests byte-identical to earlier runs.
    #[serde(skip_serializing_if = "Option::is_none")]
    protocol: Option<&'a str>,
    params: &'a [(String, f64)],
    reps: u64,
    completed: u64,
    failures: u64,
    mean: f64,
    stddev: f64,
    min: f64,
    max: f64,
    p50: f64,
    p90: f64,
    p99: f64,
}

pub(crate) fn render_record(
    spec: &SweepSpec,
    point: &Point,
    agg: &Agg,
) -> Result<String, CampaignError> {
    let record = PointRecord {
        schema_version: MANIFEST_SCHEMA_VERSION,
        point: point.id,
        protocol: point.protocol.as_deref(),
        params: &point.values,
        reps: spec.reps,
        completed: agg.welford.count(),
        failures: agg.failures,
        mean: agg.welford.mean(),
        stddev: agg.welford.stddev(),
        min: agg.welford.min(),
        max: agg.welford.max(),
        p50: agg.hist.quantile(0.5),
        p90: agg.hist.quantile(0.9),
        p99: agg.hist.quantile(0.99),
    };
    mmhew_obs::json::to_string(&record).map_err(|e| CampaignError::Render(e.to_string()))
}

/// Runs every repetition of one already-expanded point and renders its
/// manifest line — byte-identical to what a full campaign (single-process
/// or distributed) records for that point. This is the unit of work a
/// `mmhew-serve` worker executes per lease.
///
/// # Errors
///
/// Returns any compile/run/serialize failure.
pub fn run_point_line(spec: &SweepSpec, point: &Point) -> Result<String, CampaignError> {
    let ctx = compile_point(spec, point)?;
    let mut agg = Agg::new(spec);
    for (start, len) in shards(spec.reps) {
        agg.merge(&run_shard(spec, &ctx, start, len)?);
    }
    render_record(spec, point, &agg)
}

/// Re-runs a single point in isolation (validating the spec and looking
/// the point up by id) and returns its manifest line. See
/// [`run_point_line`] for the by-reference form.
///
/// # Errors
///
/// Returns [`CampaignError::UnknownPoint`] if `point_id` is outside the
/// grid, or any compile/run failure.
pub fn run_point(spec: &SweepSpec, point_id: u64) -> Result<String, CampaignError> {
    spec.validate()?;
    let points = spec.expand();
    let point = points
        .iter()
        .find(|p| p.id == point_id)
        .ok_or(CampaignError::UnknownPoint(point_id))?;
    run_point_line(spec, point)
}

/// The spec-echo header: the first line of every manifest, recording
/// which spec (in canonical [`SweepSpec::to_json`] form) the data lines
/// belong to. Readers that predate it skip it (no `point` field); the
/// campaign service uses it to refuse resuming one campaign's manifest
/// under a different spec.
pub fn manifest_header(spec: &SweepSpec) -> String {
    format!(
        "{{\"schema_version\":{MANIFEST_SCHEMA_VERSION},\"spec\":{}}}",
        spec.to_json()
    )
}

/// True if this parsed manifest line is a spec-echo header.
fn is_header(v: &Value) -> bool {
    v.get("spec").is_some() && v.get("point").is_none()
}

/// Makes sure the manifest at `path` is an intact checkpoint to append
/// to: a spec-echo header for `spec`, then whole data lines, ending in a
/// newline. The file is created when missing and *rewritten* — keeping
/// surviving data lines verbatim, in file order — when the header is
/// absent, torn mid-write, or predates headers, or when the final data
/// line was torn by a crash (a torn, newline-less tail would otherwise
/// corrupt the next append). A manifest whose intact header echoes a
/// *different* spec is an error: resuming it would silently mix two
/// campaigns in one file.
///
/// # Errors
///
/// Returns [`CampaignError::Manifest`] on a spec mismatch, or any I/O
/// failure.
pub fn ensure_manifest_header(path: &Path, spec: &SweepSpec) -> Result<(), CampaignError> {
    let header = manifest_header(spec);
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e.into()),
    };
    let header_intact = match text.lines().next().map(json::parse) {
        Some(Ok(v)) if is_header(&v) => {
            // An intact header: either ours or some other campaign's
            // (refuse rather than mixing manifests).
            if v.get("spec").map(Value::to_json).unwrap_or_default() != spec.to_json() {
                return Err(CampaignError::Manifest(format!(
                    "{} already holds a manifest for a different spec \
                     (echoed name {:?}); refusing to mix campaigns",
                    path.display(),
                    v.get("spec")
                        .and_then(|s| s.get("name"))
                        .and_then(Value::as_str)
                        .unwrap_or("<unknown>")
                )));
            }
            true
        }
        _ => false,
    };
    let clean = header_intact
        && text.ends_with('\n')
        && text.lines().skip(1).all(|line| {
            json::parse(line).is_ok_and(|v| v.get("point").and_then(Value::as_u64).is_some())
        });
    if clean {
        return Ok(());
    }
    // Missing file, empty file, torn header, pre-header manifest, or a
    // torn trailing data line: rewrite as header + surviving data lines
    // (temp file + rename, so a crash here leaves the original intact).
    let mut out = header;
    out.push('\n');
    for line in text.lines() {
        if let Ok(v) = json::parse(line) {
            if v.get("point").and_then(Value::as_u64).is_some() {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    let tmp = path.with_extension("jsonl.tmp");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads the completed-point map from an existing manifest, dropping the
/// spec-echo header, a torn trailing line (crash mid-append) and anything
/// unparseable. Unversioned lines (pre-[`MANIFEST_SCHEMA_VERSION`]
/// manifests) load fine; a line stamped with a newer schema is an error —
/// resuming on top of it would mix shapes in one file.
pub fn load_manifest(path: &Path) -> Result<BTreeMap<u64, String>, CampaignError> {
    let mut done = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(done),
        Err(e) => return Err(e.into()),
    };
    for line in text.lines() {
        if let Ok(v) = json::parse(line) {
            let version = v.get("schema_version").and_then(Value::as_u64).unwrap_or(0);
            if version > MANIFEST_SCHEMA_VERSION as u64 {
                return Err(CampaignError::Manifest(format!(
                    "{} has schema_version {version}, newer than the supported {}",
                    path.display(),
                    MANIFEST_SCHEMA_VERSION
                )));
            }
            if let Some(id) = v.get("point").and_then(Value::as_u64) {
                done.insert(id, line.to_string());
            }
        }
    }
    Ok(done)
}

/// Appends manifest lines, one `write` per line so interruption leaves at
/// most one torn final line.
pub fn append_manifest(path: &Path, lines: &[String]) -> Result<(), CampaignError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for line in lines {
        // One write per record keeps lines whole under interruption.
        file.write_all(format!("{line}\n").as_bytes())?;
    }
    file.flush()?;
    Ok(())
}

/// Renders the final artifact from the manifest lines, sorted by point
/// id, and moves it into place atomically (temp file + rename). Reusing
/// the recorded lines verbatim is what makes a resumed (or distributed)
/// campaign's artifact byte-identical to an uninterrupted single-process
/// one.
pub fn write_artifact_file(
    spec: &SweepSpec,
    path: &Path,
    done: &BTreeMap<u64, String>,
) -> Result<PathBuf, CampaignError> {
    let spec_json =
        mmhew_obs::json::to_string(spec).map_err(|e| CampaignError::Render(e.to_string()))?;
    let mut out = format!("{{\"spec\":{spec_json},\"points\":[\n");
    for (i, line) in done.values().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(line);
    }
    out.push_str("\n]}\n");
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)?;
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_decomposition_covers_reps_exactly() {
        for reps in 1..=13 {
            let parts: Vec<(u64, u64)> = shards(reps).collect();
            let mut covered = Vec::new();
            for (start, len) in parts {
                assert!(len >= 1 && len <= REPS_PER_SHARD);
                covered.extend(start..start + len);
            }
            assert_eq!(covered, (0..reps).collect::<Vec<_>>());
        }
    }

    #[test]
    fn point_seed_depends_on_spec_identity_only() {
        let mut a = SweepSpec::smoke();
        let s1 = point_seed(&a, 2);
        assert_eq!(s1, point_seed(&a, 2));
        assert_ne!(s1, point_seed(&a, 3));
        a.name = "other".to_string();
        assert_ne!(s1, point_seed(&a, 2));
        a = SweepSpec::smoke();
        a.seed ^= 1;
        assert_ne!(s1, point_seed(&a, 2));
        // Execution-shape knobs must NOT enter the derivation.
        a = SweepSpec::smoke();
        a.reps += 10;
        a.hist_bins += 1;
        assert_eq!(s1, point_seed(&a, 2));
    }

    #[test]
    fn records_are_parseable_and_complete() {
        let spec = SweepSpec::smoke();
        let line = run_point(&spec, 0).expect("runs");
        let v = json::parse(&line).expect("valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(Value::as_u64),
            Some(MANIFEST_SCHEMA_VERSION as u64)
        );
        assert_eq!(v.get("point").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("reps").and_then(Value::as_u64), Some(spec.reps));
        assert_eq!(v.get("failures").and_then(Value::as_u64), Some(0));
        let mean = v.get("mean").and_then(Value::as_f64).expect("mean");
        assert!(mean > 0.0);
        let p50 = v.get("p50").and_then(Value::as_f64).expect("p50");
        assert!(p50 >= 0.0 && p50 <= spec.budget as f64);
    }

    #[test]
    fn run_point_line_matches_run_point() {
        let spec = SweepSpec::smoke();
        for point in spec.expand() {
            assert_eq!(
                run_point_line(&spec, &point).expect("line"),
                run_point(&spec, point.id).expect("point")
            );
        }
    }

    #[test]
    fn sync_event_points_match_slotted_lines() {
        // The event executor is byte-identical to the slotted oracle, so
        // a sync-event campaign's manifest lines must equal the sync
        // campaign's (the engine field is not part of the seed derivation).
        let slotted = SweepSpec::smoke();
        let mut event = SweepSpec::smoke();
        event.engine = EngineKind::SyncEvent;
        for point in slotted.expand() {
            assert_eq!(
                run_point_line(&slotted, &point).expect("slotted line"),
                run_point_line(&event, &point).expect("event line")
            );
        }
    }

    /// A small protocol-axis head-to-head used by the tests below.
    fn rivals_spec() -> SweepSpec {
        SweepSpec::from_json(
            r#"{"name":"rivals-test","engine":"sync","topology":"complete",
                "reps":2,"seed":7,"budget":200000,
                "axes":{"protocol":["staged","mc-dis"],"nodes":[4],"universe":[5]}}"#,
        )
        .expect("valid spec")
    }

    #[test]
    fn protocol_axis_points_share_the_numeric_grid_seed() {
        let spec = rivals_spec();
        let stride = spec.numeric_grid_len();
        assert_eq!(stride, 1);
        // Point 0 is "staged", point 1 is "mc-dis": matched head-to-head
        // means both draw the same seed subtree.
        assert_eq!(point_seed(&spec, 0), point_seed(&spec, stride));
        // And that subtree is the one a protocol-free spec would draw, so
        // the numeric grid's randomness is unchanged by adding the axis.
        let mut plain = spec.clone();
        plain.protocols.clear();
        assert_eq!(point_seed(&spec, 0), point_seed(&plain, 0));
    }

    #[test]
    fn protocol_axis_lines_are_matched_and_distinct() {
        let spec = rivals_spec();
        let points = spec.expand();
        assert_eq!(points.len(), 2);
        let staged = run_point_line(&spec, &points[0]).expect("staged line");
        let rival = run_point_line(&spec, &points[1]).expect("mc-dis line");
        let vs = json::parse(&staged).expect("staged JSON");
        let vr = json::parse(&rival).expect("mc-dis JSON");
        assert_eq!(vs.get("protocol").and_then(Value::as_str), Some("staged"));
        assert_eq!(vr.get("protocol").and_then(Value::as_str), Some("mc-dis"));
        // Same matched network and seeds, different protocol — the
        // outcomes must differ (deterministic hopping vs staged rounds).
        assert_ne!(
            vs.get("mean").and_then(Value::as_f64),
            vr.get("mean").and_then(Value::as_f64)
        );

        // The catalog's "staged" builder constructs exactly what the
        // named-algorithm path does, so every statistic matches the
        // protocol-free campaign's line for the same numeric point.
        let mut plain = spec.clone();
        plain.protocols.clear();
        let plain_line = run_point_line(&plain, &plain.expand()[0]).expect("plain line");
        let vp = json::parse(&plain_line).expect("plain JSON");
        assert_eq!(vp.get("protocol").map(Value::to_json), None);
        for key in [
            "completed",
            "failures",
            "mean",
            "stddev",
            "p50",
            "p90",
            "p99",
        ] {
            assert_eq!(
                vs.get(key).map(Value::to_json),
                vp.get(key).map(Value::to_json),
                "field {key:?} must match the named-algorithm line"
            );
        }
    }

    #[test]
    fn unknown_point_is_an_error() {
        let spec = SweepSpec::smoke();
        assert!(matches!(
            run_point(&spec, 99),
            Err(CampaignError::UnknownPoint(99))
        ));
    }

    #[test]
    fn manifest_loader_drops_torn_lines_and_header() {
        let dir = std::env::temp_dir().join("mmhew-campaign-torn");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("m.jsonl");
        let header = manifest_header(&SweepSpec::smoke());
        std::fs::write(
            &path,
            format!("{header}\n{{\"point\":0,\"mean\":1}}\n{{\"point\":1,\"me"),
        )
        .expect("write");
        let done = load_manifest(&path).expect("load");
        assert_eq!(done.len(), 1);
        assert!(done.contains_key(&0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_loader_versioning() {
        let dir = std::env::temp_dir().join("mmhew-campaign-schema");
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Unversioned (pre-stamp) and current-version lines both load.
        let ok = dir.join("ok.jsonl");
        std::fs::write(
            &ok,
            "{\"point\":0,\"mean\":1}\n{\"schema_version\":1,\"point\":1,\"mean\":2}\n",
        )
        .expect("write");
        let done = load_manifest(&ok).expect("load");
        assert_eq!(done.len(), 2);

        // A newer stamp is an error, not a silent misread.
        let newer = dir.join("newer.jsonl");
        std::fs::write(&newer, "{\"schema_version\":999,\"point\":0,\"mean\":1}\n").expect("write");
        let err = load_manifest(&newer).expect_err("must refuse");
        assert!(err.to_string().contains("newer than the supported"));

        std::fs::remove_file(&ok).ok();
        std::fs::remove_file(&newer).ok();
    }

    #[test]
    fn header_rewrite_tolerates_torn_and_legacy_manifests() {
        let dir = std::env::temp_dir().join("mmhew-campaign-header");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let spec = SweepSpec::smoke();
        let header = manifest_header(&spec);

        // Missing file: header gets created.
        let fresh = dir.join("fresh.jsonl");
        ensure_manifest_header(&fresh, &spec).expect("create");
        assert_eq!(
            std::fs::read_to_string(&fresh).expect("read"),
            format!("{header}\n")
        );

        // Torn header (crash mid-initial-write): rewritten, not an abort.
        let torn = dir.join("torn.jsonl");
        std::fs::write(&torn, &header[..header.len() / 2]).expect("write");
        ensure_manifest_header(&torn, &spec).expect("rewrite");
        assert_eq!(
            std::fs::read_to_string(&torn).expect("read"),
            format!("{header}\n")
        );

        // Legacy manifest (data lines, no header): header prepended, data
        // lines preserved verbatim; a torn final data line is dropped.
        let legacy = dir.join("legacy.jsonl");
        std::fs::write(
            &legacy,
            "{\"point\":0,\"mean\":1}\n{\"point\":1,\"mean\":2}\n{\"point\":2,\"me",
        )
        .expect("write");
        ensure_manifest_header(&legacy, &spec).expect("rewrite");
        assert_eq!(
            std::fs::read_to_string(&legacy).expect("read"),
            format!("{header}\n{{\"point\":0,\"mean\":1}}\n{{\"point\":1,\"mean\":2}}\n")
        );

        // Intact matching header: file left byte-identical.
        let before = std::fs::read(&legacy).expect("read");
        ensure_manifest_header(&legacy, &spec).expect("noop");
        assert_eq!(std::fs::read(&legacy).expect("read"), before);

        // Intact header for a different spec: hard error.
        let mut other = SweepSpec::smoke();
        other.seed ^= 1;
        let err = ensure_manifest_header(&legacy, &other).expect_err("must refuse");
        assert!(err.to_string().contains("different spec"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
