//! Compatibility re-export of the workspace JSON parser.
//!
//! The recursive-descent parser originally lived here; PR 6 moved it to
//! [`mmhew_obs::value`] so the trace reader and the bench-file checker
//! can share it without depending on the campaign layer. Campaign code
//! (and downstream users of `mmhew_campaign::json`) keep the same paths.

pub use mmhew_obs::value::{parse, ParseError, Value};
