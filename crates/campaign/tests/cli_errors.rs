//! Negative-path coverage of the `campaign` CLI: a rejected spec must
//! name the offending axis and list the accepted values, so a typo in a
//! 40-line sweep file is a ten-second fix rather than an archaeology dig.

use std::path::PathBuf;
use std::process::Command;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmhew-cli-errors-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Writes `spec` to a temp file and runs `campaign --spec` on it,
/// returning (stderr, success).
fn run_spec(name: &str, spec: &str) -> (String, bool) {
    let dir = fresh_dir(name);
    let path = dir.join("spec.json");
    std::fs::write(&path, spec).expect("write spec");
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--spec",
            path.to_str().expect("utf8 path"),
            "--out",
            dir.join("out").to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn campaign");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    std::fs::remove_dir_all(&dir).ok();
    (stderr, out.status.success())
}

#[test]
fn unknown_protocol_name_is_rejected_with_the_accepted_list() {
    let (stderr, ok) = run_spec(
        "unknown-protocol",
        r#"{
            "name": "t",
            "engine": "sync",
            "axes": {"protocol": ["mc-dsi"], "nodes": [4]}
        }"#,
    );
    assert!(!ok, "misspelled protocol must fail");
    assert!(stderr.contains("invalid spec"), "{stderr}");
    assert!(stderr.contains("axis \"protocol\""), "{stderr}");
    assert!(
        stderr.contains("\"mc-dsi\""),
        "names the offender: {stderr}"
    );
    assert!(
        stderr.contains("mc-dis") && stderr.contains("s-nihao"),
        "lists the accepted values: {stderr}"
    );
}

#[test]
fn sync_protocol_on_the_async_engine_is_rejected() {
    let (stderr, ok) = run_spec(
        "sync-on-async",
        r#"{
            "name": "t",
            "engine": "async",
            "algorithm": "frame-based",
            "axes": {"protocol": ["mc-dis"], "nodes": [4]}
        }"#,
    );
    assert!(!ok, "sync-only protocol on async must fail");
    assert!(stderr.contains("axis \"protocol\""), "{stderr}");
    assert!(
        stderr.contains("runs on the sync engine only"),
        "says which engine the entry needs: {stderr}"
    );
    assert!(
        stderr.contains("frame-based"),
        "lists what this engine accepts: {stderr}"
    );
}

#[test]
fn sync_only_axis_on_the_async_engine_is_rejected() {
    let (stderr, ok) = run_spec(
        "jam-on-async",
        r#"{
            "name": "t",
            "engine": "async",
            "algorithm": "frame-based",
            "axes": {"jam": [1], "nodes": [4]}
        }"#,
    );
    assert!(!ok, "sync-only axis on async must fail");
    assert!(stderr.contains("axis \"jam\""), "{stderr}");
    assert!(stderr.contains("slot-synchronous only"), "{stderr}");
}

#[test]
fn valid_protocol_axis_spec_runs_end_to_end() {
    // The mirror-image positive path: a protocol axis through the real
    // CLI produces one manifest line per (protocol, point).
    let dir = fresh_dir("protocol-ok");
    let path = dir.join("spec.json");
    std::fs::write(
        &path,
        r#"{
            "name": "cli-protocol",
            "engine": "sync",
            "topology": "complete",
            "reps": 2,
            "seed": 9,
            "budget": 200000,
            "axes": {"protocol": ["staged", "mc-dis"], "nodes": [4], "universe": [5]}
        }"#,
    )
    .expect("write spec");
    let out_dir = dir.join("out");
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--spec",
            path.to_str().expect("utf8 path"),
            "--out",
            out_dir.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn campaign");
    assert!(
        out.status.success(),
        "campaign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(out_dir.join("cli-protocol.manifest.jsonl"))
        .expect("manifest written");
    let lines: Vec<&str> = manifest.lines().collect();
    assert_eq!(lines.len(), 3, "header + one line per (protocol, point)");
    assert!(lines[1].contains("\"protocol\":\"staged\""), "{}", lines[1]);
    assert!(lines[2].contains("\"protocol\":\"mc-dis\""), "{}", lines[2]);
    std::fs::remove_dir_all(&dir).ok();
}
