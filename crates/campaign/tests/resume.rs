//! Checkpoint/resume contract: an interrupted-then-resumed campaign must
//! produce a byte-identical artifact to an uninterrupted run, and must
//! report the resumed points as skipped.

use mmhew_campaign::{run_campaign, CampaignOptions, SweepSpec};
use std::path::PathBuf;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmhew-campaign-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn interrupted_then_resumed_artifact_is_byte_identical() {
    let spec = SweepSpec::smoke();

    // Reference: one uninterrupted run.
    let straight = fresh_dir("straight");
    let outcome = run_campaign(&spec, &CampaignOptions::new(&straight)).expect("runs");
    assert_eq!(outcome.completed, 4);
    assert_eq!(outcome.skipped, 0);
    let reference = std::fs::read(outcome.artifact.expect("artifact written")).expect("read");

    // Interrupted: stop after 2 points — simulates a kill between chunks.
    let resumed = fresh_dir("resumed");
    let mut opts = CampaignOptions::new(&resumed);
    opts.max_points = Some(2);
    let partial = run_campaign(&spec, &opts).expect("partial run");
    assert_eq!(partial.completed, 2);
    assert!(partial.artifact.is_none(), "no artifact while incomplete");
    let manifest = resumed.join("smoke.manifest.jsonl");
    assert_eq!(
        std::fs::read_to_string(&manifest)
            .expect("manifest")
            .lines()
            .count(),
        2,
        "checkpoint holds exactly the finished points"
    );

    // Resume: the finished points are skipped, not re-run.
    let mut opts = CampaignOptions::new(&resumed);
    opts.resume = true;
    let finished = run_campaign(&spec, &opts).expect("resume");
    assert_eq!(finished.skipped, 2, "resume reports the skipped points");
    assert_eq!(finished.completed, 2);
    let bytes = std::fs::read(finished.artifact.expect("artifact written")).expect("read");
    assert_eq!(bytes, reference, "resumed artifact is byte-identical");

    std::fs::remove_dir_all(&straight).ok();
    std::fs::remove_dir_all(&resumed).ok();
}

#[test]
fn rerun_without_resume_starts_over_but_matches() {
    // Not resuming discards the manifest; determinism still makes the
    // fresh artifact byte-identical.
    let spec = SweepSpec::smoke();
    let dir = fresh_dir("restart");
    let first = run_campaign(&spec, &CampaignOptions::new(&dir)).expect("first");
    let a = std::fs::read(first.artifact.expect("artifact")).expect("read");
    let second = run_campaign(&spec, &CampaignOptions::new(&dir)).expect("second");
    assert_eq!(second.skipped, 0, "non-resume runs everything again");
    let b = std::fs::read(second.artifact.expect("artifact")).expect("read");
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_on_finished_campaign_skips_everything() {
    let spec = SweepSpec::smoke();
    let dir = fresh_dir("noop");
    run_campaign(&spec, &CampaignOptions::new(&dir)).expect("first");
    let mut opts = CampaignOptions::new(&dir);
    opts.resume = true;
    let again = run_campaign(&spec, &opts).expect("noop resume");
    assert_eq!(again.completed, 0);
    assert_eq!(again.skipped, 4);
    assert!(again.artifact.is_some(), "artifact still (re)rendered");
    std::fs::remove_dir_all(&dir).ok();
}
