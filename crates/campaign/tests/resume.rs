//! Checkpoint/resume contract: an interrupted-then-resumed campaign must
//! produce a byte-identical artifact to an uninterrupted run, and must
//! report the resumed points as skipped.

use mmhew_campaign::{manifest_header, run_campaign, CampaignOptions, SweepSpec};
use std::path::PathBuf;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmhew-campaign-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn interrupted_then_resumed_artifact_is_byte_identical() {
    let spec = SweepSpec::smoke();

    // Reference: one uninterrupted run.
    let straight = fresh_dir("straight");
    let outcome = run_campaign(&spec, &CampaignOptions::new(&straight)).expect("runs");
    assert_eq!(outcome.completed, 4);
    assert_eq!(outcome.skipped, 0);
    let reference = std::fs::read(outcome.artifact.expect("artifact written")).expect("read");

    // Interrupted: stop after 2 points — simulates a kill between chunks.
    let resumed = fresh_dir("resumed");
    let mut opts = CampaignOptions::new(&resumed);
    opts.max_points = Some(2);
    let partial = run_campaign(&spec, &opts).expect("partial run");
    assert_eq!(partial.completed, 2);
    assert!(partial.artifact.is_none(), "no artifact while incomplete");
    let manifest = resumed.join("smoke.manifest.jsonl");
    let checkpoint = std::fs::read_to_string(&manifest).expect("manifest");
    assert_eq!(
        checkpoint.lines().count(),
        3,
        "checkpoint holds the spec-echo header plus exactly the finished points"
    );
    assert_eq!(
        checkpoint.lines().next().expect("header"),
        manifest_header(&spec),
        "manifest opens with the spec-echo header"
    );

    // Resume: the finished points are skipped, not re-run.
    let mut opts = CampaignOptions::new(&resumed);
    opts.resume = true;
    let finished = run_campaign(&spec, &opts).expect("resume");
    assert_eq!(finished.skipped, 2, "resume reports the skipped points");
    assert_eq!(finished.completed, 2);
    let bytes = std::fs::read(finished.artifact.expect("artifact written")).expect("read");
    assert_eq!(bytes, reference, "resumed artifact is byte-identical");

    std::fs::remove_dir_all(&straight).ok();
    std::fs::remove_dir_all(&resumed).ok();
}

#[test]
fn rerun_without_resume_starts_over_but_matches() {
    // Not resuming discards the manifest; determinism still makes the
    // fresh artifact byte-identical.
    let spec = SweepSpec::smoke();
    let dir = fresh_dir("restart");
    let first = run_campaign(&spec, &CampaignOptions::new(&dir)).expect("first");
    let a = std::fs::read(first.artifact.expect("artifact")).expect("read");
    let second = run_campaign(&spec, &CampaignOptions::new(&dir)).expect("second");
    assert_eq!(second.skipped, 0, "non-resume runs everything again");
    let b = std::fs::read(second.artifact.expect("artifact")).expect("read");
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_tolerates_a_torn_spec_echo_header() {
    // A crash during the very first manifest write can tear the header
    // line itself. Resume must rewrite it and carry on — and because no
    // data line survived, the repaired run is byte-identical to an
    // uninterrupted one.
    let spec = SweepSpec::smoke();

    let straight = fresh_dir("header-straight");
    let outcome = run_campaign(&spec, &CampaignOptions::new(&straight)).expect("runs");
    let reference_manifest =
        std::fs::read(straight.join("smoke.manifest.jsonl")).expect("manifest");
    let reference_artifact =
        std::fs::read(outcome.artifact.expect("artifact written")).expect("read");

    let repaired = fresh_dir("header-torn");
    let manifest = repaired.join("smoke.manifest.jsonl");
    let header = manifest_header(&spec);
    std::fs::write(&manifest, &header.as_bytes()[..header.len() / 2]).expect("write torn header");

    let mut opts = CampaignOptions::new(&repaired);
    opts.resume = true;
    let finished = run_campaign(&spec, &opts).expect("resume over torn header");
    assert_eq!(finished.skipped, 0, "no data line survived the tear");
    assert_eq!(finished.completed, 4);
    assert_eq!(
        std::fs::read(&manifest).expect("manifest"),
        reference_manifest,
        "repaired manifest is byte-identical"
    );
    assert_eq!(
        std::fs::read(finished.artifact.expect("artifact written")).expect("read"),
        reference_artifact,
        "repaired artifact is byte-identical"
    );

    // A torn final *data* line on top of an intact header: the header is
    // kept, the torn line dropped, and the campaign resumes cleanly.
    let torn_data = fresh_dir("data-torn");
    let manifest = torn_data.join("smoke.manifest.jsonl");
    let mut opts = CampaignOptions::new(&torn_data);
    opts.max_points = Some(2);
    run_campaign(&spec, &opts).expect("partial run");
    let mut bytes = std::fs::read(&manifest).expect("manifest");
    bytes.extend_from_slice(b"{\"schema_version\":1,\"point\":2,\"par");
    std::fs::write(&manifest, bytes).expect("tear");
    let mut opts = CampaignOptions::new(&torn_data);
    opts.resume = true;
    let finished = run_campaign(&spec, &opts).expect("resume over torn data line");
    assert_eq!(finished.skipped, 2);
    assert_eq!(finished.completed, 2);
    assert_eq!(
        std::fs::read(&manifest).expect("manifest"),
        reference_manifest
    );

    std::fs::remove_dir_all(&straight).ok();
    std::fs::remove_dir_all(&repaired).ok();
    std::fs::remove_dir_all(&torn_data).ok();
}

#[test]
fn protocol_axis_resume_is_byte_identical() {
    // The categorical `protocol` axis goes through the same
    // checkpoint/resume machinery as numeric axes: interrupting between
    // protocols and resuming reproduces the uninterrupted bytes.
    let spec = SweepSpec::from_json(
        r#"{
            "name": "rivals-resume",
            "engine": "sync",
            "topology": "complete",
            "reps": 2,
            "seed": 13,
            "budget": 200000,
            "axes": {"protocol": ["staged", "mc-dis", "s-nihao"], "nodes": [4], "universe": [5]}
        }"#,
    )
    .expect("valid spec");

    let straight = fresh_dir("rivals-straight");
    let outcome = run_campaign(&spec, &CampaignOptions::new(&straight)).expect("runs");
    assert_eq!(outcome.completed, 3, "one point per protocol");
    let reference = std::fs::read(outcome.artifact.expect("artifact written")).expect("read");

    let resumed = fresh_dir("rivals-resumed");
    let mut opts = CampaignOptions::new(&resumed);
    opts.max_points = Some(1);
    let partial = run_campaign(&spec, &opts).expect("partial run");
    assert_eq!(partial.completed, 1);
    let mut opts = CampaignOptions::new(&resumed);
    opts.resume = true;
    let finished = run_campaign(&spec, &opts).expect("resume");
    assert_eq!(finished.skipped, 1);
    assert_eq!(finished.completed, 2);
    let bytes = std::fs::read(finished.artifact.expect("artifact written")).expect("read");
    assert_eq!(bytes, reference, "resumed protocol-axis artifact matches");

    std::fs::remove_dir_all(&straight).ok();
    std::fs::remove_dir_all(&resumed).ok();
}

#[test]
fn resume_on_finished_campaign_skips_everything() {
    let spec = SweepSpec::smoke();
    let dir = fresh_dir("noop");
    run_campaign(&spec, &CampaignOptions::new(&dir)).expect("first");
    let mut opts = CampaignOptions::new(&dir);
    opts.resume = true;
    let again = run_campaign(&spec, &opts).expect("noop resume");
    assert_eq!(again.completed, 0);
    assert_eq!(again.skipped, 4);
    assert!(again.artifact.is_some(), "artifact still (re)rendered");
    std::fs::remove_dir_all(&dir).ok();
}
