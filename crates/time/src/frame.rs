//! Frames and slots of the asynchronous algorithm (paper §IV), plus the
//! structural predicates used by Lemmas 4 and 7.
//!
//! Each node divides its *local* time into frames of length `L`, and each
//! frame into [`SLOTS_PER_FRAME`] = 3 equal slots. Projected onto real time
//! through the node's drifting clock, frames of different nodes have
//! different (and varying) lengths; the paper's lemmas constrain how badly
//! they can misalign when the drift rate is bounded by 1/7.

use crate::clock::DriftedClock;
use crate::duration::{LocalDuration, LocalTime, RealInterval, RealTime};
use serde::{Deserialize, Serialize};

/// Number of slots per frame in Algorithm 4 (fixed by the paper).
pub const SLOTS_PER_FRAME: u64 = 3;

/// A node's local frame timetable: frame `i` spans local time
/// `[start + i·L, start + (i+1)·L)`.
///
/// # Examples
///
/// ```
/// use mmhew_time::{DriftedClock, FrameSchedule, LocalDuration, LocalTime};
///
/// let sched = FrameSchedule::new(
///     LocalTime::from_nanos(100),
///     LocalDuration::from_nanos(300),
/// );
/// assert_eq!(sched.frame_start_local(2), LocalTime::from_nanos(700));
/// assert_eq!(sched.slot_start_local(0, 1), LocalTime::from_nanos(200));
///
/// // Project frame 0 onto real time through an ideal clock with offset 0.
/// let mut clock = DriftedClock::ideal(LocalTime::ZERO);
/// let f0 = sched.frame_interval(0, &mut clock);
/// assert_eq!(f0.start().as_nanos(), 100);
/// assert_eq!(f0.end().as_nanos(), 400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameSchedule {
    start_local: LocalTime,
    frame_len: LocalDuration,
}

impl FrameSchedule {
    /// Creates a schedule whose frame 0 starts at local time `start_local`
    /// with frames of local length `frame_len`.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` is zero or not divisible by
    /// [`SLOTS_PER_FRAME`], which would make slots unequal.
    pub fn new(start_local: LocalTime, frame_len: LocalDuration) -> Self {
        assert!(!frame_len.is_zero(), "frame length must be positive");
        assert_eq!(
            frame_len.as_nanos() % SLOTS_PER_FRAME,
            0,
            "frame length must be divisible by {SLOTS_PER_FRAME}"
        );
        Self {
            start_local,
            frame_len,
        }
    }

    /// Local frame length `L`.
    pub fn frame_len(&self) -> LocalDuration {
        self.frame_len
    }

    /// Local slot length `L/3`.
    pub fn slot_len(&self) -> LocalDuration {
        self.frame_len.div_floor(SLOTS_PER_FRAME)
    }

    /// Local start of frame 0.
    pub fn start_local(&self) -> LocalTime {
        self.start_local
    }

    /// Local start of frame `i`.
    pub fn frame_start_local(&self, i: u64) -> LocalTime {
        self.start_local + self.frame_len * i
    }

    /// Local start of slot `slot` of frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= SLOTS_PER_FRAME`.
    pub fn slot_start_local(&self, frame: u64, slot: u64) -> LocalTime {
        assert!(slot < SLOTS_PER_FRAME, "slot index out of range");
        self.frame_start_local(frame) + self.slot_len() * slot
    }

    /// Real-time interval of frame `i`, projected through `clock`.
    pub fn frame_interval(&self, i: u64, clock: &mut DriftedClock) -> RealInterval {
        let start = clock.real_when_local_reaches(self.frame_start_local(i));
        let end = clock.real_when_local_reaches(self.frame_start_local(i + 1));
        RealInterval::new(start, end)
    }

    /// Real-time interval of slot `slot` of frame `frame`.
    pub fn slot_interval(&self, frame: u64, slot: u64, clock: &mut DriftedClock) -> RealInterval {
        assert!(slot < SLOTS_PER_FRAME, "slot index out of range");
        let start = clock.real_when_local_reaches(self.slot_start_local(frame, slot));
        let end = if slot + 1 == SLOTS_PER_FRAME {
            clock.real_when_local_reaches(self.frame_start_local(frame + 1))
        } else {
            clock.real_when_local_reaches(self.slot_start_local(frame, slot + 1))
        };
        RealInterval::new(start, end)
    }

    /// Index of the first *full* frame starting at or after real time `t`
    /// (the `f₁` of Lemma 7).
    pub fn first_full_frame_after(&self, t: RealTime, clock: &mut DriftedClock) -> u64 {
        let local = clock.local_at(t);
        if local <= self.start_local {
            return 0;
        }
        let elapsed = local.as_nanos() - self.start_local.as_nanos();
        // Frame k starts at start + k*L; we need the least k with
        // start + k*L >= local, i.e. k = ceil(elapsed / L). But a frame
        // starting exactly at `local` counts as full.
        elapsed.div_ceil(self.frame_len.as_nanos())
    }
}

/// The paper's *aligned pair* predicate (Definition 1): `⟨f, g⟩` is aligned
/// if at least one slot of `f` lies completely within `g` (in real time).
///
/// `f_slots` are the three real-time slot intervals of frame `f`; `g` is the
/// real-time interval of frame `g`.
pub fn is_aligned(f_slots: &[RealInterval; 3], g: &RealInterval) -> bool {
    f_slots.iter().any(|s| g.contains_interval(s))
}

/// Computes `overlap(f, ·)` of Definition 2: the indices of frames in
/// `other`'s schedule that overlap the real-time interval `f`. `search_hint`
/// bounds the scan (frames beyond the hint that cannot overlap are skipped
/// automatically).
pub fn overlapping_frames(
    f: &RealInterval,
    other: &FrameSchedule,
    clock: &mut DriftedClock,
    max_frame: u64,
) -> Vec<u64> {
    let mut out = Vec::new();
    for i in 0..=max_frame {
        let g = other.frame_interval(i, clock);
        if g.start() >= f.end() {
            break;
        }
        if g.overlaps(f) {
            out.push(i);
        }
    }
    out
}

/// Searches for an aligned pair among the first `depth` full frames of `v`
/// and of `u` after real time `t` (Lemma 7 proves `depth = 2` suffices when
/// δ ≤ 1/7). Returns `(frame_of_v, frame_of_u)` if found.
pub fn find_aligned_pair_after(
    t: RealTime,
    v_sched: &FrameSchedule,
    v_clock: &mut DriftedClock,
    u_sched: &FrameSchedule,
    u_clock: &mut DriftedClock,
    depth: u64,
) -> Option<(u64, u64)> {
    let v0 = v_sched.first_full_frame_after(t, v_clock);
    let u0 = u_sched.first_full_frame_after(t, u_clock);
    for dv in 0..depth {
        let fv = v0 + dv;
        let slots = [
            v_sched.slot_interval(fv, 0, v_clock),
            v_sched.slot_interval(fv, 1, v_clock),
            v_sched.slot_interval(fv, 2, v_clock),
        ];
        for du in 0..depth {
            let gu = u_sched.frame_interval(u0 + du, u_clock);
            if is_aligned(&slots, &gu) {
                return Some((fv, u0 + du));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DriftModel;
    use crate::rate::Rate;
    use mmhew_util::SeedTree;

    fn ideal(offset: u64) -> DriftedClock {
        DriftedClock::ideal(LocalTime::from_nanos(offset))
    }

    fn sched(start: u64, len: u64) -> FrameSchedule {
        FrameSchedule::new(LocalTime::from_nanos(start), LocalDuration::from_nanos(len))
    }

    #[test]
    fn frame_and_slot_boundaries() {
        let s = sched(0, 900);
        assert_eq!(s.slot_len().as_nanos(), 300);
        assert_eq!(s.frame_start_local(3).as_nanos(), 2_700);
        assert_eq!(s.slot_start_local(1, 2).as_nanos(), 1_500);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_frame_len_panics() {
        let _ = sched(0, 1_000);
    }

    #[test]
    #[should_panic(expected = "slot index")]
    fn slot_out_of_range_panics() {
        let _ = sched(0, 900).slot_start_local(0, 3);
    }

    #[test]
    fn projection_through_drifting_clock() {
        // Fast clock 8/7: local frame of 800 ns takes 700 real ns.
        let mut clock = DriftedClock::new(
            DriftModel::Constant(Rate::new(8, 7)),
            LocalTime::ZERO,
            SeedTree::new(0),
        );
        let s = sched(0, 840);
        let f0 = s.frame_interval(0, &mut clock);
        assert_eq!(f0.start().as_nanos(), 0);
        assert_eq!(f0.end().as_nanos(), 735); // 840 * 7/8
        let slot1 = s.slot_interval(0, 1, &mut clock);
        assert_eq!(slot1.start().as_nanos(), 245);
        assert_eq!(slot1.end().as_nanos(), 490);
    }

    #[test]
    fn slots_tile_the_frame() {
        let mut clock = DriftedClock::new(
            DriftModel::RandomPiecewise {
                bound: crate::drift::DriftBound::PAPER,
                segment: crate::duration::RealDuration::from_nanos(777),
            },
            LocalTime::from_nanos(55),
            SeedTree::new(3),
        );
        let s = sched(100, 3_000);
        for frame in 0..20 {
            let f = s.frame_interval(frame, &mut clock);
            let s0 = s.slot_interval(frame, 0, &mut clock);
            let s1 = s.slot_interval(frame, 1, &mut clock);
            let s2 = s.slot_interval(frame, 2, &mut clock);
            assert_eq!(s0.start(), f.start());
            assert_eq!(s0.end(), s1.start());
            assert_eq!(s1.end(), s2.start());
            assert_eq!(s2.end(), f.end());
        }
    }

    #[test]
    fn first_full_frame_after_boundaries() {
        let mut clock = ideal(0);
        let s = sched(100, 300);
        // Before the schedule starts: frame 0 is the first full frame.
        assert_eq!(
            s.first_full_frame_after(RealTime::from_nanos(0), &mut clock),
            0
        );
        assert_eq!(
            s.first_full_frame_after(RealTime::from_nanos(100), &mut clock),
            0
        );
        // Inside frame 0: frame 1 is the next full frame.
        assert_eq!(
            s.first_full_frame_after(RealTime::from_nanos(101), &mut clock),
            1
        );
        assert_eq!(
            s.first_full_frame_after(RealTime::from_nanos(400), &mut clock),
            1
        );
        assert_eq!(
            s.first_full_frame_after(RealTime::from_nanos(401), &mut clock),
            2
        );
    }

    #[test]
    fn alignment_predicate() {
        let mut cv = ideal(0);
        let mut cu = ideal(0);
        let sv = sched(0, 300);
        // Identical schedules: frame 0 of v aligns with frame 0 of u.
        let slots = [
            sv.slot_interval(0, 0, &mut cv),
            sv.slot_interval(0, 1, &mut cv),
            sv.slot_interval(0, 2, &mut cv),
        ];
        let g = sched(0, 300).frame_interval(0, &mut cu);
        assert!(is_aligned(&slots, &g));
        // A frame far away does not align.
        let far = sched(0, 300).frame_interval(5, &mut cu);
        assert!(!is_aligned(&slots, &far));
    }

    #[test]
    fn misaligned_by_half_slot_still_aligns() {
        // u's frames shifted by half a slot: middle slot of v still fits.
        let mut cv = ideal(0);
        let mut cu = ideal(0);
        let sv = sched(0, 300);
        let su = sched(50, 300);
        let slots = [
            sv.slot_interval(1, 0, &mut cv),
            sv.slot_interval(1, 1, &mut cv),
            sv.slot_interval(1, 2, &mut cv),
        ];
        // v frame 1: [300,600); u frame 0: [50,350), frame 1: [350,650).
        // Slot [400,500) of v fits inside u's frame 1.
        let g1 = su.frame_interval(1, &mut cu);
        assert!(is_aligned(&slots, &g1));
    }

    #[test]
    fn lemma4_overlap_at_most_three_ideal() {
        let mut cf = ideal(0);
        let mut cg = ideal(0);
        let sf = sched(37, 300);
        let sg = sched(190, 300);
        for i in 0..30 {
            let f = sf.frame_interval(i, &mut cf);
            let ov = overlapping_frames(&f, &sg, &mut cg, 200);
            assert!(
                (1..=3).contains(&ov.len()),
                "frame {i} overlaps {} frames",
                ov.len()
            );
        }
    }

    #[test]
    fn lemma7_aligned_pair_within_two_frames_max_drift() {
        // v fast at +1/7, u slow at -1/7, adversarial offsets.
        for (ov, ou) in [(0u64, 0u64), (123, 456), (999, 1), (250, 875)] {
            let mut cv = DriftedClock::new(
                DriftModel::Constant(Rate::new(8, 7)),
                LocalTime::from_nanos(ov),
                SeedTree::new(0),
            );
            let mut cu = DriftedClock::new(
                DriftModel::Constant(Rate::new(6, 7)),
                LocalTime::from_nanos(ou),
                SeedTree::new(1),
            );
            let sv =
                FrameSchedule::new(LocalTime::from_nanos(ov), LocalDuration::from_nanos(2_100));
            let su =
                FrameSchedule::new(LocalTime::from_nanos(ou), LocalDuration::from_nanos(2_100));
            for t in [0u64, 500, 1_000, 5_000, 20_000] {
                let found =
                    find_aligned_pair_after(RealTime::from_nanos(t), &sv, &mut cv, &su, &mut cu, 2);
                assert!(
                    found.is_some(),
                    "no aligned pair after t={t} (ov={ov}, ou={ou})"
                );
            }
        }
    }

    #[test]
    fn lemma7_can_fail_beyond_the_drift_bound() {
        // With drift far above 1/7 (here ±1/2), alignment within depth 2 can
        // fail for some configurations — demonstrating the assumption is
        // load-bearing. A slow transmitter's slots (real length 2L/3) cannot
        // fit inside a fast receiver's frames (real length 2L/3) unless
        // perfectly aligned. We only require that *some* configuration fails.
        let mut any_failure = false;
        for ou in (0..2_100).step_by(50) {
            let mut cv = DriftedClock::new(
                DriftModel::Constant(Rate::new(1, 2)),
                LocalTime::ZERO,
                SeedTree::new(0),
            );
            let mut cu = DriftedClock::new(
                DriftModel::Constant(Rate::new(3, 2)),
                LocalTime::ZERO,
                SeedTree::new(1),
            );
            let sv = FrameSchedule::new(LocalTime::ZERO, LocalDuration::from_nanos(2_100));
            let su =
                FrameSchedule::new(LocalTime::from_nanos(ou), LocalDuration::from_nanos(2_100));
            if find_aligned_pair_after(RealTime::ZERO, &sv, &mut cv, &su, &mut cu, 2).is_none() {
                any_failure = true;
                break;
            }
        }
        assert!(any_failure, "expected some misalignment at drift 1/2");
    }
}
