//! Exact rational clock rates.
//!
//! The paper's Assumption 1 bounds the *drift rate* of every clock:
//! `|dC/dt − 1| ≤ δ` with `δ ≤ 1/7`. Representing rates as `f64` would make
//! event ordering in the asynchronous engine depend on floating-point
//! rounding, so rates are exact rationals `num/den` evaluated with 128-bit
//! intermediate arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An exact rational clock rate `num/den` (local seconds per real second).
///
/// A perfect clock has rate 1. A rate above 1 is a *fast* clock (positive
/// drift), below 1 a *slow* clock.
///
/// # Examples
///
/// ```
/// use mmhew_time::Rate;
///
/// let fast = Rate::new(8, 7); // drift +1/7, the paper's limit
/// assert!((fast.drift() - 1.0 / 7.0).abs() < 1e-12);
/// assert_eq!(fast.local_elapsed(7_000), 8_000);
/// assert_eq!(fast.real_elapsed_to_reach(8_000), 7_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rate {
    num: u64,
    den: u64,
}

impl Rate {
    /// The perfect rate 1/1.
    pub const ONE: Self = Self { num: 1, den: 1 };

    /// Creates the rate `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if either part is zero.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "rate parts must be positive");
        Self { num, den }
    }

    /// Creates the rate `1 + drift_num/drift_den` (signed drift).
    ///
    /// # Panics
    ///
    /// Panics if `drift_den == 0` or the drift is ≤ −1 (non-positive rate).
    pub fn from_drift(drift_num: i64, drift_den: u64) -> Self {
        assert!(drift_den > 0, "drift denominator must be positive");
        let den = drift_den;
        let num = den as i128 + drift_num as i128;
        assert!(num > 0, "drift must be > -1");
        Self::new(num as u64, den)
    }

    /// Numerator.
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Denominator.
    pub fn den(&self) -> u64 {
        self.den
    }

    /// The drift rate `num/den − 1` as a float (reporting only).
    pub fn drift(&self) -> f64 {
        self.num as f64 / self.den as f64 - 1.0
    }

    /// True if `|rate − 1| ≤ bound_num/bound_den`, evaluated exactly.
    pub fn drift_within(&self, bound_num: u64, bound_den: u64) -> bool {
        // |num/den - 1| <= bn/bd  <=>  |num - den| * bd <= bn * den
        let diff = self.num.abs_diff(self.den) as u128;
        diff * bound_den as u128 <= bound_num as u128 * self.den as u128
    }

    /// Local nanoseconds elapsed over `real_ns` real nanoseconds, flooring.
    #[inline]
    pub fn local_elapsed(&self, real_ns: u64) -> u64 {
        (real_ns as u128 * self.num as u128 / self.den as u128) as u64
    }

    /// The least number of real nanoseconds `r` such that
    /// `local_elapsed(r) ≥ local_ns`.
    ///
    /// This is the exact inverse used for scheduling: a node asks "when does
    /// my clock reach local offset `l`?" and the engine gets the earliest
    /// real instant at which that holds.
    #[inline]
    pub fn real_elapsed_to_reach(&self, local_ns: u64) -> u64 {
        // least r with floor(r*num/den) >= l  <=>  r*num >= l*den
        // <=> r >= ceil(l*den/num)
        let l = local_ns as u128;
        let num = self.num as u128;
        let den = self.den as u128;
        ((l * den).div_ceil(num)) as u64
    }
}

impl Default for Rate {
    fn default() -> Self {
        Self::ONE
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_is_identity() {
        assert_eq!(Rate::ONE.local_elapsed(12345), 12345);
        assert_eq!(Rate::ONE.real_elapsed_to_reach(12345), 12345);
        assert_eq!(Rate::ONE.drift(), 0.0);
        assert_eq!(Rate::default(), Rate::ONE);
    }

    #[test]
    fn from_drift_constructors() {
        assert_eq!(Rate::from_drift(1, 7), Rate::new(8, 7));
        assert_eq!(Rate::from_drift(-1, 7), Rate::new(6, 7));
        assert_eq!(Rate::from_drift(0, 3), Rate::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "drift must be > -1")]
    fn from_drift_rejects_stopped_clock() {
        let _ = Rate::from_drift(-7, 7);
    }

    #[test]
    fn drift_within_exact() {
        assert!(Rate::new(8, 7).drift_within(1, 7));
        assert!(!Rate::new(8, 7).drift_within(1, 8));
        assert!(Rate::new(6, 7).drift_within(1, 7));
        assert!(Rate::ONE.drift_within(0, 1));
        // 1.1 has drift exactly 1/10.
        assert!(Rate::new(11, 10).drift_within(1, 10));
        assert!(!Rate::new(11, 10).drift_within(99, 1000));
    }

    #[test]
    fn elapsed_floors() {
        let r = Rate::new(3, 7);
        assert_eq!(r.local_elapsed(7), 3);
        assert_eq!(r.local_elapsed(8), 3); // 24/7 = 3.43 -> 3
        assert_eq!(r.local_elapsed(13), 5); // 39/7 = 5.57 -> 5
    }

    #[test]
    fn inverse_is_exact_least_preimage() {
        for (num, den) in [(8u64, 7u64), (6, 7), (1, 1), (1_000_001, 1_000_000)] {
            let r = Rate::new(num, den);
            for local in [0u64, 1, 2, 3, 100, 999, 12_345] {
                let real = r.real_elapsed_to_reach(local);
                assert!(
                    r.local_elapsed(real) >= local,
                    "{r}: local_elapsed({real}) < {local}"
                );
                if real > 0 {
                    assert!(
                        r.local_elapsed(real - 1) < local,
                        "{r}: real {real} not minimal for {local}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_overflow_at_large_times() {
        // A century of nanoseconds under a fast clock with a large denominator.
        let r = Rate::new(1_000_000_001, 1_000_000_000);
        let century_ns = 100u64 * 365 * 24 * 3600 * 1_000_000_000;
        let local = r.local_elapsed(century_ns);
        assert!(local > century_ns);
        let back = r.real_elapsed_to_reach(local);
        assert!(back <= century_ns);
        assert!(century_ns - back <= 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Rate::new(0, 1);
    }
}
