//! Drift-rate bounds and drift behaviour models.

use crate::rate::Rate;
use crate::RealDuration;
use mmhew_util::SeedTree;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An exact rational bound `num/den` on the magnitude of the drift rate,
/// the `δ` of the paper's Assumption 1.
///
/// # Examples
///
/// ```
/// use mmhew_time::{DriftBound, Rate};
///
/// let delta = DriftBound::PAPER; // 1/7
/// assert!(delta.admits(Rate::new(8, 7)));
/// assert!(!delta.admits(Rate::new(6, 5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DriftBound {
    num: u64,
    den: u64,
}

impl DriftBound {
    /// The paper's Assumption 1 bound, `δ = 1/7`.
    pub const PAPER: Self = Self { num: 1, den: 7 };

    /// A zero bound (only ideal clocks admitted).
    pub const ZERO: Self = Self { num: 0, den: 1 };

    /// Creates the bound `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or the bound is ≥ 1 (a drift of −1 stops the
    /// clock entirely).
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den > 0, "bound denominator must be positive");
        assert!(num < den, "drift bound must be < 1");
        Self { num, den }
    }

    /// Numerator.
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Denominator.
    pub fn den(&self) -> u64 {
        self.den
    }

    /// Bound value as a float (reporting only).
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True if the rate's drift magnitude is within this bound (exact).
    pub fn admits(&self, rate: Rate) -> bool {
        rate.drift_within(self.num, self.den)
    }

    /// The fastest rate admitted, `1 + δ`.
    pub fn fastest(&self) -> Rate {
        Rate::new(self.den + self.num, self.den)
    }

    /// The slowest rate admitted, `1 − δ`.
    pub fn slowest(&self) -> Rate {
        Rate::new(self.den - self.num, self.den)
    }
}

impl fmt::Display for DriftBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "δ≤{}/{}", self.num, self.den)
    }
}

/// How a node's clock rate evolves over real time.
///
/// All variants produce rates whose drift magnitude stays within a stated
/// [`DriftBound`]; the asynchronous engine verifies this at construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum DriftModel {
    /// A perfect clock (`dC/dt = 1` forever).
    #[default]
    Ideal,
    /// A constant, possibly non-unit rate.
    Constant(Rate),
    /// Deterministic alternation between two rates every `period`, which
    /// exercises drift whose *sign* changes over time.
    Alternating {
        /// Rate used on even segments.
        first: Rate,
        /// Rate used on odd segments.
        second: Rate,
        /// Real-time length of each segment.
        period: RealDuration,
    },
    /// A new rate uniformly sampled from `[1 − δ, 1 + δ]` every `segment`
    /// of real time — the adversarial "drift rate may change over time both
    /// in magnitude and sign" behaviour the paper admits.
    RandomPiecewise {
        /// Bound `δ` on the sampled drift magnitude.
        bound: DriftBound,
        /// Real-time length of each constant-rate segment.
        segment: RealDuration,
    },
}

impl DriftModel {
    /// The tightest bound this model promises to respect.
    pub fn bound(&self) -> DriftBound {
        match self {
            DriftModel::Ideal => DriftBound::ZERO,
            DriftModel::Constant(rate) => rate_bound(*rate),
            DriftModel::Alternating { first, second, .. } => {
                let a = rate_bound(*first);
                let b = rate_bound(*second);
                if a.as_f64() >= b.as_f64() {
                    a
                } else {
                    b
                }
            }
            DriftModel::RandomPiecewise { bound, .. } => *bound,
        }
    }

    /// Real-time length of the `index`-th constant-rate segment.
    pub(crate) fn segment_len(&self) -> RealDuration {
        match self {
            DriftModel::Ideal | DriftModel::Constant(_) => {
                // One effectively-infinite segment.
                RealDuration::from_nanos(u64::MAX / 2)
            }
            DriftModel::Alternating { period, .. } => *period,
            DriftModel::RandomPiecewise { segment, .. } => *segment,
        }
    }

    /// The rate of the `index`-th segment, drawing randomness from `seed`
    /// (deterministic: segment `i` always gets the same rate for the same
    /// seed).
    pub(crate) fn segment_rate(&self, index: u64, seed: SeedTree) -> Rate {
        match self {
            DriftModel::Ideal => Rate::ONE,
            DriftModel::Constant(rate) => *rate,
            DriftModel::Alternating { first, second, .. } => {
                if index.is_multiple_of(2) {
                    *first
                } else {
                    *second
                }
            }
            DriftModel::RandomPiecewise { bound, .. } => {
                // Resolution: 1000 steps per unit of the bound numerator.
                const RES: u64 = 1000;
                let den = bound.den * RES;
                let spread = (bound.num * RES) as i64;
                let mut rng = seed.branch("drift-seg").index(index).rng();
                let offset: i64 = rng.gen_range(-spread..=spread);
                Rate::new((den as i64 + offset) as u64, den)
            }
        }
    }
}

/// The smallest `DriftBound` admitting `rate` (with the rate's own
/// denominator).
fn rate_bound(rate: Rate) -> DriftBound {
    let diff = rate.num().abs_diff(rate.den());
    if diff == 0 {
        DriftBound::ZERO
    } else {
        DriftBound::new(diff, rate.den())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bound_limits() {
        let d = DriftBound::PAPER;
        assert_eq!(d.fastest(), Rate::new(8, 7));
        assert_eq!(d.slowest(), Rate::new(6, 7));
        assert!(d.admits(Rate::ONE));
        assert!(d.admits(Rate::new(8, 7)));
        assert!(d.admits(Rate::new(6, 7)));
        assert!(!d.admits(Rate::new(9, 7)));
    }

    #[test]
    fn zero_bound_admits_only_ideal() {
        assert!(DriftBound::ZERO.admits(Rate::ONE));
        assert!(DriftBound::ZERO.admits(Rate::new(5, 5)));
        assert!(!DriftBound::ZERO.admits(Rate::new(1_000_001, 1_000_000)));
    }

    #[test]
    #[should_panic(expected = "must be < 1")]
    fn bound_of_one_rejected() {
        let _ = DriftBound::new(7, 7);
    }

    #[test]
    fn model_bounds() {
        assert_eq!(DriftModel::Ideal.bound(), DriftBound::ZERO);
        let c = DriftModel::Constant(Rate::new(8, 7));
        assert!(c.bound().admits(Rate::new(8, 7)));
        let alt = DriftModel::Alternating {
            first: Rate::new(8, 7),
            second: Rate::new(6, 7),
            period: RealDuration::from_millis(1),
        };
        assert!(alt.bound().admits(Rate::new(8, 7)));
        assert!(alt.bound().admits(Rate::new(6, 7)));
    }

    #[test]
    fn alternating_rates_by_parity() {
        let alt = DriftModel::Alternating {
            first: Rate::new(8, 7),
            second: Rate::new(6, 7),
            period: RealDuration::from_millis(1),
        };
        let seed = SeedTree::new(0);
        assert_eq!(alt.segment_rate(0, seed), Rate::new(8, 7));
        assert_eq!(alt.segment_rate(1, seed), Rate::new(6, 7));
        assert_eq!(alt.segment_rate(2, seed), Rate::new(8, 7));
    }

    #[test]
    fn random_piecewise_respects_bound_and_is_deterministic() {
        let model = DriftModel::RandomPiecewise {
            bound: DriftBound::PAPER,
            segment: RealDuration::from_millis(5),
        };
        let seed = SeedTree::new(77);
        for i in 0..200 {
            let r = model.segment_rate(i, seed);
            assert!(
                DriftBound::PAPER.admits(r),
                "segment {i} rate {r} exceeds bound"
            );
            assert_eq!(r, model.segment_rate(i, seed), "must be deterministic");
        }
        // Rates actually vary.
        let distinct: std::collections::HashSet<_> =
            (0..50).map(|i| model.segment_rate(i, seed)).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn random_piecewise_different_seeds_differ() {
        let model = DriftModel::RandomPiecewise {
            bound: DriftBound::PAPER,
            segment: RealDuration::from_millis(5),
        };
        let a: Vec<Rate> = (0..20)
            .map(|i| model.segment_rate(i, SeedTree::new(1)))
            .collect();
        let b: Vec<Rate> = (0..20)
            .map(|i| model.segment_rate(i, SeedTree::new(2)))
            .collect();
        assert_ne!(a, b);
    }
}
