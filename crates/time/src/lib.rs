//! Simulated time for the `mmhew` workspace: real/local timelines, exact
//! rational clock rates, bounded-drift clocks, and the frame/slot structure
//! of the paper's asynchronous algorithm.
//!
//! # Model
//!
//! The paper's asynchronous system (§II) equips every node with a clock
//! whose drift rate is bounded: `(1−δ)Δt ≤ C(t+Δt) − C(t) ≤ (1+δ)Δt`
//! (Eq. 1), with `δ ≤ 1/7` (Assumption 1). Offsets between clocks are
//! arbitrary; the drift rate of one clock may change over time in both
//! magnitude and sign.
//!
//! This crate realizes that model with *exact integer arithmetic*:
//!
//! * [`RealTime`]/[`LocalTime`] are distinct `u64`-nanosecond newtypes, so
//!   the type system prevents mixing timelines;
//! * [`Rate`] is an exact rational `num/den`, and [`DriftedClock`] is a lazy
//!   piecewise-linear monotone map built from a [`DriftModel`];
//! * [`FrameSchedule`] produces the frames and 3-slot subdivisions of
//!   Algorithm 4, projected onto real time through a clock;
//! * [`is_aligned`], [`overlapping_frames`] and [`find_aligned_pair_after`]
//!   are the structural predicates of Definitions 1–2 and Lemmas 4/7,
//!   reused by both the engine and the E9 experiment.
//!
//! # Examples
//!
//! ```
//! use mmhew_time::*;
//! use mmhew_util::SeedTree;
//!
//! // A clock drifting randomly within the paper's bound.
//! let model = DriftModel::RandomPiecewise {
//!     bound: DriftBound::PAPER,
//!     segment: RealDuration::from_millis(1),
//! };
//! let mut clock = DriftedClock::new(model, LocalTime::ZERO, SeedTree::new(7));
//! let schedule = FrameSchedule::new(LocalTime::ZERO, LocalDuration::from_micros(300));
//! let f0 = schedule.frame_interval(0, &mut clock);
//! assert!(f0.len().as_nanos() > 0);
//! ```

pub mod admissible;
pub mod clock;
pub mod drift;
pub mod duration;
pub mod frame;
pub mod rate;

pub use admissible::{admissible_sequence, check_admissible, FramePair};
pub use clock::DriftedClock;
pub use drift::{DriftBound, DriftModel};
pub use duration::{LocalDuration, LocalTime, RealDuration, RealInterval, RealTime};
pub use frame::{
    find_aligned_pair_after, is_aligned, overlapping_frames, FrameSchedule, SLOTS_PER_FRAME,
};
pub use rate::Rate;
