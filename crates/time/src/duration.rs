//! Integer nanosecond time points and durations.
//!
//! Two distinct timelines exist in an asynchronous M²HeW simulation:
//!
//! * **real time** — the global timeline of the simulated world, which no
//!   node can observe directly;
//! * **local time** — what a node's (possibly drifting) clock reads.
//!
//! Mixing the two is a classic source of simulator bugs, so each gets its
//! own newtype family. All values are unsigned 64-bit nanosecond counts;
//! 2^64 ns ≈ 584 years of simulated time, far beyond any experiment here.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

macro_rules! time_point {
    ($(#[$doc:meta])* $point:ident, $duration:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $point(u64);

        impl $point {
            /// The origin of this timeline.
            pub const ZERO: Self = Self(0);
            /// The largest representable instant.
            pub const MAX: Self = Self(u64::MAX);

            /// Creates a time point `ns` nanoseconds after the origin.
            pub const fn from_nanos(ns: u64) -> Self {
                Self(ns)
            }

            /// Nanoseconds since the origin.
            pub const fn as_nanos(self) -> u64 {
                self.0
            }

            /// Duration since an earlier instant.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `earlier` is later than `self`.
            pub fn duration_since(self, earlier: Self) -> $duration {
                debug_assert!(earlier.0 <= self.0, "duration_since of later instant");
                $duration(self.0 - earlier.0)
            }

            /// Duration since an earlier instant, or zero if `earlier` is
            /// actually later.
            pub fn saturating_duration_since(self, earlier: Self) -> $duration {
                $duration(self.0.saturating_sub(earlier.0))
            }

            /// Checked addition of a duration.
            pub fn checked_add(self, d: $duration) -> Option<Self> {
                self.0.checked_add(d.0).map(Self)
            }
        }

        impl Add<$duration> for $point {
            type Output = $point;
            fn add(self, rhs: $duration) -> $point {
                $point(self.0.checked_add(rhs.0).expect("time overflow"))
            }
        }

        impl AddAssign<$duration> for $point {
            fn add_assign(&mut self, rhs: $duration) {
                *self = *self + rhs;
            }
        }

        impl Sub<$duration> for $point {
            type Output = $point;
            fn sub(self, rhs: $duration) -> $point {
                $point(self.0.checked_sub(rhs.0).expect("time underflow"))
            }
        }

        impl Sub<$point> for $point {
            type Output = $duration;
            fn sub(self, rhs: $point) -> $duration {
                self.duration_since(rhs)
            }
        }

        impl fmt::Display for $point {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}ns", self.0)
            }
        }

        #[doc = concat!("A span on the same timeline as [`", stringify!($point), "`].")]
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $duration(u64);

        impl $duration {
            /// The zero-length span.
            pub const ZERO: Self = Self(0);

            /// Creates a duration of `ns` nanoseconds.
            pub const fn from_nanos(ns: u64) -> Self {
                Self(ns)
            }

            /// Creates a duration of `us` microseconds.
            pub const fn from_micros(us: u64) -> Self {
                Self(us * 1_000)
            }

            /// Creates a duration of `ms` milliseconds.
            pub const fn from_millis(ms: u64) -> Self {
                Self(ms * 1_000_000)
            }

            /// Creates a duration of `s` seconds.
            pub const fn from_secs(s: u64) -> Self {
                Self(s * 1_000_000_000)
            }

            /// Nanosecond count.
            pub const fn as_nanos(self) -> u64 {
                self.0
            }

            /// Seconds as a float, for reporting only.
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / 1e9
            }

            /// `self / divisor`, flooring.
            ///
            /// # Panics
            ///
            /// Panics if `divisor` is zero.
            pub const fn div_floor(self, divisor: u64) -> Self {
                Self(self.0 / divisor)
            }

            /// True if the span is zero.
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }
        }

        impl Add for $duration {
            type Output = $duration;
            fn add(self, rhs: Self) -> Self {
                Self(self.0.checked_add(rhs.0).expect("duration overflow"))
            }
        }

        impl AddAssign for $duration {
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sub for $duration {
            type Output = $duration;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0.checked_sub(rhs.0).expect("duration underflow"))
            }
        }

        impl SubAssign for $duration {
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Mul<u64> for $duration {
            type Output = $duration;
            fn mul(self, rhs: u64) -> Self {
                Self(self.0.checked_mul(rhs).expect("duration overflow"))
            }
        }

        impl fmt::Display for $duration {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0 >= 1_000_000_000 && self.0 % 1_000_000 == 0 {
                    write!(f, "{:.3}s", self.as_secs_f64())
                } else {
                    write!(f, "{}ns", self.0)
                }
            }
        }
    };
}

time_point!(
    /// An instant on the global (simulated-world) timeline.
    RealTime,
    RealDuration
);

time_point!(
    /// An instant as read on one node's local clock.
    LocalTime,
    LocalDuration
);

/// A half-open interval `[start, end)` of real time.
///
/// # Examples
///
/// ```
/// use mmhew_time::{RealInterval, RealTime};
///
/// let a = RealInterval::new(RealTime::from_nanos(0), RealTime::from_nanos(10));
/// let b = RealInterval::new(RealTime::from_nanos(5), RealTime::from_nanos(15));
/// assert!(a.overlaps(&b));
/// assert!(!a.contains_interval(&b));
/// assert!(a.contains_interval(&RealInterval::new(
///     RealTime::from_nanos(2),
///     RealTime::from_nanos(9),
/// )));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RealInterval {
    start: RealTime,
    end: RealTime,
}

impl RealInterval {
    /// Creates the interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: RealTime, end: RealTime) -> Self {
        assert!(start <= end, "interval end before start");
        Self { start, end }
    }

    /// Interval start (inclusive).
    pub fn start(&self) -> RealTime {
        self.start
    }

    /// Interval end (exclusive).
    pub fn end(&self) -> RealTime {
        self.end
    }

    /// Length of the interval.
    pub fn len(&self) -> RealDuration {
        self.end.duration_since(self.start)
    }

    /// True for the degenerate empty interval.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if the instant lies inside `[start, end)`.
    pub fn contains(&self, t: RealTime) -> bool {
        self.start <= t && t < self.end
    }

    /// True if the two intervals share any time (half-open semantics:
    /// touching endpoints do not overlap, and empty intervals overlap
    /// nothing).
    pub fn overlaps(&self, other: &RealInterval) -> bool {
        self.start.max(other.start) < self.end.min(other.end)
    }

    /// True if `other` lies entirely within `self` (closure inclusive:
    /// `other` may share either endpoint).
    pub fn contains_interval(&self, other: &RealInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// The overlap of two intervals, if non-empty.
    pub fn intersection(&self, other: &RealInterval) -> Option<RealInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(RealInterval { start, end })
        } else {
            None
        }
    }
}

impl fmt::Display for RealInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ri(a: u64, b: u64) -> RealInterval {
        RealInterval::new(RealTime::from_nanos(a), RealTime::from_nanos(b))
    }

    #[test]
    fn point_and_duration_arithmetic() {
        let t = RealTime::from_nanos(100);
        let d = RealDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t - d).as_nanos(), 60);
        assert_eq!((t + d) - t, d);
        assert_eq!(d + d, RealDuration::from_nanos(80));
        assert_eq!(d * 3, RealDuration::from_nanos(120));
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(RealDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(RealDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(LocalDuration::from_micros(5).as_nanos(), 5_000);
    }

    #[test]
    fn saturating_duration() {
        let a = RealTime::from_nanos(5);
        let b = RealTime::from_nanos(9);
        assert_eq!(a.saturating_duration_since(b), RealDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a).as_nanos(), 4);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        let _ = RealTime::MAX + RealDuration::from_nanos(1);
    }

    #[test]
    fn local_and_real_are_distinct_types() {
        // This is a compile-time property; just exercise both.
        let l = LocalTime::from_nanos(1) + LocalDuration::from_nanos(2);
        let r = RealTime::from_nanos(1) + RealDuration::from_nanos(2);
        assert_eq!(l.as_nanos(), r.as_nanos());
    }

    #[test]
    fn interval_overlap_half_open() {
        assert!(ri(0, 10).overlaps(&ri(9, 20)));
        assert!(!ri(0, 10).overlaps(&ri(10, 20)), "touching is not overlap");
        assert!(!ri(10, 20).overlaps(&ri(0, 10)));
        assert!(ri(0, 10).overlaps(&ri(0, 1)));
    }

    #[test]
    fn interval_containment() {
        assert!(ri(0, 10).contains_interval(&ri(0, 10)));
        assert!(ri(0, 10).contains_interval(&ri(3, 7)));
        assert!(!ri(0, 10).contains_interval(&ri(3, 11)));
        assert!(ri(0, 10).contains(RealTime::from_nanos(0)));
        assert!(!ri(0, 10).contains(RealTime::from_nanos(10)));
    }

    #[test]
    fn interval_intersection() {
        assert_eq!(ri(0, 10).intersection(&ri(5, 15)), Some(ri(5, 10)));
        assert_eq!(ri(0, 10).intersection(&ri(10, 15)), None);
        assert_eq!(ri(0, 10).intersection(&ri(2, 3)), Some(ri(2, 3)));
    }

    #[test]
    fn empty_interval() {
        let e = ri(5, 5);
        assert!(e.is_empty());
        assert!(!e.overlaps(&ri(0, 10)));
        assert_eq!(e.len(), RealDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn inverted_interval_panics() {
        let _ = ri(10, 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(RealDuration::from_secs(1).to_string(), "1.000s");
        assert_eq!(RealDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(RealTime::from_nanos(8).to_string(), "8ns");
        assert_eq!(ri(1, 2).to_string(), "[1ns, 2ns)");
    }
}
