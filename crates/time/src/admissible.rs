//! The admissible frame-pair sequences of §IV (Definitions 3–4, Lemma 8).
//!
//! The asynchronous analysis needs coverage attempts that behave like
//! independent trials. An *admissible sequence* for a link `(v, u)` is a
//! sequence of frame-pairs `⟨f, g⟩` (one frame of `v`, one of `u`) that
//! (1) belong to the right nodes, (2) strictly advance in time, (3) are
//! each *aligned* (Definition 1), and (4) have pairwise-disjoint
//! `overlapAll` neighborhoods so the random choices involved are
//! independent. Lemma 8 proves any window containing `M` full frames of
//! both nodes yields an admissible sequence of length ≥ `M/6`.
//!
//! This module implements the proof's two-step construction — greedy
//! aligned-pair selection via Lemma 7 (`γ`), then keeping every third
//! pair (`σ`) — and a checker for the four admissibility conditions, so
//! both can be validated empirically (experiment E9).

use crate::clock::DriftedClock;
use crate::duration::RealTime;
use crate::frame::{find_aligned_pair_after, overlapping_frames, FrameSchedule};

/// One aligned frame-pair: frame `of_v` of the transmitter and frame
/// `of_u` of the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FramePair {
    /// Frame index at node `v` (the transmitter of the link).
    pub of_v: u64,
    /// Frame index at node `u` (the receiver).
    pub of_u: u64,
}

/// Constructs an admissible sequence for the link `(v, u)` starting at
/// `t_s`, following the proof of Lemma 8: repeatedly apply Lemma 7 to the
/// earlier end-time of the previous pair to build the dense sequence `γ`,
/// then keep every third pair.
///
/// `max_frames` bounds the construction (the window of Lemma 8); the
/// returned sequence uses only frames with index below `max_frames` at
/// both nodes.
pub fn admissible_sequence(
    t_s: RealTime,
    v_sched: &FrameSchedule,
    v_clock: &mut DriftedClock,
    u_sched: &FrameSchedule,
    u_clock: &mut DriftedClock,
    max_frames: u64,
) -> Vec<FramePair> {
    let mut gamma: Vec<FramePair> = Vec::new();
    let mut t = t_s;
    while let Some((fv, fu)) = find_aligned_pair_after(t, v_sched, v_clock, u_sched, u_clock, 2) {
        if fv >= max_frames || fu >= max_frames {
            break;
        }
        // T_k = the earlier of the end times of the two selected frames.
        let v_end = v_sched.frame_interval(fv, v_clock).end();
        let u_end = u_sched.frame_interval(fu, u_clock).end();
        t = v_end.min(u_end);
        gamma.push(FramePair { of_v: fv, of_u: fu });
    }
    // σ: every third pair of γ, starting with the first.
    gamma.into_iter().step_by(3).collect()
}

/// Verifies the four conditions of Definition 4 for a candidate sequence,
/// returning the first violated condition number (1–4) or `None` if the
/// sequence is admissible. Condition 1 (node ownership) is structural
/// here — pairs are built from the two schedules — so only 2–4 can fail.
pub fn check_admissible(
    pairs: &[FramePair],
    v_sched: &FrameSchedule,
    v_clock: &mut DriftedClock,
    u_sched: &FrameSchedule,
    u_clock: &mut DriftedClock,
) -> Option<u8> {
    // Condition 2: strict precedence of start times in both coordinates.
    for w in pairs.windows(2) {
        let (a, b) = (w[0], w[1]);
        let va = v_sched.frame_interval(a.of_v, v_clock).start();
        let vb = v_sched.frame_interval(b.of_v, v_clock).start();
        let ua = u_sched.frame_interval(a.of_u, u_clock).start();
        let ub = u_sched.frame_interval(b.of_u, u_clock).start();
        if va >= vb || ua >= ub {
            return Some(2);
        }
    }
    // Condition 3: every pair aligned.
    for p in pairs {
        let slots = [
            v_sched.slot_interval(p.of_v, 0, v_clock),
            v_sched.slot_interval(p.of_v, 1, v_clock),
            v_sched.slot_interval(p.of_v, 2, v_clock),
        ];
        let g = u_sched.frame_interval(p.of_u, u_clock);
        if !crate::frame::is_aligned(&slots, &g) {
            return Some(3);
        }
    }
    // Condition 4: disjoint overlapAll neighborhoods of consecutive
    // receiver frames. overlapAll(g) here means: frames of either node
    // overlapping g (only the two nodes of the link participate in this
    // structural check; interferers are handled probabilistically in
    // Lemma 5's event C).
    for w in pairs.windows(2) {
        let ga = u_sched.frame_interval(w[0].of_u, u_clock);
        let gb = u_sched.frame_interval(w[1].of_u, u_clock);
        let horizon = w[1].of_u.max(w[1].of_v) + 8;
        let va = overlapping_frames(&ga, v_sched, v_clock, horizon);
        let vb = overlapping_frames(&gb, v_sched, v_clock, horizon);
        if va.iter().any(|f| vb.contains(f)) {
            return Some(4);
        }
        let ua = overlapping_frames(&ga, u_sched, u_clock, horizon);
        let ub = overlapping_frames(&gb, u_sched, u_clock, horizon);
        if ua.iter().any(|f| ub.contains(f)) {
            return Some(4);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{DriftBound, DriftModel};
    use crate::duration::{LocalDuration, LocalTime, RealDuration};
    use crate::rate::Rate;
    use mmhew_util::SeedTree;

    const L: u64 = 3_000;

    fn setup(
        model_v: DriftModel,
        model_u: DriftModel,
        offset_u: u64,
        seed: u64,
    ) -> (FrameSchedule, DriftedClock, FrameSchedule, DriftedClock) {
        let cv = DriftedClock::new(model_v, LocalTime::ZERO, SeedTree::new(seed));
        let cu = DriftedClock::new(
            model_u,
            LocalTime::from_nanos(offset_u),
            SeedTree::new(seed ^ 1),
        );
        let sv = FrameSchedule::new(LocalTime::ZERO, LocalDuration::from_nanos(L));
        let su = FrameSchedule::new(
            LocalTime::from_nanos(offset_u),
            LocalDuration::from_nanos(L),
        );
        (sv, cv, su, cu)
    }

    #[test]
    fn ideal_clocks_yield_admissible_sequence_of_lemma8_length() {
        let (sv, mut cv, su, mut cu) = setup(DriftModel::Ideal, DriftModel::Ideal, 1_234, 7);
        let m = 60;
        let seq = admissible_sequence(RealTime::ZERO, &sv, &mut cv, &su, &mut cu, m);
        assert!(
            seq.len() as u64 >= m / 6,
            "Lemma 8 promises ≥ M/6 = {} pairs, got {}",
            m / 6,
            seq.len()
        );
        assert_eq!(
            check_admissible(&seq, &sv, &mut cv, &su, &mut cu),
            None,
            "construction must satisfy Definition 4"
        );
    }

    #[test]
    fn opposed_extreme_drift_still_admissible() {
        let (sv, mut cv, su, mut cu) = setup(
            DriftModel::Constant(Rate::new(8, 7)),
            DriftModel::Constant(Rate::new(6, 7)),
            2_750,
            13,
        );
        let m = 90;
        let seq = admissible_sequence(RealTime::ZERO, &sv, &mut cv, &su, &mut cu, m);
        assert!(seq.len() as u64 >= m / 6, "got {}", seq.len());
        assert_eq!(check_admissible(&seq, &sv, &mut cv, &su, &mut cu), None);
    }

    #[test]
    fn random_drift_admissible_many_offsets() {
        for (i, offset) in [0u64, 777, 1_499, 2_999, 4_242].iter().enumerate() {
            let model = DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_nanos(L / 2),
            };
            let (sv, mut cv, su, mut cu) = setup(model.clone(), model, *offset, i as u64);
            let m = 48;
            let seq = admissible_sequence(RealTime::ZERO, &sv, &mut cv, &su, &mut cu, m);
            assert!(
                seq.len() as u64 >= m / 6,
                "offset {offset}: got {}",
                seq.len()
            );
            assert_eq!(
                check_admissible(&seq, &sv, &mut cv, &su, &mut cu),
                None,
                "offset {offset}"
            );
        }
    }

    #[test]
    fn checker_rejects_unordered_sequences() {
        let (sv, mut cv, su, mut cu) = setup(DriftModel::Ideal, DriftModel::Ideal, 0, 0);
        // Reversed order violates condition 2.
        let reversed = vec![
            FramePair { of_v: 9, of_u: 9 },
            FramePair { of_v: 3, of_u: 3 },
        ];
        assert_eq!(
            check_admissible(&reversed, &sv, &mut cv, &su, &mut cu),
            Some(2)
        );
    }

    #[test]
    fn checker_rejects_overlapping_neighborhoods() {
        // u's schedule phase-shifted by 500ns (ideal clocks, zero clock
        // offsets): u's frame k overlaps v's frames k and k+1, so
        // consecutive receiver frames share a v-frame — condition 4 fails
        // for adjacent pairs (which is exactly why Lemma 8 keeps only
        // every third pair).
        let mut cv = DriftedClock::ideal(LocalTime::ZERO);
        let mut cu = DriftedClock::ideal(LocalTime::ZERO);
        let sv = FrameSchedule::new(LocalTime::ZERO, LocalDuration::from_nanos(L));
        let su = FrameSchedule::new(LocalTime::from_nanos(500), LocalDuration::from_nanos(L));
        let adjacent = vec![
            FramePair { of_v: 0, of_u: 0 },
            FramePair { of_v: 1, of_u: 1 },
        ];
        assert_eq!(
            check_admissible(&adjacent, &sv, &mut cv, &su, &mut cu),
            Some(4)
        );
    }

    #[test]
    fn sequence_respects_max_frames() {
        let (sv, mut cv, su, mut cu) = setup(DriftModel::Ideal, DriftModel::Ideal, 500, 3);
        let seq = admissible_sequence(RealTime::ZERO, &sv, &mut cv, &su, &mut cu, 12);
        assert!(!seq.is_empty());
        for p in &seq {
            assert!(p.of_v < 12 && p.of_u < 12);
        }
    }

    #[test]
    fn starts_after_ts() {
        let (sv, mut cv, su, mut cu) = setup(DriftModel::Ideal, DriftModel::Ideal, 0, 0);
        let ts = RealTime::from_nanos(10 * L);
        let seq = admissible_sequence(ts, &sv, &mut cv, &su, &mut cu, 60);
        assert!(!seq.is_empty());
        for p in &seq {
            let start = sv.frame_interval(p.of_v, &mut cv).start();
            assert!(start >= ts, "pair frame starts before T_s");
        }
    }
}
