//! Drifting clocks: lazy piecewise-linear maps between real and local time.

use crate::drift::{DriftBound, DriftModel};
use crate::duration::{LocalTime, RealTime};
use crate::rate::Rate;
use mmhew_util::SeedTree;

/// One constant-rate span of a clock's real→local mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    /// Real time at which this segment begins.
    real_start: u64,
    /// Local reading at `real_start`.
    local_start: u64,
    /// Rate over this segment.
    rate: Rate,
    /// Real-time length of the segment.
    real_len: u64,
}

impl Segment {
    /// Local reading at the end of the segment.
    fn local_end(&self) -> u64 {
        self.local_start + self.rate.local_elapsed(self.real_len)
    }

    fn real_end(&self) -> u64 {
        self.real_start + self.real_len
    }
}

/// A node's clock: a monotone map from real time to local time with bounded
/// drift rate, per the paper's system model (Eq. 1).
///
/// The map is piecewise linear with exact rational slopes, generated lazily
/// from a [`DriftModel`] as the simulation advances; evaluation uses 128-bit
/// integer arithmetic, so two runs with the same seed order events
/// identically on every platform.
///
/// Clocks of different nodes may have arbitrary offsets (the `offset`
/// argument is the local reading at real time zero) and drift rates that
/// change over time in magnitude and sign — exactly the adversary admitted
/// by Assumption 1.
///
/// # Examples
///
/// ```
/// use mmhew_time::{DriftedClock, DriftModel, LocalTime, Rate, RealTime};
/// use mmhew_util::SeedTree;
///
/// // A clock running fast at the paper's drift limit 1/7.
/// let mut clock = DriftedClock::new(
///     DriftModel::Constant(Rate::new(8, 7)),
///     LocalTime::from_nanos(1_000),
///     SeedTree::new(0),
/// );
/// assert_eq!(clock.local_at(RealTime::ZERO), LocalTime::from_nanos(1_000));
/// assert_eq!(
///     clock.local_at(RealTime::from_nanos(7_000)),
///     LocalTime::from_nanos(9_000),
/// );
/// // Inverse: earliest real instant at which the clock reads ≥ 9_000.
/// assert_eq!(
///     clock.real_when_local_reaches(LocalTime::from_nanos(9_000)),
///     RealTime::from_nanos(7_000),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct DriftedClock {
    model: DriftModel,
    seed: SeedTree,
    segments: Vec<Segment>,
}

impl DriftedClock {
    /// Creates a clock that reads `offset` at real time zero and follows
    /// `model` thereafter. `seed` drives any randomness in the model.
    pub fn new(model: DriftModel, offset: LocalTime, seed: SeedTree) -> Self {
        let first = Segment {
            real_start: 0,
            local_start: offset.as_nanos(),
            rate: model.segment_rate(0, seed),
            real_len: model.segment_len().as_nanos(),
        };
        Self {
            model,
            seed,
            segments: vec![first],
        }
    }

    /// Convenience constructor for an ideal (drift-free) clock.
    pub fn ideal(offset: LocalTime) -> Self {
        Self::new(DriftModel::Ideal, offset, SeedTree::new(0))
    }

    /// The drift model driving this clock.
    pub fn model(&self) -> &DriftModel {
        &self.model
    }

    /// Local reading at real time zero.
    pub fn offset(&self) -> LocalTime {
        LocalTime::from_nanos(self.segments[0].local_start)
    }

    /// The clock's reading at real time `real`.
    pub fn local_at(&mut self, real: RealTime) -> LocalTime {
        let r = real.as_nanos();
        self.extend_to_real(r);
        let seg = self.segment_for_real(r);
        LocalTime::from_nanos(seg.local_start + seg.rate.local_elapsed(r - seg.real_start))
    }

    /// The earliest real instant at which the clock reads at least `local`.
    ///
    /// Local readings before the clock's initial offset map to
    /// [`RealTime::ZERO`].
    pub fn real_when_local_reaches(&mut self, local: LocalTime) -> RealTime {
        let l = local.as_nanos();
        if l <= self.segments[0].local_start {
            return RealTime::ZERO;
        }
        self.extend_to_local(l);
        // Find the first segment whose local_end reaches l.
        let idx = self
            .segments
            .partition_point(|seg| seg.local_end() < l)
            .min(self.segments.len() - 1);
        let seg = &self.segments[idx];
        debug_assert!(seg.local_start < l || idx == 0);
        let within = seg.rate.real_elapsed_to_reach(l - seg.local_start);
        RealTime::from_nanos(seg.real_start + within.min(seg.real_len))
    }

    /// True if every rate generated so far respects `bound` — used by the
    /// engine to validate model configuration against Assumption 1.
    pub fn rates_within(&self, bound: DriftBound) -> bool {
        self.segments.iter().all(|s| bound.admits(s.rate))
    }

    /// Number of constant-rate segments materialized so far (diagnostics).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn extend_to_real(&mut self, real_ns: u64) {
        while self.last().real_end() <= real_ns {
            self.push_segment();
        }
    }

    fn extend_to_local(&mut self, local_ns: u64) {
        while self.last().local_end() < local_ns {
            self.push_segment();
        }
    }

    fn last(&self) -> &Segment {
        self.segments.last().expect("at least one segment")
    }

    fn push_segment(&mut self) {
        let prev = *self.last();
        let index = self.segments.len() as u64;
        let rate = self.model.segment_rate(index, self.seed);
        self.segments.push(Segment {
            real_start: prev.real_end(),
            local_start: prev.local_end(),
            rate,
            real_len: self.model.segment_len().as_nanos(),
        });
    }

    fn segment_for_real(&self, real_ns: u64) -> &Segment {
        let idx = self
            .segments
            .partition_point(|seg| seg.real_end() <= real_ns)
            .min(self.segments.len() - 1);
        &self.segments[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::RealDuration;

    fn lt(ns: u64) -> LocalTime {
        LocalTime::from_nanos(ns)
    }

    fn rt(ns: u64) -> RealTime {
        RealTime::from_nanos(ns)
    }

    #[test]
    fn ideal_clock_is_identity_plus_offset() {
        let mut c = DriftedClock::ideal(lt(500));
        assert_eq!(c.local_at(rt(0)), lt(500));
        assert_eq!(c.local_at(rt(123)), lt(623));
        assert_eq!(c.real_when_local_reaches(lt(623)), rt(123));
        assert_eq!(c.real_when_local_reaches(lt(500)), rt(0));
        assert_eq!(c.real_when_local_reaches(lt(10)), rt(0), "before offset");
    }

    #[test]
    fn slow_clock() {
        let mut c = DriftedClock::new(
            DriftModel::Constant(Rate::new(6, 7)),
            lt(0),
            SeedTree::new(0),
        );
        assert_eq!(c.local_at(rt(7_000)), lt(6_000));
        assert_eq!(c.real_when_local_reaches(lt(6_000)), rt(7_000));
    }

    #[test]
    fn alternating_clock_crosses_segments() {
        let period = RealDuration::from_nanos(700);
        let model = DriftModel::Alternating {
            first: Rate::new(8, 7),
            second: Rate::new(6, 7),
            period,
        };
        let mut c = DriftedClock::new(model, lt(0), SeedTree::new(0));
        // Segment 0: 700 real ns at 8/7 -> 800 local ns.
        assert_eq!(c.local_at(rt(700)), lt(800));
        // Segment 1: next 700 real ns at 6/7 -> +600 local ns.
        assert_eq!(c.local_at(rt(1_400)), lt(1_400));
        // Inverse across the boundary.
        assert_eq!(c.real_when_local_reaches(lt(800)), rt(700));
        assert_eq!(c.real_when_local_reaches(lt(1_400)), rt(1_400));
        // Mid-segment inverse.
        assert_eq!(c.real_when_local_reaches(lt(1_100)), rt(1_050));
        assert!(c.segment_count() >= 2);
    }

    #[test]
    fn monotone_over_random_model() {
        let model = DriftModel::RandomPiecewise {
            bound: DriftBound::PAPER,
            segment: RealDuration::from_nanos(1_000),
        };
        let mut c = DriftedClock::new(model, lt(42), SeedTree::new(9));
        let mut prev = c.local_at(rt(0));
        for step in 1..5_000u64 {
            let now = c.local_at(rt(step * 37));
            assert!(now >= prev, "clock went backwards at step {step}");
            prev = now;
        }
    }

    #[test]
    fn drift_bound_holds_over_long_spans() {
        let model = DriftModel::RandomPiecewise {
            bound: DriftBound::PAPER,
            segment: RealDuration::from_nanos(10_000),
        };
        let mut c = DriftedClock::new(model, lt(0), SeedTree::new(4));
        let horizon = 2_000_000u64;
        let l0 = c.local_at(rt(0)).as_nanos();
        let l1 = c.local_at(rt(horizon)).as_nanos();
        let elapsed = l1 - l0;
        // (1-δ)Δt ≤ ΔC ≤ (1+δ)Δt with δ=1/7, allowing floor slack per segment.
        let segments = c.segment_count() as u64;
        let lo = horizon * 6 / 7 - segments;
        let hi = horizon * 8 / 7 + segments;
        assert!(
            (lo..=hi).contains(&elapsed),
            "elapsed {elapsed} outside [{lo}, {hi}]"
        );
        assert!(c.rates_within(DriftBound::PAPER));
    }

    #[test]
    fn inverse_is_least_preimage_across_random_segments() {
        let model = DriftModel::RandomPiecewise {
            bound: DriftBound::PAPER,
            segment: RealDuration::from_nanos(997),
        };
        let mut c = DriftedClock::new(model, lt(10), SeedTree::new(13));
        for target in (11..40_000u64).step_by(509) {
            let r = c.real_when_local_reaches(lt(target));
            assert!(c.local_at(r) >= lt(target), "local_at({r:?}) < {target}");
            if r.as_nanos() > 0 {
                let before = c.local_at(rt(r.as_nanos() - 1));
                assert!(
                    before < lt(target),
                    "real {r:?} not minimal for local {target}"
                );
            }
        }
    }

    #[test]
    fn rates_within_detects_violation() {
        let c = DriftedClock::new(
            DriftModel::Constant(Rate::new(6, 5)), // drift 1/5 > 1/7
            lt(0),
            SeedTree::new(0),
        );
        assert!(!c.rates_within(DriftBound::PAPER));
        assert!(c.rates_within(DriftBound::new(1, 5)));
    }

    #[test]
    fn clone_preserves_behaviour() {
        let model = DriftModel::RandomPiecewise {
            bound: DriftBound::PAPER,
            segment: RealDuration::from_nanos(500),
        };
        let mut a = DriftedClock::new(model, lt(0), SeedTree::new(21));
        let mut b = a.clone();
        for step in 0..100u64 {
            assert_eq!(a.local_at(rt(step * 333)), b.local_at(rt(step * 333)));
        }
    }
}
