//! Property-based tests of the clock and frame substrate: the invariants
//! every proof in §IV leans on.

use mmhew_time::{
    DriftBound, DriftModel, DriftedClock, FrameSchedule, LocalDuration, LocalTime, Rate,
    RealDuration, RealTime, SLOTS_PER_FRAME,
};
use mmhew_util::SeedTree;
use proptest::prelude::*;

/// Strategy: an admissible drift model within a random bound ≤ 1/7.
fn drift_strategy() -> impl Strategy<Value = DriftModel> {
    prop_oneof![
        Just(DriftModel::Ideal),
        // Constant drift of magnitude k/(7k) = 1/7 scaled down: (7k±1)/(7k).
        (1u64..=100).prop_map(|k| DriftModel::Constant(Rate::new(7 * k + 1, 7 * k))),
        (1u64..=100).prop_map(|k| DriftModel::Constant(Rate::new(7 * k - 1, 7 * k))),
        Just(DriftModel::Constant(Rate::new(8, 7))),
        Just(DriftModel::Constant(Rate::new(6, 7))),
        (100u64..20_000).prop_map(|seg| DriftModel::RandomPiecewise {
            bound: DriftBound::PAPER,
            segment: RealDuration::from_nanos(seg),
        }),
        (100u64..10_000).prop_map(|p| DriftModel::Alternating {
            first: Rate::new(8, 7),
            second: Rate::new(6, 7),
            period: RealDuration::from_nanos(p),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Clocks are monotone non-decreasing in real time.
    #[test]
    fn clock_monotone(
        model in drift_strategy(),
        offset in 0u64..100_000,
        seed in 0u64..u64::MAX,
        times in prop::collection::vec(0u64..5_000_000, 2..40),
    ) {
        let mut clock = DriftedClock::new(model, LocalTime::from_nanos(offset), SeedTree::new(seed));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut prev = clock.local_at(RealTime::ZERO);
        for t in sorted {
            let now = clock.local_at(RealTime::from_nanos(t));
            prop_assert!(now >= prev, "clock went backwards at {t}");
            prev = now;
        }
    }

    /// Eq. 1 of the paper: (1−δ)Δt ≤ ΔC ≤ (1+δ)Δt, up to per-segment
    /// floor slack.
    #[test]
    fn drift_bound_eq1(
        model in drift_strategy(),
        seed in 0u64..u64::MAX,
        span in 10_000u64..3_000_000,
    ) {
        let mut clock = DriftedClock::new(model, LocalTime::ZERO, SeedTree::new(seed));
        let l0 = clock.local_at(RealTime::ZERO).as_nanos();
        let l1 = clock.local_at(RealTime::from_nanos(span)).as_nanos();
        let elapsed = l1 - l0;
        let slack = clock.segment_count() as u64 + 1;
        prop_assert!(elapsed + slack >= span * 6 / 7, "too slow: {elapsed} over {span}");
        prop_assert!(elapsed <= span * 8 / 7 + slack, "too fast: {elapsed} over {span}");
        prop_assert!(clock.rates_within(DriftBound::PAPER));
    }

    /// `real_when_local_reaches` is the least real preimage.
    #[test]
    fn inverse_least_preimage(
        model in drift_strategy(),
        offset in 0u64..10_000,
        seed in 0u64..u64::MAX,
        targets in prop::collection::vec(0u64..2_000_000, 1..20),
    ) {
        let mut clock = DriftedClock::new(model, LocalTime::from_nanos(offset), SeedTree::new(seed));
        for t in targets {
            let local = LocalTime::from_nanos(offset + t);
            let real = clock.real_when_local_reaches(local);
            prop_assert!(clock.local_at(real) >= local);
            if real.as_nanos() > 0 {
                prop_assert!(
                    clock.local_at(RealTime::from_nanos(real.as_nanos() - 1)) < local,
                    "preimage not minimal"
                );
            }
        }
    }

    /// Frames tile real time exactly: slot intervals are contiguous and
    /// partition their frame, frames are contiguous.
    #[test]
    fn frames_tile(
        model in drift_strategy(),
        offset in 0u64..50_000,
        seed in 0u64..u64::MAX,
        frame_len in (1u64..2_000).prop_map(|k| k * 3),
        frames in 1u64..40,
    ) {
        let mut clock = DriftedClock::new(model, LocalTime::from_nanos(offset), SeedTree::new(seed));
        let sched = FrameSchedule::new(
            LocalTime::from_nanos(offset),
            LocalDuration::from_nanos(frame_len),
        );
        let mut prev_end: Option<RealTime> = None;
        for f in 0..frames {
            let frame = sched.frame_interval(f, &mut clock);
            if let Some(end) = prev_end {
                prop_assert_eq!(frame.start(), end, "frames must be contiguous");
            }
            let mut cursor = frame.start();
            for s in 0..SLOTS_PER_FRAME {
                let slot = sched.slot_interval(f, s, &mut clock);
                prop_assert_eq!(slot.start(), cursor, "slots must be contiguous");
                cursor = slot.end();
            }
            prop_assert_eq!(cursor, frame.end(), "slots must cover the frame");
            prev_end = Some(frame.end());
        }
    }

    /// Lemma 4 as a property: within the paper's drift bound, no frame
    /// overlaps more than three frames of another node.
    #[test]
    fn lemma4_overlap_at_most_three(
        model_v in drift_strategy(),
        model_u in drift_strategy(),
        offset_v in 0u64..9_000,
        offset_u in 0u64..9_000,
        seed in 0u64..u64::MAX,
    ) {
        let frame_len = LocalDuration::from_nanos(3_000);
        let mut cv = DriftedClock::new(model_v, LocalTime::from_nanos(offset_v), SeedTree::new(seed));
        let mut cu = DriftedClock::new(model_u, LocalTime::from_nanos(offset_u), SeedTree::new(seed ^ 1));
        let sv = FrameSchedule::new(LocalTime::from_nanos(offset_v), frame_len);
        let su = FrameSchedule::new(LocalTime::from_nanos(offset_u), frame_len);
        for f in 0..8 {
            let frame = sv.frame_interval(f, &mut cv);
            let overlaps = mmhew_time::overlapping_frames(&frame, &su, &mut cu, 100);
            prop_assert!(overlaps.len() <= 3, "frame {f} overlaps {}", overlaps.len());
        }
    }

    /// Lemma 7 as a property: an aligned pair exists among the first two
    /// full frames of each node after any instant.
    #[test]
    fn lemma7_alignment_within_two_frames(
        model_v in drift_strategy(),
        model_u in drift_strategy(),
        offset_v in 0u64..9_000,
        offset_u in 0u64..9_000,
        t in 0u64..100_000,
        seed in 0u64..u64::MAX,
    ) {
        let frame_len = LocalDuration::from_nanos(3_000);
        let mut cv = DriftedClock::new(model_v, LocalTime::from_nanos(offset_v), SeedTree::new(seed));
        let mut cu = DriftedClock::new(model_u, LocalTime::from_nanos(offset_u), SeedTree::new(seed ^ 2));
        let sv = FrameSchedule::new(LocalTime::from_nanos(offset_v), frame_len);
        let su = FrameSchedule::new(LocalTime::from_nanos(offset_u), frame_len);
        let found = mmhew_time::find_aligned_pair_after(
            RealTime::from_nanos(t), &sv, &mut cv, &su, &mut cu, 2,
        );
        prop_assert!(found.is_some(), "no aligned pair after t={t}");
    }

    /// Rate arithmetic: local_elapsed is monotone and exact at multiples
    /// of the denominator.
    #[test]
    fn rate_arithmetic(num in 1u64..1000, den in 1u64..1000, k in 0u64..10_000) {
        let rate = Rate::new(num, den);
        prop_assert_eq!(rate.local_elapsed(k * den), k * num);
        prop_assert!(rate.local_elapsed(k) <= rate.local_elapsed(k + 1));
        let inv = rate.real_elapsed_to_reach(k);
        prop_assert!(rate.local_elapsed(inv) >= k);
    }
}
