//! A minimal JSON *parser*, the read-side complement of [`crate::json`]
//! (which only serializes).
//!
//! The workspace deliberately avoids `serde_json`; trace lines, campaign
//! specs and checkpoint manifests are small machine-written documents, so
//! a recursive-descent parser over a [`Value`] tree is all that is
//! needed. Numbers are held as `f64` (every numeric field the workspace
//! round-trips is well inside the exact-integer range of a double);
//! objects preserve key order so error messages can point at the
//! offending field.
//!
//! This module started life in `mmhew-campaign`; it moved here so the
//! trace reader ([`crate::reader`]) and the bench-file checker can share
//! it. `mmhew_campaign::json` re-exports it for compatibility.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects `2.5` and `-1`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes this value back to compact JSON text, matching the
    /// conventions of the write-side serializer in [`crate::json`]
    /// (compact separators, `{}`-formatted numbers, non-finite numbers as
    /// `null`). Together with [`parse`] this makes [`Value`] a wire
    /// format: a subobject of a parsed request/response can be lifted out
    /// and re-sent without a schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a JSON string literal (same escaping rules as the
/// serializer in [`crate::json`]).
pub fn write_json_string(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: what was wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // machine-written documents this parser reads;
                            // map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; copy the full sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| b & 0xc0 == 0x80 && self.pos > start)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-2.5e1").unwrap(), Value::Num(-25.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            Value::Str("a\"b\\c\ndA".into())
        );
        assert_eq!(parse("\"Δρ\"").unwrap(), Value::Str("Δρ".into()));
    }

    #[test]
    fn arrays_and_objects() {
        let v = parse(r#"{"axes": {"nodes": [4, 8]}, "reps": 3}"#).unwrap();
        assert_eq!(v.get("reps").and_then(Value::as_u64), Some(3));
        let nodes = v.get("axes").and_then(|a| a.get("nodes")).unwrap();
        assert_eq!(nodes.as_arr().unwrap(), &[Value::Num(4.0), Value::Num(8.0)]);
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }

    #[test]
    fn integer_accessor_is_exact() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn boolean_accessor() {
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse("1").unwrap().as_bool(), None);
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        let e = parse("true false").unwrap_err();
        assert!(e.message.contains("trailing"));
        assert_eq!(e.offset, 5);
    }

    #[test]
    fn value_writer_round_trips_through_parse() {
        // parse → to_json → parse is the identity; and for documents
        // already in compact form, parse → to_json reproduces the bytes.
        let compact = r#"{"name":"smoke","p":[1,2.5,null,true],"nested":{"a":"x\"y"},"e":[]}"#;
        let v = parse(compact).unwrap();
        assert_eq!(v.to_json(), compact);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        // Spacing normalizes away; values survive.
        let spaced = parse("{ \"a\" : [ 1 , 2 ] }").unwrap();
        assert_eq!(spaced.to_json(), "{\"a\":[1,2]}");
        // Non-finite numbers serialize as null, matching crate::json.
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Str("a\nb".into()).to_json(), "\"a\\nb\"");
    }

    #[test]
    fn round_trips_obs_json_output() {
        // The serializer in `crate::json` and this parser must agree: what
        // one writes, the other reads (resume and trace replay depend on
        // this).
        #[derive(serde::Serialize)]
        struct Rec {
            point: u64,
            mean: f64,
            params: Vec<(String, f64)>,
        }
        let line = crate::json::to_string(&Rec {
            point: 3,
            mean: 12.5,
            params: vec![("nodes".into(), 8.0)],
        })
        .unwrap();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("point").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("mean").and_then(Value::as_f64), Some(12.5));
    }
}
