//! A minimal JSON serializer for [`serde::Serialize`] types.
//!
//! The workspace deliberately keeps its third-party surface small and does
//! not depend on `serde_json`; this module implements the subset of JSON
//! serialization the observability layer needs — structs, enums (all four
//! variant flavours), sequences, maps (scalar keys are stringified, as JSON
//! requires), options, and primitives. Output is deterministic: the same
//! value always serializes to the same bytes, which is what makes
//! same-seed JSONL traces byte-comparable.

use std::fmt::{self, Display, Write as _};

use serde::ser::{self, Serialize};

/// Serialization error (message-only; this serializer itself is
/// infallible except for unsupported map keys and user `custom` errors).
#[derive(Debug)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(value, &mut out)?;
    Ok(out)
}

/// Serializes `value` as compact JSON appended to `out`.
///
/// On error `out` may contain a partial prefix; callers that reuse a
/// buffer should clear it on failure.
pub fn write_json<T: ?Sized + Serialize>(value: &T, out: &mut String) -> Result<(), Error> {
    value.serialize(&mut JsonSerializer { out })
}

struct JsonSerializer<'b> {
    out: &'b mut String,
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl<'a, 'b> ser::Serializer for &'a mut JsonSerializer<'b> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a, 'b>;
    type SerializeTuple = Compound<'a, 'b>;
    type SerializeTupleStruct = Compound<'a, 'b>;
    type SerializeTupleVariant = Compound<'a, 'b>;
    type SerializeMap = Compound<'a, 'b>;
    type SerializeStruct = Compound<'a, 'b>;
    type SerializeStructVariant = Compound<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i16(self, v: i16) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i32(self, v: i32) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u16(self, v: u16) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u32(self, v: u32) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        push_f64(self.out, v as f64);
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        push_f64(self.out, v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), Error> {
        let mut buf = [0u8; 4];
        push_escaped(self.out, v.encode_utf8(&mut buf));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        push_escaped(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
        self.out.push('[');
        for (i, b) in v.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{b}");
        }
        self.out.push(']');
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        push_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        push_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('[');
        Ok(Compound::new(self, "]"))
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a, 'b>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a, 'b>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('{');
        push_escaped(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound::new(self, "]}"))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('{');
        Ok(Compound::new(self, "}"))
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('{');
        Ok(Compound::new(self, "}"))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('{');
        push_escaped(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound::new(self, "}}"))
    }
}

/// In-progress sequence / map / struct; `close` is appended at `end()`.
pub struct Compound<'a, 'b> {
    ser: &'a mut JsonSerializer<'b>,
    first: bool,
    close: &'static str,
}

impl<'a, 'b> Compound<'a, 'b> {
    fn new(ser: &'a mut JsonSerializer<'b>, close: &'static str) -> Self {
        Self {
            ser,
            first: true,
            close,
        }
    }

    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }

    fn finish(self) {
        self.ser.out.push_str(self.close);
    }
}

impl ser::SerializeSeq for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.comma();
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish();
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeMap for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
        self.comma();
        key.serialize(&mut KeySerializer {
            out: &mut *self.ser.out,
        })
    }

    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish();
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.comma();
        push_escaped(self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish();
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), Error> {
        ser::SerializeStruct::end(self)
    }
}

/// Serializes a map key: JSON keys must be strings, so scalars are
/// rendered inside quotes (`3` → `"3"`). Newtype wrappers (e.g. `NodeId`)
/// unwrap to their inner scalar. Anything structural is an error.
struct KeySerializer<'b> {
    out: &'b mut String,
}

impl KeySerializer<'_> {
    fn quoted<T: Display>(&mut self, v: T) -> Result<(), Error> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }

    fn unsupported(kind: &str) -> Error {
        Error(format!("cannot use {kind} as a JSON map key"))
    }
}

impl ser::Serializer for &mut KeySerializer<'_> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = ser::Impossible<(), Error>;
    type SerializeTuple = ser::Impossible<(), Error>;
    type SerializeTupleStruct = ser::Impossible<(), Error>;
    type SerializeTupleVariant = ser::Impossible<(), Error>;
    type SerializeMap = ser::Impossible<(), Error>;
    type SerializeStruct = ser::Impossible<(), Error>;
    type SerializeStructVariant = ser::Impossible<(), Error>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_i8(self, v: i8) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_i16(self, v: i16) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_i32(self, v: i32) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_u8(self, v: u8) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_u16(self, v: u16) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_u32(self, v: u32) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        self.quoted(v)
    }

    fn serialize_char(self, v: char) -> Result<(), Error> {
        let mut buf = [0u8; 4];
        push_escaped(self.out, v.encode_utf8(&mut buf));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        push_escaped(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, _v: &[u8]) -> Result<(), Error> {
        Err(KeySerializer::unsupported("bytes"))
    }

    fn serialize_none(self) -> Result<(), Error> {
        Err(KeySerializer::unsupported("None"))
    }

    fn serialize_some<T: ?Sized + Serialize>(self, _value: &T) -> Result<(), Error> {
        Err(KeySerializer::unsupported("Some"))
    }

    fn serialize_unit(self) -> Result<(), Error> {
        Err(KeySerializer::unsupported("unit"))
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        Err(KeySerializer::unsupported("unit struct"))
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        push_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<(), Error> {
        Err(KeySerializer::unsupported("newtype variant"))
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, Error> {
        Err(KeySerializer::unsupported("sequence"))
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, Error> {
        Err(KeySerializer::unsupported("tuple"))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, Error> {
        Err(KeySerializer::unsupported("tuple struct"))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, Error> {
        Err(KeySerializer::unsupported("tuple variant"))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, Error> {
        Err(KeySerializer::unsupported("map"))
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, Error> {
        Err(KeySerializer::unsupported("struct"))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, Error> {
        Err(KeySerializer::unsupported("struct variant"))
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use serde::Serialize;

    use super::to_string;

    #[derive(Serialize)]
    struct Point {
        x: i32,
        y: i32,
    }

    #[derive(Serialize, PartialEq, Eq, PartialOrd, Ord)]
    struct Wrapper(u64);

    #[derive(Serialize)]
    #[serde(rename_all = "snake_case")]
    enum Shape {
        UnitKind,
        NewtypeKind(u32),
        TupleKind(u32, bool),
        StructKind { a: u8 },
    }

    #[test]
    fn primitives() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(to_string(&7u64).unwrap(), "7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(to_string(&'x').unwrap(), "\"x\"");
    }

    #[test]
    fn options_and_unit() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(3u32)).unwrap(), "3");
        assert_eq!(to_string(&()).unwrap(), "null");
    }

    #[test]
    fn structs_and_newtypes() {
        assert_eq!(
            to_string(&Point { x: 1, y: -2 }).unwrap(),
            "{\"x\":1,\"y\":-2}"
        );
        assert_eq!(to_string(&Wrapper(9)).unwrap(), "9");
    }

    #[test]
    fn sequences() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&(1u8, "a")).unwrap(), "[1,\"a\"]");
        let empty: Vec<u32> = Vec::new();
        assert_eq!(to_string(&empty).unwrap(), "[]");
    }

    #[test]
    fn all_enum_variant_flavours() {
        assert_eq!(to_string(&Shape::UnitKind).unwrap(), "\"unit_kind\"");
        assert_eq!(
            to_string(&Shape::NewtypeKind(4)).unwrap(),
            "{\"newtype_kind\":4}"
        );
        assert_eq!(
            to_string(&Shape::TupleKind(4, true)).unwrap(),
            "{\"tuple_kind\":[4,true]}"
        );
        assert_eq!(
            to_string(&Shape::StructKind { a: 1 }).unwrap(),
            "{\"struct_kind\":{\"a\":1}}"
        );
    }

    #[test]
    fn maps_stringify_scalar_keys() {
        let mut m = BTreeMap::new();
        m.insert(2u32, "b");
        m.insert(10u32, "a");
        assert_eq!(to_string(&m).unwrap(), "{\"2\":\"b\",\"10\":\"a\"}");

        let mut s = BTreeMap::new();
        s.insert("k", vec![1u8]);
        assert_eq!(to_string(&s).unwrap(), "{\"k\":[1]}");
    }

    #[test]
    fn newtype_map_keys_unwrap() {
        let mut m = BTreeMap::new();
        m.insert(Wrapper(3), true);
        assert_eq!(to_string(&m).unwrap(), "{\"3\":true}");
    }

    #[test]
    fn nested() {
        #[derive(Serialize)]
        struct Outer {
            items: Vec<Point>,
            tag: Option<Shape>,
        }
        let v = Outer {
            items: vec![Point { x: 0, y: 1 }],
            tag: Some(Shape::UnitKind),
        };
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"items\":[{\"x\":0,\"y\":1}],\"tag\":\"unit_kind\"}"
        );
    }
}
