//! ASCII slot×node timeline renderer (the `examples/timeline.rs` view,
//! rebuilt as an [`EventSink`]).

use mmhew_radio::SlotAction;
use mmhew_spectrum::ChannelId;

use crate::event::{EventSink, SimEvent, Stamp};

/// Renders the first `max_slots` slots of a slotted run as one row per
/// node and one column per slot.
///
/// Uppercase letters are transmissions (`A` = channel 0, `B` = channel 1,
/// …), lowercase letters are listens, `.` is quiet, and `!` marks a
/// listen slot in which the node received a clear beacon.
#[derive(Debug, Clone)]
pub struct TimelineSink {
    max_slots: usize,
    rows: Vec<Vec<u8>>,
    slots_seen: u64,
    deliveries: u64,
}

fn channel_letter(c: ChannelId) -> u8 {
    b'a' + (c.index() % 26) as u8
}

impl TimelineSink {
    /// Records at most `max_slots` columns (events beyond that are still
    /// counted in the delivery total but not drawn).
    ///
    /// # Panics
    ///
    /// Panics if `max_slots == 0`.
    pub fn new(max_slots: usize) -> Self {
        assert!(max_slots > 0, "timeline needs at least one slot");
        Self {
            max_slots,
            rows: Vec::new(),
            slots_seen: 0,
            deliveries: 0,
        }
    }

    /// Slots observed so far (including ones beyond the drawing window).
    pub fn slots_seen(&self) -> u64 {
        self.slots_seen
    }

    /// Clean deliveries observed so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// One string of symbols per node (row index = node id).
    pub fn rows(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| String::from_utf8_lossy(r).into_owned())
            .collect()
    }

    /// The column ruler: a digit every ten slots, `·` elsewhere.
    pub fn ruler(&self) -> String {
        let width = (self.slots_seen as usize).min(self.max_slots);
        (0..width)
            .map(|i| {
                if i % 10 == 0 {
                    char::from_digit(((i / 10) % 10) as u32, 10).expect("digit")
                } else {
                    '·'
                }
            })
            .collect()
    }

    /// Full rendering: ruler, per-node rows, and a legend.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        let _ = writeln!(out, "slot      {}", self.ruler());
        for (i, row) in self.rows().iter().enumerate() {
            let _ = writeln!(out, "node {i:<3}  {row}");
        }
        let _ = writeln!(
            out,
            "\nlegend: UPPERCASE = transmit on channel, lowercase = listen, \
             ! = clear beacon received, . = quiet"
        );
        out
    }

    fn row_mut(&mut self, node: usize) -> &mut Vec<u8> {
        if self.rows.len() <= node {
            self.rows.resize(node + 1, Vec::new());
        }
        &mut self.rows[node]
    }

    fn set_symbol(&mut self, node: usize, slot: usize, symbol: u8) {
        if slot >= self.max_slots {
            return;
        }
        let row = self.row_mut(node);
        if row.len() <= slot {
            row.resize(slot + 1, b'.');
        }
        row[slot] = symbol;
    }
}

impl EventSink for TimelineSink {
    fn on_event(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::SlotStart { slot } => {
                self.slots_seen = self.slots_seen.max(slot + 1);
            }
            SimEvent::Action {
                at: Stamp::Slot(slot),
                node,
                action,
            } => {
                let symbol = match action {
                    SlotAction::Transmit { channel } => {
                        channel_letter(channel).to_ascii_uppercase()
                    }
                    SlotAction::Listen { channel } => channel_letter(channel),
                    SlotAction::Quiet => b'.',
                };
                self.set_symbol(node.as_usize(), slot as usize, symbol);
            }
            SimEvent::Delivery {
                at: Stamp::Slot(slot),
                to,
                ..
            } => {
                self.deliveries += 1;
                self.set_symbol(to.as_usize(), slot as usize, b'!');
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use mmhew_topology::NodeId;

    use super::*;

    #[test]
    fn draws_actions_and_marks_receptions() {
        let mut t = TimelineSink::new(4);
        let at = Stamp::Slot(0);
        t.on_event(&SimEvent::SlotStart { slot: 0 });
        t.on_event(&SimEvent::Action {
            at,
            node: NodeId::new(0),
            action: SlotAction::Transmit {
                channel: ChannelId::new(1),
            },
        });
        t.on_event(&SimEvent::Action {
            at,
            node: NodeId::new(1),
            action: SlotAction::Listen {
                channel: ChannelId::new(1),
            },
        });
        t.on_event(&SimEvent::Delivery {
            at,
            from: NodeId::new(0),
            to: NodeId::new(1),
            channel: ChannelId::new(1),
        });
        t.on_event(&SimEvent::SlotStart { slot: 1 });
        t.on_event(&SimEvent::Action {
            at: Stamp::Slot(1),
            node: NodeId::new(0),
            action: SlotAction::Quiet,
        });
        let rows = t.rows();
        assert_eq!(rows[0], "B.");
        assert_eq!(rows[1], "!");
        assert_eq!(t.deliveries(), 1);
        assert_eq!(t.slots_seen(), 2);
        let render = t.render();
        assert!(render.contains("node 0"));
        assert!(render.contains("legend"));
    }

    #[test]
    fn ignores_slots_beyond_window() {
        let mut t = TimelineSink::new(2);
        t.on_event(&SimEvent::SlotStart { slot: 5 });
        t.on_event(&SimEvent::Action {
            at: Stamp::Slot(5),
            node: NodeId::new(0),
            action: SlotAction::Quiet,
        });
        assert_eq!(t.slots_seen(), 6);
        assert!(t.rows().is_empty());
        assert_eq!(t.ruler().len(), 2);
    }
}
