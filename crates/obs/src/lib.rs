//! # mmhew-obs — observability for the mmhew simulation engines
//!
//! The engines in `mmhew-engine` are instrumented with a typed event
//! stream: every slot, action, per-channel medium resolution, delivery,
//! link coverage, and protocol phase transition is described by a
//! [`SimEvent`] and pushed into a pluggable [`EventSink`]. Both engines
//! emit the same vocabulary, so one sink implementation observes
//! synchronous (Algorithms 1–3) and asynchronous (Algorithm 4) runs alike.
//!
//! Four sinks ship with the crate:
//!
//! - [`NullSink`] — the zero-cost default; reports itself disabled so the
//!   engine skips event assembly entirely.
//! - [`MetricsSink`] — in-memory per-node/per-channel counters, contention
//!   histograms, busy-fraction and collision-rate summaries.
//! - [`JsonlTraceSink`] — buffered JSON-lines writer; same seed ⇒ byte
//!   identical trace.
//! - [`TimelineSink`] — an ASCII slot×node timeline for small runs.
//!
//! [`FanoutSink`] combines several sinks in one run, and [`CollectSink`]
//! buffers raw events for tests. The [`json`] module holds the
//! dependency-free JSON serializer behind the trace writer; [`value`] is
//! its read-side complement (a minimal JSON parser), and [`reader`]
//! builds on it to stream typed [`SimEvent`]s back out of a JSONL trace.

pub mod event;
pub mod json;
pub mod metrics;
pub mod reader;
pub mod timeline;
pub mod trace;
pub mod value;

pub use event::{
    CollectSink, EventSink, FanoutSink, MediumResolution, NullSink, ProtocolPhase, SimEvent, Stamp,
};
pub use metrics::{ChannelActivity, MetricsSink, NodeActivity};
pub use reader::{ReadError, TraceReader};
pub use timeline::TimelineSink;
pub use trace::{JsonlTraceSink, TRACE_SCHEMA_VERSION};
