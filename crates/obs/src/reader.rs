//! Streaming reader for `SimEvent` JSONL traces — the inverse of
//! [`crate::trace::JsonlTraceSink`].
//!
//! Until PR 6 only the write side existed; every trace consumer had to
//! re-parse lines ad hoc. [`TraceReader`] turns any [`BufRead`] into an
//! iterator of typed [`SimEvent`]s, one per line, and understands the
//! optional `{"schema_version":N}` header line that versioned traces
//! start with (unversioned traces from earlier releases load the same
//! way — the first line is simply an event).
//!
//! The reader is strict: an unknown event tag, a missing field, or a
//! schema version newer than this build understands is an error, not a
//! silent skip. Trace files are machine-written; anything unexpected in
//! one means the producer and consumer disagree about the vocabulary,
//! which is exactly what a converter must not paper over.

use std::io::BufRead;

use mmhew_radio::SlotAction;
use mmhew_spectrum::ChannelId;
use mmhew_time::{LocalTime, RealTime};
use mmhew_topology::NodeId;

use crate::event::{MediumResolution, ProtocolPhase, SimEvent, Stamp};
use crate::trace::TRACE_SCHEMA_VERSION;
use crate::value::{parse, Value};

/// A failure while reading a trace: which line (1-based) and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ReadError {}

/// Iterator of typed [`SimEvent`]s over a JSONL trace.
///
/// Blank lines are skipped; a `{"schema_version":N}` header (if present,
/// on the first non-blank line) is consumed transparently and exposed
/// via [`TraceReader::schema_version`] after the first event is read.
pub struct TraceReader<R: BufRead> {
    input: R,
    line_no: usize,
    started: bool,
    schema_version: Option<u32>,
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered reader positioned at the start of a trace.
    pub fn new(input: R) -> Self {
        Self {
            input,
            line_no: 0,
            started: false,
            schema_version: None,
        }
    }

    /// The schema version declared by the trace header, if any.
    ///
    /// `None` either because the trace predates versioning or because no
    /// line has been read yet (the header is only examined once the
    /// iterator is first advanced).
    pub fn schema_version(&self) -> Option<u32> {
        self.schema_version
    }

    fn err(&self, message: impl Into<String>) -> ReadError {
        ReadError {
            line: self.line_no,
            message: message.into(),
        }
    }

    /// Reads the next non-blank line; `Ok(None)` at end of input.
    fn next_line(&mut self) -> Result<Option<String>, ReadError> {
        let mut buf = String::new();
        loop {
            buf.clear();
            self.line_no += 1;
            let n = self
                .input
                .read_line(&mut buf)
                .map_err(|e| self.err(format!("I/O error: {e}")))?;
            if n == 0 {
                return Ok(None);
            }
            let trimmed = buf.trim();
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        }
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<SimEvent, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.next_line() {
                Ok(Some(line)) => line,
                Ok(None) => return None,
                Err(e) => return Some(Err(e)),
            };
            let value = match parse(&line) {
                Ok(v) => v,
                Err(e) => return Some(Err(self.err(e.to_string()))),
            };
            if !self.started {
                self.started = true;
                if let Value::Obj(fields) = &value {
                    if fields.len() == 1 && fields[0].0 == "schema_version" {
                        let version = match fields[0].1.as_u64() {
                            Some(v) if v <= u32::MAX as u64 => v as u32,
                            _ => {
                                return Some(
                                    Err(self.err("schema_version must be a small integer")),
                                )
                            }
                        };
                        if version > TRACE_SCHEMA_VERSION {
                            return Some(Err(self.err(format!(
                                "trace schema_version {version} is newer than supported \
                                 version {TRACE_SCHEMA_VERSION}"
                            ))));
                        }
                        self.schema_version = Some(version);
                        continue;
                    }
                }
            }
            return Some(event_from_value(&value).map_err(|m| self.err(m)));
        }
    }
}

/// Decodes one externally-tagged event object (one trace line) into a
/// [`SimEvent`]. Exposed so other tools (e.g. single-line probes) can
/// reuse the vocabulary decoding without a full reader.
pub fn event_from_value(value: &Value) -> Result<SimEvent, String> {
    let Value::Obj(fields) = value else {
        return Err("event line is not a JSON object".into());
    };
    let [(tag, body)] = fields.as_slice() else {
        return Err("event object must have exactly one key (the event tag)".into());
    };
    match tag.as_str() {
        "slot_start" => Ok(SimEvent::SlotStart {
            slot: u64_field(body, "slot")?,
        }),
        "frame_start" => Ok(SimEvent::FrameStart {
            node: node_field(body, "node")?,
            frame: u64_field(body, "frame")?,
            real: RealTime::from_nanos(u64_field(body, "real")?),
            local: LocalTime::from_nanos(u64_field(body, "local")?),
        }),
        "frame_end" => Ok(SimEvent::FrameEnd {
            node: node_field(body, "node")?,
            frame: u64_field(body, "frame")?,
            real: RealTime::from_nanos(u64_field(body, "real")?),
            local: LocalTime::from_nanos(u64_field(body, "local")?),
        }),
        "action" => Ok(SimEvent::Action {
            at: stamp_field(body, "at")?,
            node: node_field(body, "node")?,
            action: slot_action(field(body, "action")?)?,
        }),
        "channel" => Ok(SimEvent::Channel {
            at: stamp_field(body, "at")?,
            channel: channel_field(body, "channel")?,
            resolution: resolution(field(body, "resolution")?)?,
        }),
        "delivery" => Ok(SimEvent::Delivery {
            at: stamp_field(body, "at")?,
            from: node_field(body, "from")?,
            to: node_field(body, "to")?,
            channel: channel_field(body, "channel")?,
        }),
        "impairment_loss" => Ok(SimEvent::ImpairmentLoss {
            at: stamp_field(body, "at")?,
            count: u64_field(body, "count")?,
        }),
        "link_covered" => Ok(SimEvent::LinkCovered {
            at: stamp_field(body, "at")?,
            from: node_field(body, "from")?,
            to: node_field(body, "to")?,
            covered: u64_field(body, "covered")?,
            expected: u64_field(body, "expected")?,
        }),
        "phase" => Ok(SimEvent::Phase {
            at: stamp_field(body, "at")?,
            node: node_field(body, "node")?,
            phase: protocol_phase(field(body, "phase")?)?,
        }),
        "node_joined" => Ok(SimEvent::NodeJoined {
            at: stamp_field(body, "at")?,
            node: node_field(body, "node")?,
        }),
        "node_left" => Ok(SimEvent::NodeLeft {
            at: stamp_field(body, "at")?,
            node: node_field(body, "node")?,
        }),
        "edge_changed" => Ok(SimEvent::EdgeChanged {
            at: stamp_field(body, "at")?,
            from: node_field(body, "from")?,
            to: node_field(body, "to")?,
            added: bool_field(body, "added")?,
        }),
        "channel_changed" => Ok(SimEvent::ChannelChanged {
            at: stamp_field(body, "at")?,
            node: node_field(body, "node")?,
            channel: channel_field(body, "channel")?,
            gained: bool_field(body, "gained")?,
        }),
        "ground_truth_changed" => Ok(SimEvent::GroundTruthChanged {
            at: stamp_field(body, "at")?,
            covered: u64_field(body, "covered")?,
            expected: u64_field(body, "expected")?,
        }),
        "beacon_lost" => Ok(SimEvent::BeaconLost {
            at: stamp_field(body, "at")?,
            from: node_field(body, "from")?,
            to: node_field(body, "to")?,
        }),
        "slot_jammed" => Ok(SimEvent::SlotJammed {
            at: stamp_field(body, "at")?,
            channel: channel_field(body, "channel")?,
            losses: u32_field(body, "losses")?,
        }),
        "capture_delivery" => Ok(SimEvent::CaptureDelivery {
            at: stamp_field(body, "at")?,
            to: node_field(body, "to")?,
            from: node_field(body, "from")?,
            contenders: u32_field(body, "contenders")?,
        }),
        "node_crashed" => Ok(SimEvent::NodeCrashed {
            at: stamp_field(body, "at")?,
            node: node_field(body, "node")?,
        }),
        "node_recovered" => Ok(SimEvent::NodeRecovered {
            at: stamp_field(body, "at")?,
            node: node_field(body, "node")?,
        }),
        other => Err(format!("unknown event tag {other:?}")),
    }
}

fn field<'v>(body: &'v Value, key: &str) -> Result<&'v Value, String> {
    body.get(key)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn u64_field(body: &Value, key: &str) -> Result<u64, String> {
    field(body, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))
}

fn u32_field(body: &Value, key: &str) -> Result<u32, String> {
    let n = u64_field(body, key)?;
    u32::try_from(n).map_err(|_| format!("field {key:?} exceeds u32"))
}

fn bool_field(body: &Value, key: &str) -> Result<bool, String> {
    field(body, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a boolean"))
}

fn node_field(body: &Value, key: &str) -> Result<NodeId, String> {
    Ok(NodeId::new(u32_field(body, key)?))
}

fn channel_field(body: &Value, key: &str) -> Result<ChannelId, String> {
    let n = u64_field(body, key)?;
    let id = u16::try_from(n).map_err(|_| format!("field {key:?} exceeds u16"))?;
    Ok(ChannelId::new(id))
}

fn stamp_field(body: &Value, key: &str) -> Result<Stamp, String> {
    let v = field(body, key)?;
    if let Some(slot) = v.get("slot").and_then(Value::as_u64) {
        return Ok(Stamp::Slot(slot));
    }
    if let Some(real) = v.get("real").and_then(Value::as_u64) {
        return Ok(Stamp::Real(RealTime::from_nanos(real)));
    }
    Err(format!("field {key:?} is not a slot/real stamp"))
}

fn slot_action(v: &Value) -> Result<SlotAction, String> {
    // `SlotAction` keeps serde's default variant casing (it predates the
    // snake_case event vocabulary), so the tags here are capitalized.
    if v.as_str() == Some("Quiet") {
        return Ok(SlotAction::Quiet);
    }
    if let Some(body) = v.get("Transmit") {
        return Ok(SlotAction::Transmit {
            channel: channel_field(body, "channel")?,
        });
    }
    if let Some(body) = v.get("Listen") {
        return Ok(SlotAction::Listen {
            channel: channel_field(body, "channel")?,
        });
    }
    Err("unknown slot action".into())
}

fn resolution(v: &Value) -> Result<MediumResolution, String> {
    if let Some(body) = v.get("clear") {
        return Ok(MediumResolution::Clear {
            tx: node_field(body, "tx")?,
            rx_count: u32_field(body, "rx_count")?,
        });
    }
    if let Some(body) = v.get("collision") {
        return Ok(MediumResolution::Collision {
            contenders: u32_field(body, "contenders")?,
        });
    }
    if let Some(body) = v.get("silence") {
        return Ok(MediumResolution::Silence {
            listeners: u32_field(body, "listeners")?,
        });
    }
    Err("unknown medium resolution".into())
}

fn protocol_phase(v: &Value) -> Result<ProtocolPhase, String> {
    if v.as_str() == Some("terminated") {
        return Ok(ProtocolPhase::Terminated);
    }
    if let Some(stage) = v.get("stage").and_then(Value::as_u64) {
        return Ok(ProtocolPhase::Stage(stage));
    }
    if let Some(estimate) = v.get("estimate").and_then(Value::as_u64) {
        return Ok(ProtocolPhase::Estimate(estimate));
    }
    Err("unknown protocol phase".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::JsonlTraceSink;
    use crate::EventSink;

    /// One event of every variant, exercising every stamp/enum shape.
    fn all_variants() -> Vec<SimEvent> {
        let slot = Stamp::Slot(7);
        let real = Stamp::Real(RealTime::from_nanos(5_000));
        let n = NodeId::new;
        let c = ChannelId::new;
        vec![
            SimEvent::SlotStart { slot: 3 },
            SimEvent::FrameStart {
                node: n(1),
                frame: 2,
                real: RealTime::from_nanos(9_000),
                local: LocalTime::from_nanos(8_900),
            },
            SimEvent::FrameEnd {
                node: n(1),
                frame: 2,
                real: RealTime::from_nanos(10_000),
                local: LocalTime::from_nanos(9_900),
            },
            SimEvent::Action {
                at: slot,
                node: n(0),
                action: SlotAction::Transmit { channel: c(2) },
            },
            SimEvent::Action {
                at: real,
                node: n(1),
                action: SlotAction::Listen { channel: c(0) },
            },
            SimEvent::Action {
                at: slot,
                node: n(2),
                action: SlotAction::Quiet,
            },
            SimEvent::Channel {
                at: slot,
                channel: c(2),
                resolution: MediumResolution::Clear {
                    tx: n(0),
                    rx_count: 2,
                },
            },
            SimEvent::Channel {
                at: slot,
                channel: c(1),
                resolution: MediumResolution::Collision { contenders: 3 },
            },
            SimEvent::Channel {
                at: slot,
                channel: c(0),
                resolution: MediumResolution::Silence { listeners: 1 },
            },
            SimEvent::Delivery {
                at: slot,
                from: n(0),
                to: n(1),
                channel: c(2),
            },
            SimEvent::ImpairmentLoss { at: slot, count: 4 },
            SimEvent::LinkCovered {
                at: slot,
                from: n(0),
                to: n(1),
                covered: 3,
                expected: 22,
            },
            SimEvent::Phase {
                at: slot,
                node: n(0),
                phase: ProtocolPhase::Stage(2),
            },
            SimEvent::Phase {
                at: real,
                node: n(1),
                phase: ProtocolPhase::Estimate(8),
            },
            SimEvent::Phase {
                at: slot,
                node: n(2),
                phase: ProtocolPhase::Terminated,
            },
            SimEvent::NodeJoined {
                at: slot,
                node: n(3),
            },
            SimEvent::NodeLeft {
                at: slot,
                node: n(3),
            },
            SimEvent::EdgeChanged {
                at: slot,
                from: n(0),
                to: n(3),
                added: true,
            },
            SimEvent::ChannelChanged {
                at: slot,
                node: n(1),
                channel: c(3),
                gained: false,
            },
            SimEvent::GroundTruthChanged {
                at: slot,
                covered: 1,
                expected: 20,
            },
            SimEvent::BeaconLost {
                at: slot,
                from: n(0),
                to: n(1),
            },
            SimEvent::SlotJammed {
                at: slot,
                channel: c(2),
                losses: 3,
            },
            SimEvent::CaptureDelivery {
                at: slot,
                to: n(1),
                from: n(0),
                contenders: 3,
            },
            SimEvent::NodeCrashed {
                at: slot,
                node: n(2),
            },
            SimEvent::NodeRecovered {
                at: real,
                node: n(2),
            },
        ]
    }

    #[test]
    fn round_trips_every_variant_through_the_sink() {
        let events = all_variants();
        let mut sink = JsonlTraceSink::new(Vec::new());
        for e in &events {
            sink.on_event(e);
        }
        let bytes = sink.finish().unwrap();
        let reader = TraceReader::new(bytes.as_slice());
        let back: Vec<SimEvent> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(back, events);
    }

    #[test]
    fn header_is_consumed_and_reported() {
        let input = b"{\"schema_version\":1}\n{\"slot_start\":{\"slot\":0}}\n";
        let mut reader = TraceReader::new(&input[..]);
        assert_eq!(reader.schema_version(), None);
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first, SimEvent::SlotStart { slot: 0 });
        assert_eq!(reader.schema_version(), Some(1));
        assert!(reader.next().is_none());
    }

    #[test]
    fn unversioned_traces_still_load() {
        let input = b"{\"slot_start\":{\"slot\":5}}\n\n{\"slot_start\":{\"slot\":6}}\n";
        let reader = TraceReader::new(&input[..]);
        let back: Vec<SimEvent> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(
            back,
            vec![
                SimEvent::SlotStart { slot: 5 },
                SimEvent::SlotStart { slot: 6 }
            ]
        );
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let input = b"{\"schema_version\":99}\n{\"slot_start\":{\"slot\":0}}\n";
        let mut reader = TraceReader::new(&input[..]);
        let err = reader.next().unwrap().unwrap_err();
        assert!(err.message.contains("newer than supported"));
    }

    #[test]
    fn strict_errors_name_the_line() {
        let input = b"{\"slot_start\":{\"slot\":0}}\n{\"mystery\":{}}\n";
        let mut reader = TraceReader::new(&input[..]);
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("mystery"));
    }

    #[test]
    fn malformed_json_is_an_error_not_a_skip() {
        let input = b"{\"slot_start\":{\"slot\":\n";
        let mut reader = TraceReader::new(&input[..]);
        assert!(reader.next().unwrap().is_err());
    }
}
