//! The typed simulation event vocabulary shared by both engines.
//!
//! Every observable thing that happens inside [`SyncEngine`] or
//! [`AsyncEngine`] is described by one [`SimEvent`] variant. The slotted
//! engine stamps events with [`Stamp::Slot`]; the continuous-time engine
//! stamps them with [`Stamp::Real`] and additionally reports each node's
//! *local* clock reading at frame boundaries — the quantity the async
//! analysis (Lemmas 4–6) actually reasons about.
//!
//! [`SyncEngine`]: https://docs.rs/mmhew-engine
//! [`AsyncEngine`]: https://docs.rs/mmhew-engine

use mmhew_radio::SlotAction;
use mmhew_spectrum::ChannelId;
use mmhew_time::{LocalTime, RealTime};
use mmhew_topology::NodeId;
use serde::Serialize;

/// When an event happened: a global slot index (slotted engine) or a real
/// timestamp (continuous-time engine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Stamp {
    /// Global slot index in the synchronized-slot engine.
    Slot(u64),
    /// Real (global) time in the event-driven engine.
    Real(RealTime),
}

/// How one channel resolved in one slot, network-wide.
///
/// `Clear` means exactly one transmitter occupied the channel (its beacon
/// reaches every listening neighbor); `Collision` means two or more
/// transmitters contended; `Silence` means someone listened but nobody
/// transmitted — a wasted listen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum MediumResolution {
    /// A single transmitter; `rx_count` neighbors received it cleanly.
    Clear { tx: NodeId, rx_count: u32 },
    /// `contenders` simultaneous transmitters destroyed each other.
    Collision { contenders: u32 },
    /// `listeners` nodes listened but nobody transmitted.
    Silence { listeners: u32 },
}

impl MediumResolution {
    /// Number of simultaneous transmitters on the channel.
    pub fn contenders(&self) -> u32 {
        match *self {
            MediumResolution::Clear { .. } => 1,
            MediumResolution::Collision { contenders } => contenders,
            MediumResolution::Silence { .. } => 0,
        }
    }
}

/// A protocol-internal phase, reported via `SyncProtocol::phase` /
/// `AsyncProtocol::phase` and emitted as a [`SimEvent::Phase`] whenever it
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum ProtocolPhase {
    /// Algorithm 1 stage index (each stage is one pass over slot
    /// probabilities `1/2, 1/4, ..., 1/2^⌈lg Δ⌉`).
    Stage(u64),
    /// Algorithm 2's current neighbor-count estimate.
    Estimate(u64),
    /// The node's termination detector has voted to stop.
    Terminated,
}

/// One observable simulation event.
///
/// Both engines emit the same vocabulary; engine-specific variants are
/// `SlotStart` (slotted only) and `FrameStart`/`FrameEnd` (async only).
/// Everything else — actions, per-channel medium resolution, deliveries,
/// link coverage, phase transitions — is shared.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum SimEvent {
    /// A globally synchronized slot is about to execute.
    SlotStart { slot: u64 },
    /// A node's frame begins (async engine). `local` is the node's own
    /// drifting-clock reading at the boundary; `real` is global time.
    FrameStart {
        node: NodeId,
        frame: u64,
        real: RealTime,
        local: LocalTime,
    },
    /// A node's frame ends and its pending listen window resolves.
    FrameEnd {
        node: NodeId,
        frame: u64,
        real: RealTime,
        local: LocalTime,
    },
    /// The action a node chose this slot/frame.
    Action {
        at: Stamp,
        node: NodeId,
        action: SlotAction,
    },
    /// Network-wide resolution of one channel in one slot.
    Channel {
        at: Stamp,
        channel: ChannelId,
        resolution: MediumResolution,
    },
    /// A beacon was delivered cleanly from `from` to `to`.
    Delivery {
        at: Stamp,
        from: NodeId,
        to: NodeId,
        channel: ChannelId,
    },
    /// `count` would-be receptions were destroyed by channel impairments.
    ImpairmentLoss { at: Stamp, count: u64 },
    /// The directed link `from → to` was covered for the first time;
    /// `covered`/`expected` is the tracker's running progress.
    LinkCovered {
        at: Stamp,
        from: NodeId,
        to: NodeId,
        covered: u64,
        expected: u64,
    },
    /// A node's protocol moved to a new phase.
    Phase {
        at: Stamp,
        node: NodeId,
        phase: ProtocolPhase,
    },
    /// A dynamics schedule (re)activated a node (churn).
    NodeJoined { at: Stamp, node: NodeId },
    /// A dynamics schedule deactivated a node, dropping its edges.
    NodeLeft { at: Stamp, node: NodeId },
    /// A directed link appeared (`added`) or vanished (mobility/churn).
    EdgeChanged {
        at: Stamp,
        from: NodeId,
        to: NodeId,
        added: bool,
    },
    /// A node gained (`gained`) or lost a channel (primary-user activity).
    ChannelChanged {
        at: Stamp,
        node: NodeId,
        channel: ChannelId,
        gained: bool,
    },
    /// Dynamics changed the ground truth: the coverage tracker resynced to
    /// `expected` current links, `covered` of which were already covered.
    GroundTruthChanged {
        at: Stamp,
        covered: u64,
        expected: u64,
    },
    /// A clear reception from `from` to `to` was destroyed by the link's
    /// fault-plan loss model (Gilbert–Elliott or per-link Bernoulli).
    BeaconLost { at: Stamp, from: NodeId, to: NodeId },
    /// A jammer held `channel`; `losses` would-be receptions were
    /// suppressed there.
    SlotJammed {
        at: Stamp,
        channel: ChannelId,
        losses: u32,
    },
    /// The capture effect resolved a collision: `to` heard `from` despite
    /// `contenders` simultaneous transmitters.
    CaptureDelivery {
        at: Stamp,
        to: NodeId,
        from: NodeId,
        contenders: u32,
    },
    /// A node's radio crashed (fault plan): it stays in the topology but
    /// goes silent.
    NodeCrashed { at: Stamp, node: NodeId },
    /// A crashed node's radio recovered.
    NodeRecovered { at: Stamp, node: NodeId },
}

impl SimEvent {
    /// The snake_case tag this event serializes under — the event
    /// vocabulary name.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::SlotStart { .. } => "slot_start",
            SimEvent::FrameStart { .. } => "frame_start",
            SimEvent::FrameEnd { .. } => "frame_end",
            SimEvent::Action { .. } => "action",
            SimEvent::Channel { .. } => "channel",
            SimEvent::Delivery { .. } => "delivery",
            SimEvent::ImpairmentLoss { .. } => "impairment_loss",
            SimEvent::LinkCovered { .. } => "link_covered",
            SimEvent::Phase { .. } => "phase",
            SimEvent::NodeJoined { .. } => "node_joined",
            SimEvent::NodeLeft { .. } => "node_left",
            SimEvent::EdgeChanged { .. } => "edge_changed",
            SimEvent::ChannelChanged { .. } => "channel_changed",
            SimEvent::GroundTruthChanged { .. } => "ground_truth_changed",
            SimEvent::BeaconLost { .. } => "beacon_lost",
            SimEvent::SlotJammed { .. } => "slot_jammed",
            SimEvent::CaptureDelivery { .. } => "capture_delivery",
            SimEvent::NodeCrashed { .. } => "node_crashed",
            SimEvent::NodeRecovered { .. } => "node_recovered",
        }
    }
}

/// A consumer of simulation events.
///
/// Engines call [`EventSink::on_event`] for every event, but only when
/// [`EventSink::enabled`] returns `true` — a disabled sink (the
/// [`NullSink`]) lets the engine skip event *construction* entirely, so
/// the instrumented hot loop costs one branch per slot.
pub trait EventSink {
    /// Consume one event.
    fn on_event(&mut self, event: &SimEvent);

    /// Whether the engine should bother assembling events at all.
    fn enabled(&self) -> bool {
        true
    }
}

/// The zero-cost default sink: reports itself disabled so engines skip
/// all event assembly. Guarded by the `sync_engine_null_sink` bench in
/// `crates/bench`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn on_event(&mut self, _event: &SimEvent) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// Broadcasts each event to several sinks (e.g. a trace file *and* live
/// metrics in the same run).
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> FanoutSink<'a> {
    /// Wraps `sinks`; disabled members are skipped per event.
    pub fn new(sinks: Vec<&'a mut dyn EventSink>) -> Self {
        Self { sinks }
    }
}

impl EventSink for FanoutSink<'_> {
    fn on_event(&mut self, event: &SimEvent) {
        for sink in &mut self.sinks {
            if sink.enabled() {
                sink.on_event(event);
            }
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

/// A sink that stores every event — handy in tests.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Events in arrival order.
    pub events: Vec<SimEvent>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct event kinds seen, in first-arrival order.
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for e in &self.events {
            let k = e.kind();
            if !seen.contains(&k) {
                seen.push(k);
            }
        }
        seen
    }
}

impl EventSink for CollectSink {
    fn on_event(&mut self, event: &SimEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.on_event(&SimEvent::SlotStart { slot: 0 });
    }

    #[test]
    fn collect_sink_records_and_dedups_kinds() {
        let mut sink = CollectSink::new();
        assert!(sink.enabled());
        sink.on_event(&SimEvent::SlotStart { slot: 0 });
        sink.on_event(&SimEvent::SlotStart { slot: 1 });
        sink.on_event(&SimEvent::Phase {
            at: Stamp::Slot(1),
            node: NodeId::new(0),
            phase: ProtocolPhase::Stage(2),
        });
        assert_eq!(sink.events.len(), 3);
        assert_eq!(sink.kinds(), vec!["slot_start", "phase"]);
    }

    #[test]
    fn fanout_forwards_to_enabled_members_only() {
        let mut a = CollectSink::new();
        let mut b = NullSink;
        let mut fan = FanoutSink::new(vec![&mut a, &mut b]);
        assert!(fan.enabled());
        fan.on_event(&SimEvent::SlotStart { slot: 7 });
        drop(fan);
        assert_eq!(a.events.len(), 1);
    }

    #[test]
    fn fanout_of_disabled_sinks_is_disabled() {
        let mut a = NullSink;
        let fan = FanoutSink::new(vec![&mut a]);
        assert!(!fan.enabled());
    }

    #[test]
    fn contenders_by_resolution() {
        assert_eq!(
            MediumResolution::Clear {
                tx: NodeId::new(3),
                rx_count: 2
            }
            .contenders(),
            1
        );
        assert_eq!(
            MediumResolution::Collision { contenders: 4 }.contenders(),
            4
        );
        assert_eq!(MediumResolution::Silence { listeners: 1 }.contenders(), 0);
    }
}
