//! Buffered JSONL (one JSON object per line) trace writer.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::{EventSink, SimEvent};
use crate::json;

/// Schema version written as the first line of every trace file.
///
/// Version history:
/// - *(unversioned)* — PR 1 traces: event lines only, no header.
/// - **1** — identical event vocabulary, plus this `{"schema_version":1}`
///   header line. [`crate::reader::TraceReader`] accepts both.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// An [`EventSink`] that appends each event as one JSON line to a buffered
/// writer.
///
/// The first line of the output is a `{"schema_version":N}` header (see
/// [`TRACE_SCHEMA_VERSION`]); every subsequent line is one event. I/O
/// errors are captured rather than panicking the simulation: the sink
/// stops writing after the first failure and reports it from
/// [`JsonlTraceSink::finish`]. With a fixed master seed the byte output is
/// deterministic — two same-seed runs produce identical files.
pub struct JsonlTraceSink<W: Write> {
    out: BufWriter<W>,
    line: String,
    events: u64,
    error: Option<io::Error>,
}

impl JsonlTraceSink<File> {
    /// Creates (truncating) a trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write> JsonlTraceSink<W> {
    /// Wraps any writer (e.g. `Vec<u8>` in tests) and writes the schema
    /// header line.
    pub fn new(writer: W) -> Self {
        let mut sink = Self {
            out: BufWriter::new(writer),
            line: String::new(),
            events: 0,
            error: None,
        };
        let header = format!("{{\"schema_version\":{TRACE_SCHEMA_VERSION}}}\n");
        if let Err(e) = sink.out.write_all(header.as_bytes()) {
            sink.error = Some(e);
        }
        sink
    }

    /// Events written so far (the schema header line is not an event).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the underlying writer, or the first I/O error
    /// encountered while tracing.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> EventSink for JsonlTraceSink<W> {
    fn on_event(&mut self, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        if let Err(e) = json::write_json(event, &mut self.line) {
            self.error = Some(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
            return;
        }
        self.line.push('\n');
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        } else {
            self.events += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use mmhew_topology::NodeId;

    use super::*;
    use crate::event::{ProtocolPhase, Stamp};

    #[test]
    fn writes_header_then_one_json_object_per_line() {
        let mut sink = JsonlTraceSink::new(Vec::new());
        sink.on_event(&SimEvent::SlotStart { slot: 3 });
        sink.on_event(&SimEvent::Phase {
            at: Stamp::Slot(3),
            node: NodeId::new(1),
            phase: ProtocolPhase::Estimate(4),
        });
        assert_eq!(sink.events(), 2, "header must not count as an event");
        let bytes = sink.finish().expect("no io error");
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"schema_version\":1}");
        assert_eq!(lines[1], "{\"slot_start\":{\"slot\":3}}");
        assert_eq!(
            lines[2],
            "{\"phase\":{\"at\":{\"slot\":3},\"node\":1,\"phase\":{\"estimate\":4}}}"
        );
    }

    #[test]
    fn identical_event_streams_are_byte_identical() {
        let render = |events: &[SimEvent]| {
            let mut sink = JsonlTraceSink::new(Vec::new());
            for e in events {
                sink.on_event(e);
            }
            sink.finish().expect("no io error")
        };
        let events = vec![
            SimEvent::SlotStart { slot: 0 },
            SimEvent::SlotStart { slot: 1 },
        ];
        assert_eq!(render(&events), render(&events));
    }
}
