//! In-memory aggregation of simulation events into per-node and
//! per-channel counters, contention histograms, and summary rates.

use mmhew_radio::SlotAction;
use mmhew_util::Histogram;
use serde::Serialize;

use crate::event::{EventSink, MediumResolution, SimEvent, Stamp};

/// Largest contender count the contention histogram resolves exactly;
/// larger counts land in the overflow bucket.
const CONTENTION_BINS: usize = 16;

/// Per-node activity totals, mirroring the engine's `ActionCounts`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct NodeActivity {
    /// Slots/frames spent transmitting.
    pub transmit: u64,
    /// Slots/frames spent listening.
    pub listen: u64,
    /// Slots spent quiet (radio off).
    pub quiet: u64,
}

impl NodeActivity {
    /// Total observed slots/frames for this node.
    pub fn total(&self) -> u64 {
        self.transmit + self.listen + self.quiet
    }

    /// Fraction of observed slots with the radio on (transmit or listen).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.transmit + self.listen) as f64 / total as f64
        }
    }
}

/// Per-channel medium statistics.
#[derive(Debug, Clone, Serialize)]
pub struct ChannelActivity {
    /// Slots where exactly one node transmitted on this channel.
    pub clear: u64,
    /// Slots where two or more nodes transmitted (all lost).
    pub collision: u64,
    /// Slots where someone listened but nobody transmitted.
    pub silence: u64,
    /// Clean beacon deliveries on this channel.
    pub deliveries: u64,
    /// Sum of contender counts over active (clear or collision) slots.
    pub contenders_sum: u64,
    /// Distribution of simultaneous transmitters over active slots.
    pub contention: Histogram,
}

impl Default for ChannelActivity {
    fn default() -> Self {
        Self {
            clear: 0,
            collision: 0,
            silence: 0,
            deliveries: 0,
            contenders_sum: 0,
            contention: Histogram::new(0.0, CONTENTION_BINS as f64, CONTENTION_BINS),
        }
    }
}

impl ChannelActivity {
    /// Active slots: some transmitter occupied the channel.
    pub fn active(&self) -> u64 {
        self.clear + self.collision
    }

    /// Fraction of active slots that collided.
    pub fn collision_rate(&self) -> f64 {
        let active = self.active();
        if active == 0 {
            0.0
        } else {
            self.collision as f64 / active as f64
        }
    }

    /// Mean simultaneous transmitters over active slots.
    pub fn mean_contenders(&self) -> f64 {
        let active = self.active();
        if active == 0 {
            0.0
        } else {
            self.contenders_sum as f64 / active as f64
        }
    }

    fn merge(&mut self, other: &ChannelActivity) {
        self.clear += other.clear;
        self.collision += other.collision;
        self.silence += other.silence;
        self.deliveries += other.deliveries;
        self.contenders_sum += other.contenders_sum;
        self.contention.merge(&other.contention);
    }
}

/// An [`EventSink`] that aggregates events into per-node / per-channel
/// counters plus whole-run summaries.
///
/// Optionally records a *collision time series* per channel (collisions
/// per fixed-width slot window) for contention-over-time diagnostics such
/// as the `e20_contention` harness binary. Sinks from independent
/// repetitions combine with [`MetricsSink::merge`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSink {
    slots: u64,
    frames: u64,
    deliveries: u64,
    impairment_losses: u64,
    links_covered: u64,
    links_expected: u64,
    phase_transitions: u64,
    dynamics_events: u64,
    beacons_lost: u64,
    slots_jammed: u64,
    jam_losses: u64,
    capture_deliveries: u64,
    node_crashes: u64,
    node_recoveries: u64,
    nodes: Vec<NodeActivity>,
    channels: Vec<ChannelActivity>,
    /// Slot-window width for the collision series; 0 disables it.
    series_window: u64,
    /// `collision_series[channel][window]` = collisions in that window.
    collision_series: Vec<Vec<u64>>,
    current_slot: u64,
}

impl MetricsSink {
    /// A sink with summaries only (no time series).
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink that additionally buckets collisions per channel into
    /// windows of `window_slots` slots (slotted engine only).
    ///
    /// # Panics
    ///
    /// Panics if `window_slots == 0`.
    pub fn with_collision_series(window_slots: u64) -> Self {
        assert!(window_slots > 0, "window must be at least one slot");
        Self {
            series_window: window_slots,
            ..Self::default()
        }
    }

    fn node_mut(&mut self, i: usize) -> &mut NodeActivity {
        if self.nodes.len() <= i {
            self.nodes.resize(i + 1, NodeActivity::default());
        }
        &mut self.nodes[i]
    }

    fn channel_mut(&mut self, c: usize) -> &mut ChannelActivity {
        if self.channels.len() <= c {
            self.channels.resize(c + 1, ChannelActivity::default());
        }
        if self.series_window > 0 && self.collision_series.len() <= c {
            self.collision_series.resize(c + 1, Vec::new());
        }
        &mut self.channels[c]
    }

    /// Slots observed (slotted engine).
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Frames observed (async engine, summed over nodes).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Clean beacon deliveries observed.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Receptions destroyed by impairments.
    pub fn impairment_losses(&self) -> u64 {
        self.impairment_losses
    }

    /// Links first-covered so far (and the tracker's expected total).
    pub fn link_progress(&self) -> (u64, u64) {
        (self.links_covered, self.links_expected)
    }

    /// Protocol phase transitions observed.
    pub fn phase_transitions(&self) -> u64 {
        self.phase_transitions
    }

    /// Network mutations observed (join/leave/edge/channel events from a
    /// dynamics schedule).
    pub fn dynamics_events(&self) -> u64 {
        self.dynamics_events
    }

    /// Clear receptions destroyed by fault-plan link loss models.
    pub fn beacons_lost(&self) -> u64 {
        self.beacons_lost
    }

    /// Channel-slots (or channel-windows) suppressed by a jammer.
    pub fn slots_jammed(&self) -> u64 {
        self.slots_jammed
    }

    /// Receptions suppressed by jamming (summed over jammed slots).
    pub fn jam_losses(&self) -> u64 {
        self.jam_losses
    }

    /// Collisions resolved into deliveries by the capture effect.
    pub fn capture_deliveries(&self) -> u64 {
        self.capture_deliveries
    }

    /// Node crash transitions observed (fault plan, not churn).
    pub fn node_crashes(&self) -> u64 {
        self.node_crashes
    }

    /// Node recovery transitions observed.
    pub fn node_recoveries(&self) -> u64 {
        self.node_recoveries
    }

    /// Per-node activity (indexed by node id; absent nodes are default).
    pub fn nodes(&self) -> &[NodeActivity] {
        &self.nodes
    }

    /// Activity for node `i` (default if never observed).
    pub fn node(&self, i: usize) -> NodeActivity {
        self.nodes.get(i).copied().unwrap_or_default()
    }

    /// Per-channel activity (indexed by channel id).
    pub fn channels(&self) -> &[ChannelActivity] {
        &self.channels
    }

    /// Fraction of observed node-slots with the radio on, over all nodes.
    pub fn busy_fraction(&self) -> f64 {
        let total: u64 = self.nodes.iter().map(NodeActivity::total).sum();
        if total == 0 {
            return 0.0;
        }
        let busy: u64 = self.nodes.iter().map(|n| n.transmit + n.listen).sum();
        busy as f64 / total as f64
    }

    /// Fraction of active channel-slots that collided, over all channels.
    pub fn collision_rate(&self) -> f64 {
        let active: u64 = self.channels.iter().map(ChannelActivity::active).sum();
        if active == 0 {
            return 0.0;
        }
        let collisions: u64 = self.channels.iter().map(|c| c.collision).sum();
        collisions as f64 / active as f64
    }

    /// Per-channel collision counts per window (empty unless constructed
    /// via [`MetricsSink::with_collision_series`]).
    pub fn collision_series(&self) -> &[Vec<u64>] {
        &self.collision_series
    }

    /// Window width (slots) of the collision series; 0 when disabled.
    pub fn series_window(&self) -> u64 {
        self.series_window
    }

    /// Adds every count from `other` (an independent repetition) into
    /// `self`. Time series are merged window-by-window.
    ///
    /// # Panics
    ///
    /// Panics if the two sinks use different series windows.
    pub fn merge(&mut self, other: &MetricsSink) {
        assert_eq!(
            self.series_window, other.series_window,
            "cannot merge metrics with different series windows"
        );
        self.slots += other.slots;
        self.frames += other.frames;
        self.deliveries += other.deliveries;
        self.impairment_losses += other.impairment_losses;
        self.links_covered += other.links_covered;
        self.links_expected = self.links_expected.max(other.links_expected);
        self.phase_transitions += other.phase_transitions;
        self.dynamics_events += other.dynamics_events;
        self.beacons_lost += other.beacons_lost;
        self.slots_jammed += other.slots_jammed;
        self.jam_losses += other.jam_losses;
        self.capture_deliveries += other.capture_deliveries;
        self.node_crashes += other.node_crashes;
        self.node_recoveries += other.node_recoveries;
        for (i, n) in other.nodes.iter().enumerate() {
            let mine = self.node_mut(i);
            mine.transmit += n.transmit;
            mine.listen += n.listen;
            mine.quiet += n.quiet;
        }
        for (c, ch) in other.channels.iter().enumerate() {
            self.channel_mut(c).merge(ch);
        }
        for (c, series) in other.collision_series.iter().enumerate() {
            if self.collision_series.len() <= c {
                self.collision_series.resize(c + 1, Vec::new());
            }
            let mine = &mut self.collision_series[c];
            if mine.len() < series.len() {
                mine.resize(series.len(), 0);
            }
            for (w, n) in series.iter().enumerate() {
                mine[w] += n;
            }
        }
    }

    /// Renders a human-readable multi-line summary (for `simulate
    /// --metrics`).
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        let _ = writeln!(
            out,
            "metrics: {} slots, {} frames, {} deliveries, {} impairment losses, \
             {} phase transitions",
            self.slots,
            self.frames,
            self.deliveries,
            self.impairment_losses,
            self.phase_transitions
        );
        let _ = writeln!(
            out,
            "busy fraction {:.3}, overall collision rate {:.3}, links covered {}/{}",
            self.busy_fraction(),
            self.collision_rate(),
            self.links_covered,
            self.links_expected
        );
        let _ = writeln!(
            out,
            "  {:>8} {:>8} {:>10} {:>8} {:>10} {:>10} {:>10}",
            "channel", "clear", "collision", "silence", "deliver", "coll rate", "contenders"
        );
        for (c, ch) in self.channels.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>8} {:>8} {:>10} {:>8} {:>10} {:>10.3} {:>10.2}",
                format!("ch{c}"),
                ch.clear,
                ch.collision,
                ch.silence,
                ch.deliveries,
                ch.collision_rate(),
                ch.mean_contenders()
            );
        }
        let _ = writeln!(
            out,
            "  {:>8} {:>8} {:>8} {:>8} {:>8}",
            "node", "tx", "listen", "quiet", "busy"
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>8} {:>8} {:>8} {:>8} {:>8.3}",
                format!("n{i}"),
                n.transmit,
                n.listen,
                n.quiet,
                n.busy_fraction()
            );
        }
        out
    }
}

impl EventSink for MetricsSink {
    fn on_event(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::SlotStart { slot } => {
                self.slots += 1;
                self.current_slot = slot;
            }
            SimEvent::FrameStart { .. } => {}
            SimEvent::FrameEnd { .. } => {
                self.frames += 1;
            }
            SimEvent::Action { node, action, .. } => {
                let n = self.node_mut(node.as_usize());
                match action {
                    SlotAction::Transmit { .. } => n.transmit += 1,
                    SlotAction::Listen { .. } => n.listen += 1,
                    SlotAction::Quiet => n.quiet += 1,
                }
            }
            SimEvent::Channel {
                at,
                channel,
                resolution,
            } => {
                let window = self.series_window;
                let ch = self.channel_mut(channel.index() as usize);
                match resolution {
                    MediumResolution::Clear { .. } => {
                        ch.clear += 1;
                        ch.contenders_sum += 1;
                        ch.contention.record(1.0);
                    }
                    MediumResolution::Collision { contenders } => {
                        ch.collision += 1;
                        ch.contenders_sum += contenders as u64;
                        ch.contention.record(contenders as f64);
                        if window > 0 {
                            if let Stamp::Slot(slot) = at {
                                let w = (slot / window) as usize;
                                let series = &mut self.collision_series[channel.index() as usize];
                                if series.len() <= w {
                                    series.resize(w + 1, 0);
                                }
                                series[w] += 1;
                            }
                        }
                    }
                    MediumResolution::Silence { .. } => ch.silence += 1,
                }
            }
            SimEvent::Delivery { channel, .. } => {
                self.deliveries += 1;
                self.channel_mut(channel.index() as usize).deliveries += 1;
            }
            SimEvent::ImpairmentLoss { count, .. } => {
                self.impairment_losses += count;
            }
            SimEvent::LinkCovered {
                covered, expected, ..
            } => {
                self.links_covered = self.links_covered.max(covered);
                self.links_expected = self.links_expected.max(expected);
            }
            SimEvent::Phase { .. } => {
                self.phase_transitions += 1;
            }
            SimEvent::NodeJoined { .. }
            | SimEvent::NodeLeft { .. }
            | SimEvent::EdgeChanged { .. }
            | SimEvent::ChannelChanged { .. } => {
                self.dynamics_events += 1;
            }
            SimEvent::GroundTruthChanged {
                covered, expected, ..
            } => {
                // Dynamics resynced the tracker: the ground truth may have
                // shrunk, so overwrite rather than max-accumulate.
                self.links_covered = covered;
                self.links_expected = expected;
            }
            SimEvent::BeaconLost { .. } => {
                self.beacons_lost += 1;
            }
            SimEvent::SlotJammed { losses, .. } => {
                self.slots_jammed += 1;
                self.jam_losses += losses as u64;
            }
            SimEvent::CaptureDelivery { .. } => {
                self.capture_deliveries += 1;
            }
            SimEvent::NodeCrashed { .. } => {
                self.node_crashes += 1;
            }
            SimEvent::NodeRecovered { .. } => {
                self.node_recoveries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use mmhew_spectrum::ChannelId;
    use mmhew_topology::NodeId;

    use super::*;
    use crate::event::ProtocolPhase;

    fn slot_events() -> Vec<SimEvent> {
        let at = Stamp::Slot(0);
        vec![
            SimEvent::SlotStart { slot: 0 },
            SimEvent::Action {
                at,
                node: NodeId::new(0),
                action: SlotAction::Transmit {
                    channel: ChannelId::new(0),
                },
            },
            SimEvent::Action {
                at,
                node: NodeId::new(1),
                action: SlotAction::Listen {
                    channel: ChannelId::new(0),
                },
            },
            SimEvent::Action {
                at,
                node: NodeId::new(2),
                action: SlotAction::Quiet,
            },
            SimEvent::Channel {
                at,
                channel: ChannelId::new(0),
                resolution: MediumResolution::Clear {
                    tx: NodeId::new(0),
                    rx_count: 1,
                },
            },
            SimEvent::Delivery {
                at,
                from: NodeId::new(0),
                to: NodeId::new(1),
                channel: ChannelId::new(0),
            },
            SimEvent::LinkCovered {
                at,
                from: NodeId::new(0),
                to: NodeId::new(1),
                covered: 1,
                expected: 6,
            },
            SimEvent::Phase {
                at,
                node: NodeId::new(0),
                phase: ProtocolPhase::Stage(1),
            },
        ]
    }

    #[test]
    fn aggregates_basic_counters() {
        let mut m = MetricsSink::new();
        for e in slot_events() {
            m.on_event(&e);
        }
        assert_eq!(m.slots(), 1);
        assert_eq!(m.deliveries(), 1);
        assert_eq!(m.phase_transitions(), 1);
        assert_eq!(m.link_progress(), (1, 6));
        assert_eq!(m.node(0).transmit, 1);
        assert_eq!(m.node(1).listen, 1);
        assert_eq!(m.node(2).quiet, 1);
        let ch = &m.channels()[0];
        assert_eq!(ch.clear, 1);
        assert_eq!(ch.deliveries, 1);
        assert_eq!(ch.mean_contenders(), 1.0);
        assert!((m.busy_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.collision_rate(), 0.0);
    }

    #[test]
    fn collision_series_buckets_by_window() {
        let mut m = MetricsSink::with_collision_series(10);
        for slot in [0u64, 3, 25] {
            m.on_event(&SimEvent::Channel {
                at: Stamp::Slot(slot),
                channel: ChannelId::new(1),
                resolution: MediumResolution::Collision { contenders: 2 },
            });
        }
        assert_eq!(m.collision_series()[1], vec![2, 0, 1]);
        assert_eq!(m.channels()[1].collision, 3);
        assert_eq!(m.channels()[1].collision_rate(), 1.0);
        assert_eq!(m.channels()[1].mean_contenders(), 2.0);
    }

    #[test]
    fn merge_adds_reps() {
        let mut a = MetricsSink::new();
        let mut b = MetricsSink::new();
        for e in slot_events() {
            a.on_event(&e);
            b.on_event(&e);
        }
        a.merge(&b);
        assert_eq!(a.slots(), 2);
        assert_eq!(a.deliveries(), 2);
        assert_eq!(a.node(0).transmit, 2);
        assert_eq!(a.channels()[0].clear, 2);
        assert_eq!(a.link_progress(), (1, 6));
        let summary = a.render_summary();
        assert!(summary.contains("ch0"));
        assert!(summary.contains("n0"));
    }

    #[test]
    fn merge_keeps_series_alignment() {
        let mut a = MetricsSink::with_collision_series(5);
        let mut b = MetricsSink::with_collision_series(5);
        b.on_event(&SimEvent::Channel {
            at: Stamp::Slot(7),
            channel: ChannelId::new(0),
            resolution: MediumResolution::Collision { contenders: 3 },
        });
        a.merge(&b);
        assert_eq!(a.collision_series()[0], vec![0, 1]);
    }

    #[test]
    fn fault_counters_aggregate_and_merge() {
        let mut m = MetricsSink::new();
        let at = Stamp::Slot(3);
        m.on_event(&SimEvent::BeaconLost {
            at,
            from: NodeId::new(0),
            to: NodeId::new(1),
        });
        m.on_event(&SimEvent::SlotJammed {
            at,
            channel: ChannelId::new(2),
            losses: 3,
        });
        m.on_event(&SimEvent::CaptureDelivery {
            at,
            to: NodeId::new(1),
            from: NodeId::new(0),
            contenders: 4,
        });
        m.on_event(&SimEvent::NodeCrashed {
            at,
            node: NodeId::new(2),
        });
        m.on_event(&SimEvent::NodeRecovered {
            at,
            node: NodeId::new(2),
        });
        assert_eq!(m.beacons_lost(), 1);
        assert_eq!(m.slots_jammed(), 1);
        assert_eq!(m.jam_losses(), 3);
        assert_eq!(m.capture_deliveries(), 1);
        assert_eq!(m.node_crashes(), 1);
        assert_eq!(m.node_recoveries(), 1);
        let other = m.clone();
        m.merge(&other);
        assert_eq!(m.beacons_lost(), 2);
        assert_eq!(m.jam_losses(), 6);
        assert_eq!(m.capture_deliveries(), 2);
        assert_eq!(m.node_crashes(), 2);
    }

    #[test]
    #[should_panic(expected = "different series windows")]
    fn merge_rejects_window_mismatch() {
        let mut a = MetricsSink::with_collision_series(5);
        let b = MetricsSink::with_collision_series(10);
        a.merge(&b);
    }
}
