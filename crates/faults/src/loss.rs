//! Per-link loss models: i.i.d. Bernoulli and Gilbert–Elliott bursty loss.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One i.i.d. delivery draw in *delivery-probability* terms.
///
/// This is exactly the draw `mmhew-radio::Impairments` has always made: no
/// RNG is consumed when the channel is reliable (`delivery_probability >=
/// 1.0`), otherwise one `gen_bool(delivery_probability)`. `Impairments`
/// delegates here, so the i.i.d. knob is the trivial case of the fault
/// machinery and legacy experiments (E13) keep their exact draw sequence.
#[inline]
pub fn bernoulli_delivers<R: Rng + ?Sized>(delivery_probability: f64, rng: &mut R) -> bool {
    delivery_probability >= 1.0 || rng.gen_bool(delivery_probability)
}

/// Gilbert–Elliott two-state Markov loss channel.
///
/// The channel is in a *good* or *bad* state; each use first draws the
/// state transition, then draws a loss with the current state's loss
/// probability. Burst lengths are geometric: the mean sojourn in the bad
/// state is `1 / p_bad_to_good` uses.
///
/// The stationary probability of the bad state is
/// `p_good_to_bad / (p_good_to_bad + p_bad_to_good)` and the stationary
/// loss rate is `π_bad·loss_bad + π_good·loss_good` — see
/// [`stationary_loss`](Self::stationary_loss), property-tested against the
/// empirical chain.
///
/// # Examples
///
/// ```
/// use mmhew_faults::GilbertElliott;
///
/// let ge = GilbertElliott::new(0.1, 0.4, 0.01, 0.9);
/// assert!((ge.stationary_bad() - 0.2).abs() < 1e-12);
/// assert!((ge.stationary_loss() - (0.2 * 0.9 + 0.8 * 0.01)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    loss_good: f64,
    loss_bad: f64,
}

impl GilbertElliott {
    /// Creates a channel from the two transition probabilities and the two
    /// per-state loss probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or if both transition
    /// probabilities are zero (the chain would be frozen and the
    /// stationary distribution undefined).
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        for p in [p_good_to_bad, p_bad_to_good, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        assert!(
            p_good_to_bad + p_bad_to_good > 0.0,
            "degenerate chain: both transition probabilities are zero"
        );
        Self {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
        }
    }

    /// Burst-calibrated constructor: a blackout channel (`loss_bad = 1`,
    /// `loss_good = 0`) with the given stationary loss rate and mean burst
    /// length, so experiments can compare bursty against i.i.d. loss *at
    /// equal average rate*.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < stationary_loss < 1` and `mean_burst_len >= 1`.
    pub fn bursty(stationary_loss: f64, mean_burst_len: f64) -> Self {
        assert!(
            stationary_loss > 0.0 && stationary_loss < 1.0,
            "stationary loss must be in (0, 1)"
        );
        assert!(
            mean_burst_len >= 1.0,
            "mean burst length must be at least 1"
        );
        let p_bad_to_good = 1.0 / mean_burst_len;
        // With loss_bad = 1 and loss_good = 0 the stationary loss IS the
        // stationary bad probability π; solve π = g2b / (g2b + b2g) for g2b.
        let p_good_to_bad = (stationary_loss * p_bad_to_good / (1.0 - stationary_loss)).min(1.0);
        Self::new(p_good_to_bad, p_bad_to_good, 0.0, 1.0)
    }

    /// Good → bad transition probability per use.
    pub fn p_good_to_bad(&self) -> f64 {
        self.p_good_to_bad
    }

    /// Bad → good transition probability per use.
    pub fn p_bad_to_good(&self) -> f64 {
        self.p_bad_to_good
    }

    /// Loss probability while in the good state.
    pub fn loss_good(&self) -> f64 {
        self.loss_good
    }

    /// Loss probability while in the bad state.
    pub fn loss_bad(&self) -> f64 {
        self.loss_bad
    }

    /// Stationary probability of the bad state.
    pub fn stationary_bad(&self) -> f64 {
        self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
    }

    /// Stationary loss rate `π_bad·loss_bad + π_good·loss_good`.
    pub fn stationary_loss(&self) -> f64 {
        let pi_bad = self.stationary_bad();
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }

    /// Advances the chain one use and draws the loss: one transition draw
    /// followed by one loss draw, returning `true` if the beacon is lost.
    /// `bad` is the caller-held channel state.
    pub fn step<R: Rng + ?Sized>(&self, bad: &mut bool, rng: &mut R) -> bool {
        let p_leave = if *bad {
            self.p_bad_to_good
        } else {
            self.p_good_to_bad
        };
        if rng.gen_bool(p_leave) {
            *bad = !*bad;
        }
        let loss = if *bad { self.loss_bad } else { self.loss_good };
        rng.gen_bool(loss)
    }
}

/// Loss model attached to one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkLossModel {
    /// i.i.d. loss expressed as a *delivery* probability — the same
    /// convention (and the same single `gen_bool` draw) as
    /// `mmhew-radio::Impairments`.
    Bernoulli {
        /// Probability that a clear reception is actually delivered.
        delivery_probability: f64,
    },
    /// Two-state bursty loss.
    GilbertElliott(GilbertElliott),
}

impl LinkLossModel {
    /// Long-run loss rate of the model (for equal-average-rate
    /// comparisons).
    pub fn expected_loss(&self) -> f64 {
        match self {
            LinkLossModel::Bernoulli {
                delivery_probability,
            } => 1.0 - delivery_probability.min(1.0),
            LinkLossModel::GilbertElliott(ge) => ge.stationary_loss(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;

    #[test]
    fn bernoulli_matches_gen_bool_sequence() {
        // The delegation contract: `bernoulli_delivers(q, rng)` must be
        // indistinguishable from the historical `rng.gen_bool(q)` draw,
        // and must not touch the RNG at q >= 1.
        use rand::Rng;
        let mut a = SeedTree::new(99).rng();
        let mut b = SeedTree::new(99).rng();
        for _ in 0..200 {
            assert_eq!(bernoulli_delivers(0.37, &mut a), b.gen_bool(0.37));
        }
        assert_eq!(a, b, "RNG states must stay in lockstep");
        let before = a.clone();
        assert!(bernoulli_delivers(1.0, &mut a));
        assert_eq!(a, before, "reliable draw must not consume RNG");
    }

    #[test]
    fn stationary_formulas() {
        let ge = GilbertElliott::new(0.05, 0.2, 0.0, 1.0);
        assert!((ge.stationary_bad() - 0.2).abs() < 1e-12);
        assert!((ge.stationary_loss() - 0.2).abs() < 1e-12);
        let bursty = GilbertElliott::bursty(0.25, 10.0);
        assert!((bursty.stationary_loss() - 0.25).abs() < 1e-12);
        assert!((1.0 / bursty.p_bad_to_good() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn step_consumes_exactly_two_draws() {
        use rand::RngCore;
        let ge = GilbertElliott::new(0.1, 0.3, 0.05, 0.8);
        let mut a = SeedTree::new(5).rng();
        let mut b = SeedTree::new(5).rng();
        let mut bad = false;
        ge.step(&mut bad, &mut a);
        b.next_u64();
        b.next_u64();
        // gen_bool consumes one u64 per draw in rand 0.8.
        assert_eq!(a, b);
    }

    #[test]
    fn blackout_chain_loses_exactly_in_bad_state() {
        let ge = GilbertElliott::new(0.5, 0.5, 0.0, 1.0);
        let mut rng = SeedTree::new(7).rng();
        let mut bad = false;
        for _ in 0..1000 {
            let lost = ge.step(&mut bad, &mut rng);
            assert_eq!(lost, bad);
        }
    }

    #[test]
    fn expected_loss() {
        let b = LinkLossModel::Bernoulli {
            delivery_probability: 0.75,
        };
        assert!((b.expected_loss() - 0.25).abs() < 1e-12);
        let g = LinkLossModel::GilbertElliott(GilbertElliott::bursty(0.25, 4.0));
        assert!((g.expected_loss() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = GilbertElliott::new(1.5, 0.1, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "degenerate chain")]
    fn rejects_frozen_chain() {
        let _ = GilbertElliott::new(0.0, 0.0, 0.0, 1.0);
    }
}
