//! Crash/recover node processes.
//!
//! A crashed node stays in the topology — its links still count toward the
//! discovery ground truth — but its radio is dead: it neither radiates nor
//! hears until it recovers. This is deliberately distinct from `NodeLeave`
//! churn, which removes the node (and its links) from the ground truth.

use mmhew_topology::NodeId;
use serde::{Deserialize, Serialize};

/// One crash or recovery transition at a unit-agnostic time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// When the transition takes effect (inclusive), unit-agnostic.
    pub at: u64,
    /// The node transitioning.
    pub node: NodeId,
    /// `true` = recover (radio back on), `false` = crash (radio dead).
    pub up: bool,
}

impl CrashEvent {
    /// A crash at `at`.
    pub fn down(at: u64, node: NodeId) -> Self {
        Self {
            at,
            node,
            up: false,
        }
    }

    /// A recovery at `at`.
    pub fn recover(at: u64, node: NodeId) -> Self {
        Self { at, node, up: true }
    }
}

/// A time-sorted list of crash/recover transitions, walked by a monotone
/// cursor inside [`crate::ActiveFaults`].
///
/// # Examples
///
/// ```
/// use mmhew_faults::CrashSchedule;
/// use mmhew_topology::NodeId;
///
/// let s = CrashSchedule::outage(NodeId::new(3), 100, 250);
/// assert_eq!(s.events().len(), 2);
/// assert!(!s.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CrashSchedule {
    events: Vec<CrashEvent>,
}

impl CrashSchedule {
    /// Builds a schedule from transitions (sorted by time; the sort is
    /// stable, so same-time transitions apply in the order given).
    pub fn new(mut events: Vec<CrashEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events }
    }

    /// The empty schedule: no node ever crashes.
    pub fn none() -> Self {
        Self::default()
    }

    /// A single outage: `node` crashes at `down_at` and recovers at
    /// `up_at`.
    ///
    /// # Panics
    ///
    /// Panics unless `down_at < up_at`.
    pub fn outage(node: NodeId, down_at: u64, up_at: u64) -> Self {
        assert!(down_at < up_at, "outage must end after it begins");
        Self::new(vec![
            CrashEvent::down(down_at, node),
            CrashEvent::recover(up_at, node),
        ])
    }

    /// Merges two schedules into one time-sorted stream.
    pub fn merged(self, other: CrashSchedule) -> Self {
        let mut events = self.events;
        events.extend(other.events);
        Self::new(events)
    }

    /// `true` if the schedule holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The transitions, sorted by time.
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_merges() {
        let a = CrashSchedule::new(vec![
            CrashEvent::down(50, NodeId::new(1)),
            CrashEvent::down(10, NodeId::new(0)),
        ]);
        assert_eq!(a.events()[0].at, 10);
        let b = CrashSchedule::outage(NodeId::new(2), 20, 30);
        let m = a.merged(b);
        let ats: Vec<u64> = m.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![10, 20, 30, 50]);
    }

    #[test]
    #[should_panic(expected = "outage must end after it begins")]
    fn rejects_inverted_outage() {
        let _ = CrashSchedule::outage(NodeId::new(0), 30, 30);
    }
}
