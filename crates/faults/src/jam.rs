//! Per-channel jammer schedules.
//!
//! A [`JamSchedule`] is a time-stepped function from unit-agnostic `u64`
//! times (slot indices under the synchronous engine, nanoseconds under the
//! asynchronous one) to the set of jammed channels, following the
//! `DynamicsSchedule` idiom: a sorted step list walked by a monotone
//! cursor in the hot loop, with stateless binary-search lookups for
//! interval queries. Randomized schedules are seeded at construction, so
//! resolving a jam never consumes simulation RNG.

use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::SeedTree;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One step of a jammer schedule: from `at` onward (until the next step)
/// the given channels are jammed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JamStep {
    /// Activation time (inclusive), unit-agnostic.
    pub at: u64,
    /// The set of channels jammed from `at` until the next step.
    pub channels: ChannelSet,
}

/// A piecewise-constant jammed-channel set over time.
///
/// Before the first step nothing is jammed; the last step holds forever.
///
/// # Examples
///
/// ```
/// use mmhew_faults::JamSchedule;
/// use mmhew_spectrum::ChannelId;
///
/// let sweep = JamSchedule::sweeping(3, 10, 60);
/// assert!(sweep.jammed_at(ChannelId::new(0), 5));
/// assert!(sweep.jammed_at(ChannelId::new(1), 15));
/// assert!(sweep.jammed_at(ChannelId::new(0), 35)); // wrapped around
/// assert!(!sweep.jammed_at(ChannelId::new(2), 0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JamSchedule {
    steps: Vec<JamStep>,
}

impl JamSchedule {
    /// Builds a schedule from explicit steps (sorted by time; the sort is
    /// stable, so among equal times the last step given wins).
    pub fn new(mut steps: Vec<JamStep>) -> Self {
        steps.sort_by_key(|s| s.at);
        Self { steps }
    }

    /// The empty schedule: nothing is ever jammed.
    pub fn none() -> Self {
        Self::default()
    }

    /// A fixed-set jammer: `channels` are jammed for the whole run.
    pub fn fixed(channels: ChannelSet) -> Self {
        Self::new(vec![JamStep { at: 0, channels }])
    }

    /// A sweeping jammer: one channel at a time, cycling through the
    /// universe `0, 1, …, universe−1, 0, …`, dwelling `dwell` time units
    /// on each, until `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0` or `dwell == 0`.
    pub fn sweeping(universe: u16, dwell: u64, horizon: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(dwell > 0, "dwell must be positive");
        let mut steps = Vec::new();
        let mut at = 0u64;
        let mut c = 0u16;
        while at < horizon {
            let mut channels = ChannelSet::new();
            channels.insert(ChannelId::new(c));
            steps.push(JamStep { at, channels });
            c = (c + 1) % universe;
            at = at.saturating_add(dwell);
        }
        Self { steps }
    }

    /// A random jammer: every `dwell` time units, jam a fresh uniformly
    /// chosen set of `width` distinct channels, until `horizon`. The
    /// choices are drawn from `seed` here at construction — running the
    /// schedule consumes no simulation RNG.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`, `dwell == 0`, or `width > universe`.
    pub fn random(universe: u16, width: usize, dwell: u64, horizon: u64, seed: SeedTree) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(dwell > 0, "dwell must be positive");
        assert!(
            width <= universe as usize,
            "cannot jam more channels than the universe holds"
        );
        let mut rng = seed.rng();
        let mut steps = Vec::new();
        let mut at = 0u64;
        while at < horizon {
            let mut channels = ChannelSet::new();
            while channels.len() < width {
                channels.insert(ChannelId::new(rng.gen_range(0..universe)));
            }
            steps.push(JamStep { at, channels });
            at = at.saturating_add(dwell);
        }
        Self { steps }
    }

    /// `true` if the schedule never jams anything.
    pub fn is_empty(&self) -> bool {
        self.steps.iter().all(|s| s.channels.is_empty())
    }

    /// The underlying steps, sorted by activation time.
    pub fn steps(&self) -> &[JamStep] {
        &self.steps
    }

    /// Index of the step active at `t`, if any step has started yet.
    pub(crate) fn index_at(&self, t: u64) -> Option<usize> {
        self.steps.partition_point(|s| s.at <= t).checked_sub(1)
    }

    /// Is `channel` jammed at instant `t`?
    pub fn jammed_at(&self, channel: ChannelId, t: u64) -> bool {
        self.index_at(t)
            .is_some_and(|i| self.steps[i].channels.contains(channel))
    }

    /// Is `channel` jammed at any point of the half-open interval
    /// `[start, end)`? Used for asynchronous bursts, which span time.
    pub fn jammed_in(&self, channel: ChannelId, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let mut i = self.index_at(start).unwrap_or(0);
        while i < self.steps.len() {
            let seg_start = self.steps[i].at;
            if seg_start >= end {
                break;
            }
            let seg_end = self.steps.get(i + 1).map_or(u64::MAX, |s| s.at);
            if seg_end > start && self.steps[i].channels.contains(channel) {
                return true;
            }
            i += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u16) -> ChannelId {
        ChannelId::new(i)
    }

    #[test]
    fn nothing_jammed_before_first_step() {
        let s = JamSchedule::new(vec![JamStep {
            at: 10,
            channels: ChannelSet::full(2),
        }]);
        assert!(!s.jammed_at(ch(0), 9));
        assert!(s.jammed_at(ch(0), 10));
        assert!(s.jammed_at(ch(1), 1_000_000), "last step holds forever");
    }

    #[test]
    fn fixed_jams_whole_run() {
        let s = JamSchedule::fixed([ch(2)].into_iter().collect());
        assert!(s.jammed_at(ch(2), 0));
        assert!(s.jammed_at(ch(2), u64::MAX));
        assert!(!s.jammed_at(ch(1), 0));
        assert!(!s.is_empty());
    }

    #[test]
    fn sweep_cycles_channels() {
        let s = JamSchedule::sweeping(4, 5, 40);
        for t in 0..40 {
            let expect = ((t / 5) % 4) as u16;
            for c in 0..4 {
                assert_eq!(s.jammed_at(ch(c), t), c == expect, "t={t} c={c}");
            }
        }
    }

    #[test]
    fn random_is_seed_deterministic_with_exact_width() {
        let a = JamSchedule::random(6, 2, 10, 100, SeedTree::new(3).branch("jam"));
        let b = JamSchedule::random(6, 2, 10, 100, SeedTree::new(3).branch("jam"));
        assert_eq!(a, b);
        assert_eq!(a.steps().len(), 10);
        for step in a.steps() {
            assert_eq!(step.channels.len(), 2);
        }
        let c = JamSchedule::random(6, 2, 10, 100, SeedTree::new(4).branch("jam"));
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn interval_query_sees_past_and_future_segments() {
        // Jam channel 0 during [10, 20) only.
        let s = JamSchedule::new(vec![
            JamStep {
                at: 10,
                channels: [ch(0)].into_iter().collect(),
            },
            JamStep {
                at: 20,
                channels: ChannelSet::new(),
            },
        ]);
        assert!(!s.jammed_in(ch(0), 0, 10), "before the jam");
        assert!(s.jammed_in(ch(0), 5, 15), "overlaps the front");
        assert!(s.jammed_in(ch(0), 15, 25), "overlaps the back");
        assert!(s.jammed_in(ch(0), 0, 100), "spans the jam");
        assert!(!s.jammed_in(ch(0), 20, 30), "after the jam");
        assert!(!s.jammed_in(ch(1), 0, 100), "other channel untouched");
        assert!(!s.jammed_in(ch(0), 15, 15), "empty interval");
    }

    #[test]
    fn empty_schedule_is_empty() {
        assert!(JamSchedule::none().is_empty());
        assert!(JamSchedule::fixed(ChannelSet::new()).is_empty());
    }
}
