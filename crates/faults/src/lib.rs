//! Composable, seeded fault injection for M²HeW neighbor discovery.
//!
//! The paper's conclusion claims Algorithms 1–4 extend to unreliable
//! channels; the authors' follow-up robustness paper works that claim out
//! by repeating transmissions against per-beacon loss. This crate provides
//! the fault *vocabulary* both simulation engines consume through a single
//! [`FaultPlan`]:
//!
//! * per-directed-link loss models ([`LinkLossModel`]): i.i.d. Bernoulli
//!   (the trivial case `mmhew-radio::Impairments` delegates to) and
//!   two-state bursty [`GilbertElliott`] channels; per-direction overrides
//!   express asymmetric links;
//! * per-channel jammer schedules ([`JamSchedule`]): fixed-set, sweeping,
//!   and seeded random jammers as a time-stepped function, following the
//!   `DynamicsSchedule` cursor idiom (unit-agnostic `u64` times — slot
//!   indices under the synchronous engine, nanoseconds under the
//!   asynchronous one);
//! * the capture effect: a collision of `k` transmitters still delivers
//!   the strongest frame with probability `p_cap`;
//! * a crash/recover node process ([`CrashSchedule`]): the node stays in
//!   the topology (its links still count toward discovery ground truth)
//!   but its radio goes silent — distinct from `NodeLeave` churn, which
//!   removes the node from the ground truth entirely.
//!
//! [`ActiveFaults`] is the runtime the engines drive: it holds the
//! per-link channel states, the crash bitmap, schedule cursors, and
//! reusable per-slot tally buffers so the steady-state hot loop performs
//! no heap allocation.
//!
//! # Neutrality
//!
//! An **empty plan is free**: `FaultPlan::default().is_empty()` is `true`,
//! the engines then skip fault machinery entirely, and outcomes *and*
//! JSONL traces are byte-identical to a run without faults. Configured
//! faults draw RNG only where a model is attached — links without a loss
//! model draw nothing, and jam/crash schedules are resolved purely from
//! their (seeded-at-construction) event lists.
//!
//! # Examples
//!
//! ```
//! use mmhew_faults::{FaultPlan, GilbertElliott, JamSchedule, LinkLossModel};
//! use mmhew_spectrum::ChannelId;
//!
//! let ge = GilbertElliott::bursty(0.3, 8.0);
//! assert!((ge.stationary_loss() - 0.3).abs() < 1e-12);
//! let plan = FaultPlan::new()
//!     .with_default_loss(LinkLossModel::GilbertElliott(ge))
//!     .with_jamming(JamSchedule::fixed([ChannelId::new(0)].into_iter().collect()))
//!     .with_capture(0.5);
//! assert!(!plan.is_empty());
//! assert!(FaultPlan::new().is_empty());
//! ```

pub mod active;
pub mod crash;
pub mod jam;
pub mod loss;
pub mod plan;

pub use active::{ActiveFaults, CaptureRecord, CrashTransition};
pub use crash::{CrashEvent, CrashSchedule};
pub use jam::{JamSchedule, JamStep};
pub use loss::{bernoulli_delivers, GilbertElliott, LinkLossModel};
pub use plan::FaultPlan;
