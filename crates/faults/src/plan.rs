//! The composable fault specification both engines consume.

use crate::crash::CrashSchedule;
use crate::jam::JamSchedule;
use crate::loss::LinkLossModel;
use mmhew_topology::NodeId;
use serde::{Deserialize, Serialize};

/// An immutable, seedable, composable fault specification.
///
/// A plan combines (all optional, in any combination):
///
/// * a default per-link loss model applied to every directed link;
/// * per-directed-link overrides — giving the two directions of a link
///   different models expresses *asymmetric* loss;
/// * a [`JamSchedule`];
/// * a [`CrashSchedule`];
/// * a capture probability `p_cap`: a collision of `k` transmitters still
///   delivers the strongest frame (uniform among contenders, i.i.d.
///   fading) with probability `p_cap`.
///
/// The default plan [`is_empty`](Self::is_empty); engines treat an empty
/// plan exactly like no plan at all (byte-identical outcomes and traces,
/// zero extra RNG draws).
///
/// # Examples
///
/// ```
/// use mmhew_faults::{FaultPlan, LinkLossModel};
/// use mmhew_topology::NodeId;
///
/// let plan = FaultPlan::new()
///     .with_asymmetric_loss(NodeId::new(0), NodeId::new(1), 0.9, 0.3);
/// assert_eq!(plan.link_overrides().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    default_loss: Option<LinkLossModel>,
    link_loss: Vec<(NodeId, NodeId, LinkLossModel)>,
    jam: JamSchedule,
    crashes: CrashSchedule,
    capture_probability: Option<f64>,
}

impl FaultPlan {
    /// The empty plan: no faults at all.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies `model` to every directed link not otherwise overridden.
    pub fn with_default_loss(mut self, model: LinkLossModel) -> Self {
        validate(&model);
        self.default_loss = Some(model);
        self
    }

    /// Overrides the loss model of the directed link `from → to`.
    pub fn with_link_loss(mut self, from: NodeId, to: NodeId, model: LinkLossModel) -> Self {
        validate(&model);
        self.link_loss.push((from, to, model));
        self
    }

    /// Asymmetric loss on the undirected link `{a, b}`: delivery
    /// probability `delivery_ab` in the `a → b` direction and
    /// `delivery_ba` in the other.
    pub fn with_asymmetric_loss(
        self,
        a: NodeId,
        b: NodeId,
        delivery_ab: f64,
        delivery_ba: f64,
    ) -> Self {
        self.with_link_loss(
            a,
            b,
            LinkLossModel::Bernoulli {
                delivery_probability: delivery_ab,
            },
        )
        .with_link_loss(
            b,
            a,
            LinkLossModel::Bernoulli {
                delivery_probability: delivery_ba,
            },
        )
    }

    /// Attaches a jammer schedule.
    pub fn with_jamming(mut self, jam: JamSchedule) -> Self {
        self.jam = jam;
        self
    }

    /// Attaches a crash/recover schedule.
    pub fn with_crashes(mut self, crashes: CrashSchedule) -> Self {
        self.crashes = crashes;
        self
    }

    /// Enables the capture effect with probability `p_cap` per collision.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p_cap <= 1` (zero would be a no-op that still
    /// perturbed the RNG stream — spell "no capture" by not calling this).
    pub fn with_capture(mut self, p_cap: f64) -> Self {
        assert!(
            p_cap > 0.0 && p_cap <= 1.0,
            "capture probability out of range"
        );
        self.capture_probability = Some(p_cap);
        self
    }

    /// The default per-link loss model, if any.
    pub fn default_loss(&self) -> Option<&LinkLossModel> {
        self.default_loss.as_ref()
    }

    /// Per-directed-link overrides, in insertion order (later entries win).
    pub fn link_overrides(&self) -> &[(NodeId, NodeId, LinkLossModel)] {
        &self.link_loss
    }

    /// The jammer schedule.
    pub fn jam(&self) -> &JamSchedule {
        &self.jam
    }

    /// The crash/recover schedule.
    pub fn crashes(&self) -> &CrashSchedule {
        &self.crashes
    }

    /// The capture probability, if the capture effect is enabled.
    pub fn capture_probability(&self) -> Option<f64> {
        self.capture_probability
    }

    /// `true` when the plan specifies no fault whatsoever — the engines'
    /// neutrality fast path.
    pub fn is_empty(&self) -> bool {
        self.default_loss.is_none()
            && self.link_loss.is_empty()
            && self.jam.is_empty()
            && self.crashes.is_empty()
            && self.capture_probability.is_none()
    }
}

fn validate(model: &LinkLossModel) {
    if let LinkLossModel::Bernoulli {
        delivery_probability,
    } = model
    {
        assert!(
            (0.0..=1.0).contains(delivery_probability),
            "probability out of range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::GilbertElliott;
    use mmhew_spectrum::ChannelId;

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn each_axis_makes_the_plan_non_empty() {
        let loss = LinkLossModel::Bernoulli {
            delivery_probability: 0.5,
        };
        assert!(!FaultPlan::new().with_default_loss(loss).is_empty());
        assert!(!FaultPlan::new()
            .with_link_loss(NodeId::new(0), NodeId::new(1), loss)
            .is_empty());
        assert!(!FaultPlan::new()
            .with_jamming(JamSchedule::fixed(
                [ChannelId::new(0)].into_iter().collect()
            ))
            .is_empty());
        assert!(!FaultPlan::new()
            .with_crashes(CrashSchedule::outage(NodeId::new(0), 1, 2))
            .is_empty());
        assert!(!FaultPlan::new().with_capture(0.5).is_empty());
        // A jammer that jams nothing stays neutral.
        assert!(FaultPlan::new()
            .with_jamming(JamSchedule::none())
            .is_empty());
    }

    #[test]
    fn asymmetric_builder_expands_to_two_overrides() {
        let plan = FaultPlan::new().with_asymmetric_loss(NodeId::new(2), NodeId::new(5), 1.0, 0.1);
        let o = plan.link_overrides();
        assert_eq!(o.len(), 2);
        assert_eq!((o[0].0, o[0].1), (NodeId::new(2), NodeId::new(5)));
        assert_eq!((o[1].0, o[1].1), (NodeId::new(5), NodeId::new(2)));
    }

    #[test]
    fn later_override_wins_is_documented_order() {
        let plan = FaultPlan::new()
            .with_default_loss(LinkLossModel::GilbertElliott(GilbertElliott::bursty(
                0.2, 6.0,
            )))
            .with_link_loss(
                NodeId::new(0),
                NodeId::new(1),
                LinkLossModel::Bernoulli {
                    delivery_probability: 0.5,
                },
            );
        assert!(plan.default_loss().is_some());
        assert_eq!(plan.link_overrides().len(), 1);
    }

    #[test]
    #[should_panic(expected = "capture probability out of range")]
    fn rejects_zero_capture() {
        let _ = FaultPlan::new().with_capture(0.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_delivery_probability() {
        let _ = FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
            delivery_probability: -0.1,
        });
    }
}
