//! The runtime the engines drive: link channel states, crash bitmap,
//! schedule cursors, and reusable per-resolution tally buffers.

use crate::loss::{bernoulli_delivers, GilbertElliott, LinkLossModel};
use crate::plan::FaultPlan;
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_topology::NodeId;
use rand::Rng;

/// Per-directed-link runtime loss state.
#[derive(Debug, Clone, Copy)]
enum LinkState {
    None,
    Bernoulli { delivery: f64 },
    Ge { model: GilbertElliott, bad: bool },
}

/// A collision resolved by capture: `to` heard `from` out of `contenders`
/// simultaneous transmitters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureRecord {
    /// The listener.
    pub to: NodeId,
    /// The transmitter whose frame survived.
    pub from: NodeId,
    /// How many transmitters collided.
    pub contenders: u32,
}

/// A crash-state change applied by [`ActiveFaults::advance_to`], for the
/// engine to surface as an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashTransition {
    /// The node transitioning.
    pub node: NodeId,
    /// `true` = recovered, `false` = crashed.
    pub up: bool,
}

/// Runtime fault state for one engine run.
///
/// Built once from a [`FaultPlan`] (the engines skip construction entirely
/// when the plan [`is_empty`](FaultPlan::is_empty)); all buffers are
/// pre-sized at construction so the steady-state hot loop performs no heap
/// allocation.
///
/// Time flows through [`advance_to`](Self::advance_to) with nondecreasing
/// unit-agnostic stamps (slot indices or nanoseconds); per-resolution
/// tallies are reset with [`begin_resolution`](Self::begin_resolution) and
/// read back through [`beacon_losses`](Self::beacon_losses) /
/// [`jam_losses`](Self::jam_losses) / [`captures`](Self::captures).
#[derive(Debug, Clone)]
pub struct ActiveFaults {
    plan: FaultPlan,
    /// Dense `stride × stride` matrix of link states (`from·stride + to`).
    /// Nodes joining beyond the initial population (dynamics `NodeJoin`)
    /// index past the matrix and are treated as fault-free.
    stride: usize,
    links: Vec<LinkState>,
    any_link_loss: bool,
    crashed: Vec<bool>,
    crash_cursor: usize,
    jam_cursor: Option<usize>,
    jammed_now: ChannelSet,
    transitions: Vec<CrashTransition>,
    beacon_losses: Vec<(NodeId, NodeId)>,
    jam_losses: Vec<(ChannelId, u32)>,
    captures: Vec<CaptureRecord>,
    contenders: Vec<NodeId>,
}

impl ActiveFaults {
    /// Builds the runtime for `nodes` nodes over a `universe`-channel
    /// spectrum.
    pub fn new(plan: FaultPlan, nodes: usize, universe: usize) -> Self {
        let stride = nodes;
        let default = plan
            .default_loss()
            .map_or(LinkState::None, LinkState::from_model);
        let mut links = vec![default; stride * stride];
        for &(from, to, model) in plan.link_overrides() {
            let (f, t) = (from.as_usize(), to.as_usize());
            if f < stride && t < stride {
                links[f * stride + t] = LinkState::from_model(&model);
            }
        }
        let any_link_loss = plan.default_loss().is_some() || !plan.link_overrides().is_empty();
        Self {
            stride,
            links,
            any_link_loss,
            crashed: vec![false; nodes],
            crash_cursor: 0,
            jam_cursor: None,
            jammed_now: ChannelSet::new(),
            transitions: Vec::with_capacity(plan.crashes().events().len()),
            beacon_losses: Vec::with_capacity(nodes),
            jam_losses: Vec::with_capacity(universe),
            captures: Vec::with_capacity(nodes),
            contenders: Vec::with_capacity(nodes),
            plan,
        }
    }

    /// The plan this runtime was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any directed link carries a loss model (fast skip for the
    /// per-delivery check).
    pub fn any_link_loss(&self) -> bool {
        self.any_link_loss
    }

    /// Advances the jam and crash cursors to `now` (nondecreasing across
    /// calls). Crash-state changes are collected into
    /// [`transitions`](Self::transitions) for the engine to surface;
    /// they replace the previous call's collection.
    pub fn advance_to(&mut self, now: u64) {
        self.transitions.clear();
        let jam = self.plan.jam();
        if !jam.steps().is_empty() {
            let idx = jam.index_at(now);
            if idx != self.jam_cursor {
                self.jam_cursor = idx;
                match idx {
                    Some(i) => self.jammed_now.clone_from(&jam.steps()[i].channels),
                    None => self.jammed_now = ChannelSet::new(),
                }
            }
        }
        let events = self.plan.crashes().events();
        while self.crash_cursor < events.len() && events[self.crash_cursor].at <= now {
            let e = events[self.crash_cursor];
            self.crash_cursor += 1;
            let idx = e.node.as_usize();
            if idx < self.crashed.len() && self.crashed[idx] != !e.up {
                self.crashed[idx] = !e.up;
                self.transitions.push(CrashTransition {
                    node: e.node,
                    up: e.up,
                });
            }
        }
    }

    /// Crash-state changes applied by the most recent
    /// [`advance_to`](Self::advance_to).
    pub fn transitions(&self) -> &[CrashTransition] {
        &self.transitions
    }

    /// Is `node` currently crashed (radio dead)?
    #[inline]
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.get(node.as_usize()).copied().unwrap_or(false)
    }

    /// Does any node ever crash under this plan?
    pub fn any_crashes(&self) -> bool {
        !self.plan.crashes().is_empty()
    }

    /// Is `channel` jammed at the time of the last
    /// [`advance_to`](Self::advance_to)? (Slot-instant query for the
    /// synchronous engine.)
    #[inline]
    pub fn is_jammed_now(&self, channel: ChannelId) -> bool {
        self.jammed_now.contains(channel)
    }

    /// Is `channel` jammed anywhere in `[start, end)`? (Burst-interval
    /// query for the asynchronous engine; stateless, so out-of-order burst
    /// times are fine.)
    #[inline]
    pub fn is_jammed_in(&self, channel: ChannelId, start: u64, end: u64) -> bool {
        self.plan.jam().jammed_in(channel, start, end)
    }

    /// The capture probability, if the capture effect is enabled.
    pub fn capture_probability(&self) -> Option<f64> {
        self.plan.capture_probability()
    }

    /// Clears the per-resolution tallies. The resolver calls this once per
    /// slot (sync) or listen window (async) before injecting faults.
    pub fn begin_resolution(&mut self) {
        self.beacon_losses.clear();
        self.jam_losses.clear();
        self.captures.clear();
    }

    /// Draws the loss model of the directed link `from → to` (advancing
    /// its Gilbert–Elliott chain if it has one). Links without a model
    /// deliver unconditionally and consume no RNG. A loss is tallied into
    /// [`beacon_losses`](Self::beacon_losses).
    pub fn link_delivers<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        to: NodeId,
        rng: &mut R,
    ) -> bool {
        if !self.any_link_loss {
            return true;
        }
        let (f, t) = (from.as_usize(), to.as_usize());
        if f >= self.stride || t >= self.stride {
            return true;
        }
        let delivered = match &mut self.links[f * self.stride + t] {
            LinkState::None => true,
            LinkState::Bernoulli { delivery } => bernoulli_delivers(*delivery, rng),
            LinkState::Ge { model, bad } => !model.step(bad, rng),
        };
        if !delivered {
            self.beacon_losses.push((from, to));
        }
        delivered
    }

    /// Tallies one reception suppressed by a jammed channel.
    pub fn record_jam_loss(&mut self, channel: ChannelId) {
        match self.jam_losses.iter_mut().find(|(c, _)| *c == channel) {
            Some((_, n)) => *n += 1,
            None => self.jam_losses.push((channel, 1)),
        }
    }

    /// Resolves the capture effect for listener `to` on a collided
    /// channel: collects the non-crashed contenders from `candidates`,
    /// then with probability `p_cap` delivers one uniformly (i.i.d.
    /// fading makes "the strongest of k" a uniform pick). Draws zero RNG
    /// when capture is disabled; otherwise one `gen_bool` plus, on
    /// success, one `gen_range`.
    pub fn try_capture<R, I>(
        &mut self,
        to: NodeId,
        channel: ChannelId,
        candidates: I,
        rng: &mut R,
    ) -> Option<NodeId>
    where
        R: Rng + ?Sized,
        I: IntoIterator<Item = NodeId>,
    {
        let p_cap = self.plan.capture_probability()?;
        self.contenders.clear();
        for v in candidates {
            if !self.is_crashed(v) {
                self.contenders.push(v);
            }
        }
        if self.contenders.len() < 2 || !rng.gen_bool(p_cap) {
            return None;
        }
        let from = self.contenders[rng.gen_range(0..self.contenders.len())];
        self.captures.push(CaptureRecord {
            to,
            from,
            contenders: self.contenders.len() as u32,
        });
        Some(from)
    }

    /// Beacons lost to link loss models since
    /// [`begin_resolution`](Self::begin_resolution), as `(from, to)`.
    pub fn beacon_losses(&self) -> &[(NodeId, NodeId)] {
        &self.beacon_losses
    }

    /// Receptions suppressed by jamming since
    /// [`begin_resolution`](Self::begin_resolution), per channel.
    pub fn jam_losses(&self) -> &[(ChannelId, u32)] {
        &self.jam_losses
    }

    /// Collisions resolved by capture since
    /// [`begin_resolution`](Self::begin_resolution).
    pub fn captures(&self) -> &[CaptureRecord] {
        &self.captures
    }
}

impl LinkState {
    fn from_model(model: &LinkLossModel) -> Self {
        match *model {
            LinkLossModel::Bernoulli {
                delivery_probability,
            } => LinkState::Bernoulli {
                delivery: delivery_probability,
            },
            // Chains start in the good state; burn-in is the caller's
            // choice (discovery runs are long next to burst lengths).
            LinkLossModel::GilbertElliott(model) => LinkState::Ge { model, bad: false },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashSchedule;
    use crate::jam::JamSchedule;
    use mmhew_util::SeedTree;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ch(i: u16) -> ChannelId {
        ChannelId::new(i)
    }

    #[test]
    fn fault_free_link_draws_nothing() {
        let plan = FaultPlan::new().with_link_loss(
            n(0),
            n(1),
            LinkLossModel::Bernoulli {
                delivery_probability: 0.5,
            },
        );
        let mut active = ActiveFaults::new(plan, 4, 2);
        let mut rng = SeedTree::new(1).rng();
        let before = rng.clone();
        // Only 0 → 1 has a model; every other link is free.
        assert!(active.link_delivers(n(1), n(0), &mut rng));
        assert!(active.link_delivers(n(2), n(3), &mut rng));
        assert_eq!(rng, before, "unconfigured links must not consume RNG");
    }

    #[test]
    fn default_loss_covers_all_links_and_overrides_win() {
        let plan = FaultPlan::new()
            .with_default_loss(LinkLossModel::Bernoulli {
                delivery_probability: 0.0,
            })
            .with_link_loss(
                n(0),
                n(1),
                LinkLossModel::Bernoulli {
                    delivery_probability: 1.0,
                },
            );
        let mut active = ActiveFaults::new(plan, 3, 2);
        let mut rng = SeedTree::new(2).rng();
        assert!(active.link_delivers(n(0), n(1), &mut rng), "override wins");
        assert!(!active.link_delivers(n(1), n(0), &mut rng), "default loses");
        assert_eq!(active.beacon_losses(), &[(n(1), n(0))]);
    }

    #[test]
    fn crash_cursor_applies_transitions_once() {
        let plan = FaultPlan::new().with_crashes(CrashSchedule::outage(n(2), 10, 20));
        let mut active = ActiveFaults::new(plan, 4, 2);
        active.advance_to(5);
        assert!(active.transitions().is_empty());
        assert!(!active.is_crashed(n(2)));
        active.advance_to(10);
        assert_eq!(
            active.transitions(),
            &[CrashTransition {
                node: n(2),
                up: false
            }]
        );
        assert!(active.is_crashed(n(2)));
        active.advance_to(15);
        assert!(active.transitions().is_empty(), "no double application");
        active.advance_to(100);
        assert_eq!(
            active.transitions(),
            &[CrashTransition {
                node: n(2),
                up: true
            }]
        );
        assert!(!active.is_crashed(n(2)));
    }

    #[test]
    fn jam_cursor_tracks_schedule() {
        let plan = FaultPlan::new().with_jamming(JamSchedule::sweeping(3, 10, 30));
        let mut active = ActiveFaults::new(plan, 2, 3);
        assert!(
            !active.is_jammed_now(ch(0)),
            "before advance nothing is jammed"
        );
        active.advance_to(0);
        assert!(active.is_jammed_now(ch(0)));
        active.advance_to(12);
        assert!(active.is_jammed_now(ch(1)));
        assert!(!active.is_jammed_now(ch(0)));
        assert!(active.is_jammed_in(ch(0), 0, 5));
        assert!(!active.is_jammed_in(ch(2), 0, 15));
    }

    #[test]
    fn capture_excludes_crashed_and_picks_a_contender() {
        let plan = FaultPlan::new()
            .with_capture(1.0)
            .with_crashes(CrashSchedule::new(vec![crate::crash::CrashEvent::down(
                0,
                n(3),
            )]));
        let mut active = ActiveFaults::new(plan, 5, 2);
        active.advance_to(0);
        let mut rng = SeedTree::new(3).rng();
        let won = active
            .try_capture(n(0), ch(0), [n(1), n(2), n(3)], &mut rng)
            .expect("p_cap = 1 always captures");
        assert!(won == n(1) || won == n(2), "crashed node cannot win");
        assert_eq!(active.captures().len(), 1);
        assert_eq!(active.captures()[0].contenders, 2);
        // A "collision" reduced to one live contender cannot capture.
        let none = active.try_capture(n(0), ch(0), [n(1), n(3)], &mut rng);
        assert!(none.is_none());
    }

    #[test]
    fn jam_tally_aggregates_per_channel() {
        let plan = FaultPlan::new().with_jamming(JamSchedule::fixed(ChannelSet::full(2)));
        let mut active = ActiveFaults::new(plan, 2, 2);
        active.begin_resolution();
        active.record_jam_loss(ch(0));
        active.record_jam_loss(ch(1));
        active.record_jam_loss(ch(0));
        assert_eq!(active.jam_losses(), &[(ch(0), 2), (ch(1), 1)]);
        active.begin_resolution();
        assert!(active.jam_losses().is_empty());
    }

    #[test]
    fn out_of_matrix_nodes_are_fault_free() {
        let plan = FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
            delivery_probability: 0.0,
        });
        let mut active = ActiveFaults::new(plan, 2, 2);
        let mut rng = SeedTree::new(4).rng();
        // A node joined later (index 5) is outside the 2×2 matrix.
        assert!(active.link_delivers(n(5), n(0), &mut rng));
        assert!(!active.is_crashed(n(9)));
    }
}
