//! Property test: the empirical loss rate of a driven Gilbert–Elliott
//! chain converges to the analytic stationary probability
//! `π_bad·loss_bad + π_good·loss_good`.

use mmhew_faults::GilbertElliott;
use mmhew_util::SeedTree;
use proptest::prelude::*;
use rand::Rng;

const STEPS: usize = 40_000;
// Transitions are bounded away from 0 so the chain mixes within a few
// dozen steps; the empirical mean of 40k correlated draws then sits
// within ~3σ ≈ 0.06 of the stationary rate.
const TOLERANCE: f64 = 0.06;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn empirical_loss_rate_matches_stationary(
        p_g2b in 0.05f64..0.95,
        p_b2g in 0.05f64..0.95,
        loss_good in 0.0f64..1.0,
        loss_bad in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let ge = GilbertElliott::new(p_g2b, p_b2g, loss_good, loss_bad);
        let mut rng = SeedTree::new(seed).branch("ge").rng();
        // Start from the stationary distribution so no burn-in is needed.
        let mut bad = rng.gen_bool(ge.stationary_bad());
        let mut losses = 0u64;
        for _ in 0..STEPS {
            if ge.step(&mut bad, &mut rng) {
                losses += 1;
            }
        }
        let empirical = losses as f64 / STEPS as f64;
        let analytic = ge.stationary_loss();
        prop_assert!(
            (empirical - analytic).abs() < TOLERANCE,
            "empirical {empirical:.4} vs stationary {analytic:.4} \
             (p_g2b={p_g2b:.3}, p_b2g={p_b2g:.3}, \
              loss_good={loss_good:.3}, loss_bad={loss_bad:.3})"
        );
    }
}

#[test]
fn bursty_constructor_hits_requested_rate_empirically() {
    let ge = GilbertElliott::bursty(0.3, 8.0);
    let mut rng = SeedTree::new(17).rng();
    let mut bad = rng.gen_bool(ge.stationary_bad());
    let mut losses = 0u64;
    for _ in 0..200_000 {
        if ge.step(&mut bad, &mut rng) {
            losses += 1;
        }
    }
    let empirical = losses as f64 / 200_000.0;
    assert!(
        (empirical - 0.3).abs() < 0.02,
        "bursty(0.3, 8) measured {empirical:.4}"
    );
}
