//! End-to-end smoke tests of the harness binaries, driven through their
//! real command-line interfaces.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn simulate_sync_happy_path() {
    let (stdout, stderr, ok) = run(
        env!("CARGO_BIN_EXE_simulate"),
        &[
            "--topology",
            "ring",
            "--nodes",
            "8",
            "--universe",
            "4",
            "--availability",
            "full",
            "--algorithm",
            "alg3",
            "--reps",
            "2",
            "--seed",
            "5",
        ],
    );
    assert!(ok, "simulate failed: {stderr}");
    assert!(stdout.contains("network: N=8"));
    assert!(stdout.contains("completed in"));
    assert!(stdout.contains("all completed runs exact ✓"), "{stdout}");
}

#[test]
fn simulate_async_happy_path() {
    let (stdout, _, ok) = run(
        env!("CARGO_BIN_EXE_simulate"),
        &[
            "--topology",
            "line",
            "--nodes",
            "4",
            "--universe",
            "2",
            "--availability",
            "full",
            "--algorithm",
            "alg4",
            "--drift-den",
            "7",
            "--reps",
            "1",
        ],
    );
    assert!(ok);
    assert!(stdout.contains("Algorithm 4 (async)"));
    assert!(stdout.contains("frames after T_s"));
}

#[test]
fn simulate_rejects_bad_flags() {
    let (_, stderr, ok) = run(env!("CARGO_BIN_EXE_simulate"), &["--algorithm", "bogus"]);
    assert!(!ok, "bogus algorithm must fail");
    assert!(stderr.contains("UnknownVariant"), "{stderr}");
}

#[test]
fn experiment_binary_writes_csv() {
    let dir = std::env::temp_dir().join("mmhew-bin-smoke");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let csv = dir.join("e1.csv");
    let (stdout, stderr, ok) = run(
        env!("CARGO_BIN_EXE_e1_n_scaling"),
        &["--seed", "7", "--csv", csv.to_str().expect("utf8 path")],
    );
    assert!(ok, "e1 failed: {stderr}");
    assert!(stdout.contains("=== E1:"));
    let content = std::fs::read_to_string(&csv).expect("csv written");
    assert!(content.starts_with("N,"));
    assert!(content.lines().count() >= 5);
    std::fs::remove_file(&csv).ok();
}

#[test]
fn run_all_csv_dir_writes_every_table() {
    // Running the full quick suite here would be slow; instead verify the
    // flag machinery on the lightest single-experiment binary and check
    // run_all's help-path behavior indirectly through the registry count
    // (the suite itself is exercised by the per-experiment unit tests).
    let n = mmhew_harness::registry::all().len();
    assert_eq!(n, 24);
}

#[test]
fn e21_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e21_join_rediscovery"), &["--seed", "3"]);
    assert!(ok, "e21 failed: {stderr}");
    assert!(stdout.contains("=== E21:"), "{stdout}");
    assert!(stdout.contains("Thm3 bound"), "{stdout}");
}

#[test]
fn e22_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e22_churn_staleness"), &["--seed", "3"]);
    assert!(ok, "e22 failed: {stderr}");
    assert!(stdout.contains("=== E22:"), "{stdout}");
    assert!(stdout.contains("mean ghosts"), "{stdout}");
}

#[test]
fn e23_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e23_spectrum_churn"), &["--seed", "3"]);
    assert!(ok, "e23 failed: {stderr}");
    assert!(stdout.contains("=== E23:"), "{stdout}");
    assert!(stdout.contains("mean re-est"), "{stdout}");
}
