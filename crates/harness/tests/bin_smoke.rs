//! End-to-end smoke tests of the harness binaries, driven through their
//! real command-line interfaces.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn simulate_sync_happy_path() {
    let (stdout, stderr, ok) = run(
        env!("CARGO_BIN_EXE_simulate"),
        &[
            "--topology",
            "ring",
            "--nodes",
            "8",
            "--universe",
            "4",
            "--availability",
            "full",
            "--algorithm",
            "alg3",
            "--reps",
            "2",
            "--seed",
            "5",
        ],
    );
    assert!(ok, "simulate failed: {stderr}");
    assert!(stdout.contains("network: N=8"));
    assert!(stdout.contains("completed in"));
    assert!(stdout.contains("all completed runs exact ✓"), "{stdout}");
}

#[test]
fn simulate_async_happy_path() {
    let (stdout, _, ok) = run(
        env!("CARGO_BIN_EXE_simulate"),
        &[
            "--topology",
            "line",
            "--nodes",
            "4",
            "--universe",
            "2",
            "--availability",
            "full",
            "--algorithm",
            "alg4",
            "--drift-den",
            "7",
            "--reps",
            "1",
        ],
    );
    assert!(ok);
    assert!(stdout.contains("Algorithm 4 (async)"));
    assert!(stdout.contains("frames after T_s"));
}

#[test]
fn simulate_rejects_bad_flags() {
    let (_, stderr, ok) = run(env!("CARGO_BIN_EXE_simulate"), &["--algorithm", "bogus"]);
    assert!(!ok, "bogus algorithm must fail");
    assert!(stderr.contains("UnknownVariant"), "{stderr}");
}

#[test]
fn experiment_binary_writes_csv() {
    let dir = std::env::temp_dir().join("mmhew-bin-smoke");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let csv = dir.join("e1.csv");
    let (stdout, stderr, ok) = run(
        env!("CARGO_BIN_EXE_e1_n_scaling"),
        &["--seed", "7", "--csv", csv.to_str().expect("utf8 path")],
    );
    assert!(ok, "e1 failed: {stderr}");
    assert!(stdout.contains("=== E1:"));
    let content = std::fs::read_to_string(&csv).expect("csv written");
    assert!(content.starts_with("N,"));
    assert!(content.lines().count() >= 5);
    std::fs::remove_file(&csv).ok();
}

#[test]
fn run_all_csv_dir_writes_every_table() {
    // Running the full quick suite here would be slow; instead verify the
    // registry's structural invariants so the check never goes stale when
    // an experiment is added: ids are unique and resolvable, the E-series
    // is contiguous from E1, and the F-CDF figure experiment is present.
    let all = mmhew_harness::registry::all();
    let ids: Vec<&str> = all.iter().map(|(id, _)| *id).collect();
    let unique: std::collections::BTreeSet<&str> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "duplicate experiment ids: {ids:?}");
    let e_count = ids.iter().filter(|id| id.starts_with('E')).count();
    for k in 1..=e_count {
        let id = format!("E{k}");
        assert!(
            ids.iter().any(|i| *i == id),
            "E-series not contiguous: missing {id} in {ids:?}"
        );
    }
    assert!(ids.contains(&"F-CDF"), "{ids:?}");
    assert_eq!(all.len(), e_count + 1, "unexpected non-E entries: {ids:?}");
    for (id, _) in &all {
        assert!(
            mmhew_harness::registry::by_id(id).is_some(),
            "{id} not resolvable by_id"
        );
    }
}

#[test]
fn simulate_protocol_runs_catalog_entries() {
    let (stdout, stderr, ok) = run(
        env!("CARGO_BIN_EXE_simulate"),
        &[
            "--topology",
            "complete",
            "--nodes",
            "6",
            "--universe",
            "5",
            "--availability",
            "full",
            "--protocol",
            "mc-dis",
            "--reps",
            "2",
            "--seed",
            "5",
        ],
    );
    assert!(ok, "simulate --protocol failed: {stderr}");
    assert!(stdout.contains("protocol: mc-dis"), "{stdout}");
    assert!(stdout.contains("completed in"), "{stdout}");
    assert!(stdout.contains("all completed runs exact ✓"), "{stdout}");
}

#[test]
fn simulate_protocol_flag_conflicts_and_unknown_names_fail() {
    let (_, stderr, ok) = run(
        env!("CARGO_BIN_EXE_simulate"),
        &["--protocol", "mc-dis", "--algorithm", "alg1"],
    );
    assert!(!ok, "conflicting flags must fail");
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    let (_, stderr, ok) = run(env!("CARGO_BIN_EXE_simulate"), &["--protocol", "bogus"]);
    assert!(!ok, "unknown protocol must fail");
    assert!(stderr.contains("not in the catalog"), "{stderr}");
    assert!(
        stderr.contains("mc-dis"),
        "error lists known names: {stderr}"
    );

    let (_, stderr, ok) = run(
        env!("CARGO_BIN_EXE_simulate"),
        &["--protocol", "frame-based"],
    );
    assert!(!ok, "async catalog entry must be redirected");
    assert!(stderr.contains("--algorithm alg4"), "{stderr}");
}

#[test]
fn perf_report_smoke() {
    let dir = std::env::temp_dir().join("mmhew-bin-smoke");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out = dir.join("bench_engines_smoke.json");
    let (stdout, stderr, ok) = run(
        env!("CARGO_BIN_EXE_perf_report"),
        &[
            "--smoke",
            "--seed",
            "9",
            "--out",
            out.to_str().expect("utf8 path"),
        ],
    );
    assert!(ok, "perf_report failed: {stderr}");
    assert!(stdout.contains("sparse_grid_8x8"), "{stdout}");
    assert!(stdout.contains("dense_complete_64"), "{stdout}");
    let content = std::fs::read_to_string(&out).expect("report written");
    assert!(
        content.contains("\"schema\":\"mmhew-perf-report/v1\""),
        "{content}"
    );
    assert!(content.contains("\"mode\":\"smoke\""), "{content}");
    std::fs::remove_file(&out).ok();
}

#[test]
fn e21_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e21_join_rediscovery"), &["--seed", "3"]);
    assert!(ok, "e21 failed: {stderr}");
    assert!(stdout.contains("=== E21:"), "{stdout}");
    assert!(stdout.contains("Thm3 bound"), "{stdout}");
}

#[test]
fn e22_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e22_churn_staleness"), &["--seed", "3"]);
    assert!(ok, "e22 failed: {stderr}");
    assert!(stdout.contains("=== E22:"), "{stdout}");
    assert!(stdout.contains("mean ghosts"), "{stdout}");
}

#[test]
fn e23_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e23_spectrum_churn"), &["--seed", "3"]);
    assert!(ok, "e23 failed: {stderr}");
    assert!(stdout.contains("=== E23:"), "{stdout}");
    assert!(stdout.contains("mean re-est"), "{stdout}");
}

#[test]
fn e24_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e24_bursty_loss"), &["--seed", "3"]);
    assert!(ok, "e24 failed: {stderr}");
    assert!(stdout.contains("=== E24:"), "{stdout}");
    assert!(stdout.contains("gilbert-elliott"), "{stdout}");
}

#[test]
fn e25_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e25_jamming"), &["--seed", "3"]);
    assert!(ok, "e25 failed: {stderr}");
    assert!(stdout.contains("=== E25:"), "{stdout}");
    assert!(stdout.contains("slowdown at"), "{stdout}");
}

#[test]
fn e26_smoke() {
    let (stdout, stderr, ok) = run(
        env!("CARGO_BIN_EXE_e26_robust_repetition"),
        &["--seed", "3"],
    );
    assert!(ok, "e26 failed: {stderr}");
    assert!(stdout.contains("=== E26:"), "{stdout}");
    assert!(stdout.contains("calibrated budget"), "{stdout}");
}

#[test]
fn e27_smoke() {
    let (stdout, stderr, ok) = run(
        env!("CARGO_BIN_EXE_e27_rivals_completion"),
        &["--seed", "3"],
    );
    assert!(ok, "e27 failed: {stderr}");
    assert!(stdout.contains("=== E27:"), "{stdout}");
    assert!(stdout.contains("mc-dis"), "{stdout}");
    assert!(stdout.contains("energy/node/slot"), "{stdout}");
}

#[test]
fn e28_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e28_rivals_adversity"), &["--seed", "3"]);
    assert!(ok, "e28 failed: {stderr}");
    assert!(stdout.contains("=== E28:"), "{stdout}");
    assert!(stdout.contains("slowdown"), "{stdout}");
}

#[test]
fn e29_smoke() {
    let (stdout, stderr, ok) = run(env!("CARGO_BIN_EXE_e29_rivals_churn"), &["--seed", "3"]);
    assert!(ok, "e29 failed: {stderr}");
    assert!(stdout.contains("=== E29:"), "{stdout}");
    assert!(stdout.contains("s-nihao"), "{stdout}");
}
