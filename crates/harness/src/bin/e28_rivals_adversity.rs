//! Runs experiment E28 (see DESIGN.md §5). Flags: `--full`, `--seed <n>`, `--csv <path>`.
fn main() {
    mmhew_harness::registry::run_binary("E28");
}
