//! Runs the entire experiment suite in order, printing every report.
//! Flags: --full (bigger sweeps), `--seed <n>`, --markdown (emit markdown
//! sections instead of text, for pasting into EXPERIMENTS.md),
//! `--csv-dir <dir>` (additionally write every table as `<dir>/<id>.csv`),
//! `--jobs <n>` (worker threads for repetitions; also `MMHEW_JOBS`;
//! results are thread-count-independent).
use mmhew_harness::registry;
use mmhew_harness::{reps_completed, set_jobs, Effort};

fn main() {
    let effort = Effort::from_args();
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_706);
    if let Some(jobs) = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
    {
        set_jobs(jobs);
    }
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("failed to create csv dir");
    }
    let start = std::time::Instant::now();
    let experiments = registry::all();
    let total = experiments.len();
    for (k, (id, f)) in experiments.into_iter().enumerate() {
        let t0 = std::time::Instant::now();
        let reps0 = reps_completed();
        let report = f(effort, seed);
        if markdown {
            print!("{}", report.render_markdown());
        } else {
            report.print();
        }
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", id.to_lowercase().replace('-', "_")));
            report.write_csv(&path).expect("failed to write CSV");
        }
        let wall = t0.elapsed().as_secs_f64();
        let reps = reps_completed() - reps0;
        eprintln!(
            "[{}/{total} {id} done in {wall:.1}s: {reps} reps, {:.1} reps/s]",
            k + 1,
            if wall > 0.0 { reps as f64 / wall } else { 0.0 }
        );
        println!();
    }
    eprintln!(
        "suite finished in {:.1}s ({} reps total)",
        start.elapsed().as_secs_f64(),
        reps_completed()
    );
}
