//! Runs the entire experiment suite in order, printing every report.
//! Flags: --full (bigger sweeps), `--seed <n>`, --markdown (emit markdown
//! sections instead of text, for pasting into EXPERIMENTS.md),
//! `--csv-dir <dir>` (additionally write every table as `<dir>/<id>.csv`),
//! `--jobs <n>` (worker threads for repetitions; also `MMHEW_JOBS`;
//! results are thread-count-independent).
use mmhew_harness::cli::Args;
use mmhew_harness::registry;
use mmhew_harness::{reps_completed, set_jobs};

fn main() {
    let (args, jobs, seed) = match Args::parse().and_then(|a| {
        a.expect_only(&["seed", "csv-dir"], &["markdown"])?;
        let jobs = a.jobs()?;
        let seed = a.get_or("seed", 20_260_706u64)?;
        Ok((a, jobs, seed))
    }) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("run_all: {e}");
            eprintln!("usage: [--quick|--full] [--jobs N] [--seed N] [--markdown] [--csv-dir DIR]");
            std::process::exit(2);
        }
    };
    let effort = args.effort();
    if let Some(jobs) = jobs {
        set_jobs(jobs);
    }
    let markdown = args.flag("markdown");
    let csv_dir = args.raw("csv-dir").map(std::path::PathBuf::from);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("failed to create csv dir");
    }
    let start = std::time::Instant::now();
    let experiments = registry::all();
    let total = experiments.len();
    for (k, (id, f)) in experiments.into_iter().enumerate() {
        let t0 = std::time::Instant::now();
        let reps0 = reps_completed();
        let report = f(effort, seed);
        if markdown {
            print!("{}", report.render_markdown());
        } else {
            report.print();
        }
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", id.to_lowercase().replace('-', "_")));
            report.write_csv(&path).expect("failed to write CSV");
        }
        let wall = t0.elapsed().as_secs_f64();
        let reps = reps_completed() - reps0;
        eprintln!(
            "[{}/{total} {id} done in {wall:.1}s: {reps} reps, {:.1} reps/s]",
            k + 1,
            if wall > 0.0 { reps as f64 / wall } else { 0.0 }
        );
        println!();
    }
    eprintln!(
        "suite finished in {:.1}s ({} reps total)",
        start.elapsed().as_secs_f64(),
        reps_completed()
    );
}
