//! General-purpose simulation driver: build a network from flags, run a
//! discovery algorithm, print parameters, theorem bounds and results.
//!
//! ```text
//! cargo run --release -p mmhew-harness --bin simulate -- \
//!     --topology grid --width 4 --height 4 \
//!     --universe 12 --availability subset --set-size 6 \
//!     --algorithm alg1 --reps 5 --seed 7
//!
//! cargo run --release -p mmhew-harness --bin simulate -- \
//!     --topology disk --nodes 30 --side 12 --radius 4 \
//!     --algorithm alg4 --drift-den 7 --reps 3
//! ```
//!
//! Flags (defaults in parentheses):
//! `--topology line|ring|grid|star|complete|disk|er (grid)`,
//! `--nodes (16)`, `--width/--height (4)`, `--side (10)`, `--radius (3)`,
//! `--edge-prob (0.3)`, `--universe (8)`,
//! `--availability full|subset|overlap|spatial (subset)`, `--set-size (4)`,
//! `--shared (2)`, `--private (2)`, `--primaries (5)`, `--pu-radius (4)`,
//! `--pu-channels (3)`,
//! `--algorithm alg1|alg2|alg3|alg4|baseline (alg1)`,
//! `--protocol <catalog name>` (mutually exclusive with `--algorithm`;
//! runs any sync entry from `mmhew_rivals::catalog`, e.g. `mc-dis`,
//! `s-nihao`, `a-nihao`), `--delta-est (Δ)`,
//! `--epsilon (0.01)`, `--start-window (0)`, `--frame-len (3000)`,
//! `--drift-den (0 = ideal; 7 means δ=1/7)`, `--reps (5)`, `--seed (1)`,
//! `--budget (4000000)`, `--jobs (0 = auto; worker threads for harness
//! parallelism, also settable via MMHEW_JOBS — never changes results)`,
//! `--shards (1; channel-sharded medium resolution worker threads for
//! slotted runs — byte-identical outcomes at any shard count)`,
//! `--engine slotted|event (slotted)` — `event` drives slotted algorithms
//! through the dead-air-skipping executor (byte-identical outcomes at the
//! same seed; slotted-only, rejected for alg4).
//!
//! Observability flags:
//! `--trace <path>` writes repetition 0 as a JSONL event trace
//! (deterministic for a fixed seed), `--perfetto <path>` writes
//! repetition 0 as a Perfetto `.pftrace` (open it at ui.perfetto.dev),
//! `--metrics` prints per-node and per-channel counters aggregated over
//! all repetitions, and `--timeline` draws the first
//! `--timeline-slots (120)` slots of repetition 0 as an ASCII slot×node
//! grid (slotted algorithms only). Attaching sinks does not change the
//! simulation: same seed, same outcome.

use mmhew_discovery::{
    tables_match_ground_truth, AsyncAlgorithm, AsyncParams, Bounds, Engine, Scenario,
    SyncAlgorithm, SyncParams,
};
use mmhew_engine::{AsyncRunConfig, AsyncStartSchedule, ClockConfig, StartSchedule, SyncRunConfig};
use mmhew_harness::cli::Args;
use mmhew_obs::{EventSink, FanoutSink, JsonlTraceSink, MetricsSink, TimelineSink};
use mmhew_perfetto::PerfettoSink;
use mmhew_spectrum::AvailabilityModel;
use mmhew_time::{DriftBound, DriftModel, LocalDuration, RealDuration};
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::{SeedTree, Summary};

fn build_network(args: &Args, seed: SeedTree) -> Result<Network, Box<dyn std::error::Error>> {
    let nodes: usize = args.get_or("nodes", 16)?;
    let universe: u16 = args.get_or("universe", 8)?;
    // Reject node counts whose fixed CSR + arena storage would blow the
    // memory cap *before* any allocation happens, with an error that
    // names the estimate instead of OOMing mid-build.
    mmhew_topology::check_storage_cap(nodes as u64, universe)?;
    let builder = match args.one_of(
        "topology",
        &["grid", "line", "ring", "star", "complete", "disk", "er"],
    )? {
        "line" => NetworkBuilder::line(nodes),
        "ring" => NetworkBuilder::ring(nodes),
        "grid" => NetworkBuilder::grid(args.get_or("width", 4)?, args.get_or("height", 4)?),
        "star" => NetworkBuilder::star(nodes),
        "complete" => NetworkBuilder::complete(nodes),
        "disk" => NetworkBuilder::unit_disk(
            nodes,
            args.get_or("side", 10.0)?,
            args.get_or("radius", 3.0)?,
        ),
        "er" => NetworkBuilder::erdos_renyi(nodes, args.get_or("edge-prob", 0.3)?),
        _ => unreachable!("one_of validated"),
    };
    let availability =
        match args.one_of("availability", &["subset", "full", "overlap", "spatial"])? {
            "full" => AvailabilityModel::Full,
            "subset" => AvailabilityModel::UniformSubset {
                size: args.get_or("set-size", 4)?,
            },
            "overlap" => AvailabilityModel::PairwiseOverlap {
                shared: args.get_or("shared", 2)?,
                private: args.get_or("private", 2)?,
            },
            "spatial" => AvailabilityModel::SpatialPrimaryUsers {
                primaries: args.get_or("primaries", 5)?,
                radius: args.get_or("pu-radius", 4.0)?,
                channels_per_primary: args.get_or("pu-channels", 3)?,
            },
            _ => unreachable!("one_of validated"),
        };
    Ok(builder
        .universe(universe)
        .availability(availability)
        .build(seed)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse()?;
    args.expect_only(
        &[
            "nodes",
            "topology",
            "width",
            "height",
            "side",
            "radius",
            "edge-prob",
            "universe",
            "availability",
            "set-size",
            "shared",
            "private",
            "primaries",
            "pu-radius",
            "pu-channels",
            "algorithm",
            "protocol",
            "delta-est",
            "epsilon",
            "start-window",
            "frame-len",
            "drift-den",
            "reps",
            "seed",
            "budget",
            "shards",
            "engine",
            "trace",
            "perfetto",
            "timeline-slots",
        ],
        &["metrics", "timeline"],
    )?;
    if let Some(jobs) = args.jobs()? {
        mmhew_harness::set_jobs(jobs);
    }
    let seed = SeedTree::new(args.get_or("seed", 1)?);
    let net = build_network(&args, seed.branch("net"))?;
    let delta = net.max_degree().max(1) as u64;
    let delta_est: u64 = args.get_or("delta-est", delta)?;
    let epsilon: f64 = args.get_or("epsilon", 0.01)?;
    let reps: u64 = args.get_or("reps", 5)?;
    let budget: u64 = args.get_or("budget", 4_000_000)?;
    let shards: usize = args.get_or("shards", 1)?;
    let bounds = Bounds::from_network(&net, delta_est, epsilon);

    println!(
        "network: N={} |U|={} links={}  S={} Δ={} ρ={:.3}  diameter={}",
        net.node_count(),
        net.universe_size(),
        net.links().len(),
        net.s_max(),
        net.max_degree(),
        net.rho(),
        net.topology()
            .diameter()
            .map_or("∞ (disconnected)".to_string(), |d| d.to_string()),
    );

    if args.raw("protocol").is_some() && args.raw("algorithm").is_some() {
        return Err(
            "--protocol and --algorithm are mutually exclusive (the catalog entry \
             already picks the algorithm)"
                .into(),
        );
    }
    let rival = match args.raw("protocol") {
        Some(name) => {
            let kind = mmhew_rivals::catalog::by_name(name).ok_or_else(|| {
                format!(
                    "--protocol {name:?} is not in the catalog (known names: {})",
                    mmhew_rivals::catalog::names(mmhew_rivals::Family::Sync).join(", ")
                )
            })?;
            if kind.family == mmhew_rivals::Family::Async {
                return Err(format!(
                    "--protocol {name} is the asynchronous frame-based algorithm — \
                     run it as --algorithm alg4 instead"
                )
                .into());
            }
            Some(kind)
        }
        None => None,
    };
    let algorithm = args.one_of("algorithm", &["alg1", "alg2", "alg3", "alg4", "baseline"])?;
    let engine = match args.one_of("engine", &["slotted", "event"])? {
        "event" => Engine::Event,
        _ => Engine::Slotted,
    };
    if engine == Engine::Event && algorithm == "alg4" {
        return Err("--engine event drives the slotted engine only (alg4 is asynchronous)".into());
    }
    let mut completions: Vec<f64> = Vec::new();
    let mut ok = true;

    let metrics_on = args.flag("metrics");
    let timeline_on = args.flag("timeline");
    let trace_path = args.raw("trace").map(str::to_string);
    let timeline_slots: usize = args.get_or("timeline-slots", 120)?;
    let mut metrics = metrics_on.then(MetricsSink::new);
    let mut timeline = timeline_on.then(|| TimelineSink::new(timeline_slots));
    let mut trace = match &trace_path {
        Some(p) => Some(JsonlTraceSink::create(p)?),
        None => None,
    };
    let perfetto_path = args.raw("perfetto").map(str::to_string);
    let mut perfetto = perfetto_path.as_ref().map(PerfettoSink::create);
    let observing = metrics_on || timeline_on || trace_path.is_some() || perfetto_path.is_some();

    if rival.is_none() && algorithm == "alg4" {
        println!(
            "algorithm: Algorithm 4 (async), Δ_est={delta_est}; Thm9 bound = {:.0} frames",
            bounds.theorem9_frames()
        );
        let drift_den: u64 = args.get_or("drift-den", 0)?;
        let frame_len: u64 = args.get_or("frame-len", 3_000)?;
        let drift = if drift_den == 0 {
            DriftModel::Ideal
        } else {
            DriftModel::RandomPiecewise {
                bound: DriftBound::new(1, drift_den),
                segment: RealDuration::from_nanos(frame_len * 5),
            }
        };
        let config = AsyncRunConfig::until_complete(budget)
            .with_frame_len(LocalDuration::from_nanos(frame_len))
            .with_clocks(ClockConfig {
                drift,
                offset_window: LocalDuration::from_nanos(frame_len * 10),
            })
            .with_starts(AsyncStartSchedule::Staggered {
                window: RealDuration::from_nanos(args.get_or("start-window", 0)?),
            });
        for rep in 0..reps {
            let alg = AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est)?);
            let rep_seed = seed.branch("run").index(rep);
            let out = if observing {
                let mut sinks: Vec<&mut dyn EventSink> = Vec::new();
                if let Some(m) = metrics.as_mut() {
                    sinks.push(m);
                }
                if rep == 0 {
                    if let Some(t) = trace.as_mut() {
                        sinks.push(t);
                    }
                    if let Some(p) = perfetto.as_mut() {
                        sinks.push(p);
                    }
                }
                let mut fan = FanoutSink::new(sinks);
                Scenario::asynchronous(&net, alg)
                    .config(config.clone())
                    .with_sink(&mut fan)
                    .run(rep_seed)?
            } else {
                Scenario::asynchronous(&net, alg)
                    .config(config.clone())
                    .run(rep_seed)?
            };
            match out.min_full_frames_at_completion() {
                Some(frames) => {
                    println!("  rep {rep}: completed in {frames} frames after T_s");
                    completions.push(frames as f64);
                    ok &= tables_match_ground_truth(&net, out.tables());
                }
                None => {
                    println!("  rep {rep}: DID NOT COMPLETE within {budget} frames");
                    ok = false;
                }
            }
        }
    } else {
        let alg = match algorithm {
            "alg1" => SyncAlgorithm::Staged(SyncParams::new(delta_est)?),
            "alg2" => SyncAlgorithm::Adaptive,
            "alg3" => SyncAlgorithm::Uniform(SyncParams::new(delta_est)?),
            "baseline" => SyncAlgorithm::PerChannelBirthday {
                tx_probability: 0.5,
            },
            _ => unreachable!("one_of validated"),
        };
        match rival {
            Some(kind) => println!(
                "protocol: {} (catalog) — {}; Δ_est={delta_est}; paper bounds do not apply",
                kind.name, kind.summary
            ),
            None => println!(
                "algorithm: {algorithm}, Δ_est={delta_est}; Thm1 bound = {:.0} slots, Thm3 bound = {:.0} slots",
                bounds.theorem1_slots(),
                bounds.theorem3_slots()
            ),
        }
        let window: u64 = args.get_or("start-window", 0)?;
        let starts = if window == 0 {
            StartSchedule::Identical
        } else {
            StartSchedule::Staggered { window }
        };
        for rep in 0..reps {
            let rep_seed = seed.branch("run").index(rep);
            let config = SyncRunConfig::until_complete(budget);
            // Catalog stacks are rebuilt every repetition (they are
            // per-node state machines); named algorithms are stateless
            // descriptors the scenario instantiates itself.
            let scenario = match rival {
                Some(kind) => Scenario::sync_stack(&net, kind.build_sync(&net, delta_est)?),
                None => Scenario::sync(&net, alg),
            };
            let out = if observing {
                let mut sinks: Vec<&mut dyn EventSink> = Vec::new();
                if let Some(m) = metrics.as_mut() {
                    sinks.push(m);
                }
                if rep == 0 {
                    if let Some(t) = trace.as_mut() {
                        sinks.push(t);
                    }
                    if let Some(p) = perfetto.as_mut() {
                        sinks.push(p);
                    }
                    if let Some(t) = timeline.as_mut() {
                        sinks.push(t);
                    }
                }
                let mut fan = FanoutSink::new(sinks);
                scenario
                    .starts(starts.clone())
                    .config(config)
                    .engine(engine)
                    .shards(shards)
                    .with_sink(&mut fan)
                    .run(rep_seed)?
            } else {
                scenario
                    .starts(starts.clone())
                    .config(config)
                    .engine(engine)
                    .shards(shards)
                    .run(rep_seed)?
            };
            match out.slots_to_complete() {
                Some(slots) => {
                    println!("  rep {rep}: completed in {slots} slots after T_s");
                    completions.push(slots as f64);
                    ok &= tables_match_ground_truth(&net, out.tables());
                }
                None => {
                    println!("  rep {rep}: DID NOT COMPLETE within {budget} slots");
                    ok = false;
                }
            }
        }
    }

    if !completions.is_empty() {
        println!("summary: {}", Summary::from_samples(&completions));
    }
    println!(
        "ground truth: {}",
        if ok {
            "all completed runs exact ✓"
        } else {
            "MISMATCH OR INCOMPLETE ✗"
        }
    );
    if let Some(m) = &metrics {
        print!("{}", m.render_summary());
    }
    if let Some(t) = &timeline {
        if algorithm == "alg4" {
            println!("(timeline: slotted algorithms only — nothing drawn for alg4)");
        } else {
            println!("timeline of rep 0 (first {timeline_slots} slots):");
            print!("{}", t.render());
        }
    }
    if let Some(t) = trace {
        let events = t.events();
        t.finish()?;
        println!(
            "trace: {events} events written to {}",
            trace_path.as_deref().unwrap_or_default()
        );
    }
    if let Some(p) = perfetto {
        let events = p.events();
        let bytes = p.finish()?;
        println!(
            "perfetto: {events} events → {bytes} bytes at {} (open at ui.perfetto.dev)",
            perfetto_path.as_deref().unwrap_or_default()
        );
    }
    Ok(())
}
