//! `perf_report` — engine throughput on the canonical sparse/dense
//! scenarios, written as `BENCH_engines.json`.
//!
//! Measures wall-clock slots/sec of the synchronous engine (sparse 8×8
//! grid and dense complete-64, both on an 8-channel universe with random
//! 4-channel availability) plus frames/sec of the asynchronous engine on
//! the sparse scenario. Flags:
//!
//! * `--smoke` — tiny budgets, for CI (verifies the harness runs; the
//!   numbers are meaningless);
//! * `--seed <n>` — base seed (default `0xBE5D`);
//! * `--out <path>` — output path (default `BENCH_engines.json`).
//!
//! Regenerate the committed report on a quiet machine with:
//!
//! ```text
//! cargo run --release -p mmhew-harness --bin perf_report
//! ```

use mmhew_discovery::{AsyncAlgorithm, AsyncParams, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::{AsyncRunConfig, SyncRunConfig};
use mmhew_harness::cli::Args;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::SeedTree;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ScenarioReport {
    name: &'static str,
    engine: &'static str,
    nodes: usize,
    universe: u16,
    /// Slots (sync) or frames summed over nodes (async) executed.
    work_units: u64,
    unit: &'static str,
    elapsed_secs: f64,
    throughput_per_sec: f64,
    deliveries: u64,
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    mode: &'static str,
    seed: u64,
    scenarios: Vec<ScenarioReport>,
    regenerate: &'static str,
}

fn sparse(seed: SeedTree) -> Network {
    NetworkBuilder::grid(8, 8)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("sparse"))
        .expect("build sparse network")
}

fn dense(seed: SeedTree) -> Network {
    NetworkBuilder::complete(64)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("dense"))
        .expect("build dense network")
}

fn measure_sync(name: &'static str, net: &Network, slots: u64, seed: SeedTree) -> ScenarioReport {
    let delta = net.max_degree().max(1) as u64;
    let alg = SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive delta"));
    let start = Instant::now();
    let out = Scenario::sync(net, alg)
        .config(SyncRunConfig::fixed(slots))
        .run(seed)
        .expect("sync run");
    let elapsed = start.elapsed().as_secs_f64();
    ScenarioReport {
        name,
        engine: "sync",
        nodes: net.node_count(),
        universe: net.universe_size(),
        work_units: out.slots_executed(),
        unit: "slots",
        elapsed_secs: elapsed,
        throughput_per_sec: out.slots_executed() as f64 / elapsed.max(f64::EPSILON),
        deliveries: out.deliveries(),
    }
}

fn measure_async(name: &'static str, net: &Network, frames: u64, seed: SeedTree) -> ScenarioReport {
    let delta = net.max_degree().max(1) as u64;
    let alg = AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive delta"));
    let config = AsyncRunConfig {
        stop_when_complete: false,
        ..AsyncRunConfig::until_complete(frames)
    };
    let start = Instant::now();
    let out = Scenario::asynchronous(net, alg)
        .config(config)
        .run(seed)
        .expect("async run");
    let elapsed = start.elapsed().as_secs_f64();
    let total_frames: u64 = out.frames_executed().iter().sum();
    ScenarioReport {
        name,
        engine: "async",
        nodes: net.node_count(),
        universe: net.universe_size(),
        work_units: total_frames,
        unit: "frames",
        elapsed_secs: elapsed,
        throughput_per_sec: total_frames as f64 / elapsed.max(f64::EPSILON),
        deliveries: out.deliveries(),
    }
}

fn main() {
    let args = Args::parse().unwrap_or_else(|e| {
        eprintln!("perf_report: {e}");
        std::process::exit(2);
    });
    args.expect_only(&["seed", "out"], &["smoke"])
        .unwrap_or_else(|e| {
            eprintln!("perf_report: {e}");
            std::process::exit(2);
        });
    let smoke = args.flag("smoke");
    let seed = args.get_or("seed", 0xBE5Du64).unwrap_or_else(|e| {
        eprintln!("perf_report: {e}");
        std::process::exit(2);
    });
    let out_path = args.raw("out").unwrap_or("BENCH_engines.json").to_string();
    let tree = SeedTree::new(seed);
    let (sparse_slots, dense_slots, async_frames) = if smoke {
        (200, 100, 50)
    } else {
        (20_000, 4_000, 5_000)
    };

    let sparse_net = sparse(tree.branch("net"));
    let dense_net = dense(tree.branch("net"));
    let scenarios = vec![
        measure_sync(
            "sparse_grid_8x8",
            &sparse_net,
            sparse_slots,
            tree.branch("sync-sparse"),
        ),
        measure_sync(
            "dense_complete_64",
            &dense_net,
            dense_slots,
            tree.branch("sync-dense"),
        ),
        measure_async(
            "sparse_grid_8x8",
            &sparse_net,
            async_frames,
            tree.branch("async-sparse"),
        ),
    ];
    for s in &scenarios {
        println!(
            "{:>18} [{}] {:>8} {}: {:.2}s -> {:.0} {}/sec ({} deliveries)",
            s.name,
            s.engine,
            s.work_units,
            s.unit,
            s.elapsed_secs,
            s.throughput_per_sec,
            s.unit,
            s.deliveries
        );
    }
    let report = Report {
        schema: "mmhew-perf-report/v1",
        mode: if smoke { "smoke" } else { "full" },
        seed,
        scenarios,
        regenerate: "cargo run --release -p mmhew-harness --bin perf_report",
    };
    let json = mmhew_obs::json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").unwrap_or_else(|e| {
        eprintln!("perf_report: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
