//! `perf_report` — engine throughput on the canonical sparse/dense
//! scenarios, written as `BENCH_engines.json`.
//!
//! Measures wall-clock slots/sec of the synchronous engine (sparse 8×8
//! grid and dense complete-64, both on an 8-channel universe with random
//! 4-channel availability) plus frames/sec of the asynchronous engine on
//! the sparse scenario, plus the low-ρ pair `sparse_low_rho_256` (a
//! 16×16 grid at Δ̂ = 2048, roughly one transmission-bearing slot in
//! sixteen) run through both the slotted oracle (`engine: "sync"`) and
//! the dead-air-skipping event executor (`engine: "sync-event"`) at the
//! same seed, plus the scale pair `million_node` (a 100 000-node
//! unit-disk network over the CSR/bitset topology storage, both
//! executors) that CI's `scale-smoke` job drives for 200 slots. Flags:
//!
//! * `--smoke` — tiny budgets, for CI (verifies the harness runs; the
//!   numbers are meaningless);
//! * `--seed <n>` — base seed (default `0xBE5D`);
//! * `--out <path>` — output path (default `BENCH_engines.json`);
//! * `--check` — validate the shape of an existing report at `--out`
//!   instead of measuring. Accepts the documented `null` placeholders
//!   (`work_units`, `elapsed_secs`, `throughput_per_sec`, `deliveries`)
//!   only when `mode` is `"pending"` — a report awaiting regeneration on
//!   a machine that can build — and exits nonzero on anything malformed.
//!   A measured `full` report carrying both `sparse_low_rho_256` rows
//!   must additionally show event throughput ≥ slotted throughput
//!   (smoke budgets are too small for stable ratios, so `smoke` reports
//!   are exempt from the ordering, not from the shape checks).
//!
//! Regenerate the committed report on a quiet machine with:
//!
//! ```text
//! cargo run --release -p mmhew-harness --bin perf_report
//! ```

use mmhew_discovery::{AsyncAlgorithm, AsyncParams, Engine, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::{AsyncRunConfig, SyncRunConfig};
use mmhew_harness::cli::Args;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::SeedTree;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ScenarioReport {
    name: &'static str,
    engine: &'static str,
    nodes: usize,
    universe: u16,
    /// Slots (sync) or frames summed over nodes (async) executed.
    work_units: u64,
    unit: &'static str,
    elapsed_secs: f64,
    throughput_per_sec: f64,
    deliveries: u64,
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    mode: &'static str,
    seed: u64,
    scenarios: Vec<ScenarioReport>,
    regenerate: &'static str,
}

fn sparse(seed: SeedTree) -> Network {
    NetworkBuilder::grid(8, 8)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("sparse"))
        .expect("build sparse network")
}

fn dense(seed: SeedTree) -> Network {
    NetworkBuilder::complete(64)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("dense"))
        .expect("build dense network")
}

/// Inflated degree estimate for the low-ρ scenario: Algorithm 3 transmits
/// with probability ≈ 1/(2Δ̂), so Δ̂ = 2048 over 256 nodes leaves roughly
/// one slot in sixteen with any transmission at all — the dead-air regime
/// the event executor targets.
const LOW_RHO_DELTA_EST: u64 = 2_048;

fn sparse_low_rho(seed: SeedTree) -> Network {
    NetworkBuilder::grid(16, 16)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("low-rho"))
        .expect("build low-rho network")
}

/// One `sparse_low_rho_256` row. Both executors run the identical
/// scenario at the identical seed, so their `deliveries` must agree —
/// the throughput columns are the only thing allowed to differ.
fn measure_low_rho(executor: Engine, net: &Network, slots: u64, seed: SeedTree) -> ScenarioReport {
    let alg = SyncAlgorithm::Uniform(SyncParams::new(LOW_RHO_DELTA_EST).expect("positive delta"));
    let start = Instant::now();
    let out = Scenario::sync(net, alg)
        .config(SyncRunConfig::fixed(slots))
        .engine(executor)
        .run(seed)
        .expect("sync run");
    let elapsed = start.elapsed().as_secs_f64();
    ScenarioReport {
        name: "sparse_low_rho_256",
        engine: match executor {
            Engine::Slotted => "sync",
            Engine::Event => "sync-event",
        },
        nodes: net.node_count(),
        universe: net.universe_size(),
        work_units: out.slots_executed(),
        unit: "slots",
        elapsed_secs: elapsed,
        throughput_per_sec: out.slots_executed() as f64 / elapsed.max(f64::EPSILON),
        deliveries: out.deliveries(),
    }
}

/// The scale scenario behind CI's `scale-smoke` job: 100 000 nodes on a
/// unit disk sized for a mean degree around ten — five orders of
/// magnitude, exercising CSR construction (counting-sort mirror
/// included), the flat availability arena, and the slot loop's slice
/// carves at a size where any pointer-heavy regression is unmissable.
const SCALE_NODES: usize = 100_000;

fn million_node(seed: SeedTree) -> Network {
    // Mean degree ≈ n·π·r²/side²: side 1000, r 5.6 → ≈ 9.9.
    NetworkBuilder::unit_disk(SCALE_NODES, 1_000.0, 5.6)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("million"))
        .expect("build scale network")
}

/// One `million_node` row. As with the low-ρ pair, both executors run
/// the identical scenario at the identical seed, so equal `deliveries`
/// columns are a free byte-identity cross-check at scale.
fn measure_scale(executor: Engine, net: &Network, slots: u64, seed: SeedTree) -> ScenarioReport {
    let delta = net.max_degree().max(1) as u64;
    let alg = SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive delta"));
    let start = Instant::now();
    let out = Scenario::sync(net, alg)
        .config(SyncRunConfig::fixed(slots))
        .engine(executor)
        .run(seed)
        .expect("sync run");
    let elapsed = start.elapsed().as_secs_f64();
    ScenarioReport {
        name: "million_node",
        engine: match executor {
            Engine::Slotted => "sync",
            Engine::Event => "sync-event",
        },
        nodes: net.node_count(),
        universe: net.universe_size(),
        work_units: out.slots_executed(),
        unit: "slots",
        elapsed_secs: elapsed,
        throughput_per_sec: out.slots_executed() as f64 / elapsed.max(f64::EPSILON),
        deliveries: out.deliveries(),
    }
}

fn measure_sync(name: &'static str, net: &Network, slots: u64, seed: SeedTree) -> ScenarioReport {
    let delta = net.max_degree().max(1) as u64;
    let alg = SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive delta"));
    let start = Instant::now();
    let out = Scenario::sync(net, alg)
        .config(SyncRunConfig::fixed(slots))
        .run(seed)
        .expect("sync run");
    let elapsed = start.elapsed().as_secs_f64();
    ScenarioReport {
        name,
        engine: "sync",
        nodes: net.node_count(),
        universe: net.universe_size(),
        work_units: out.slots_executed(),
        unit: "slots",
        elapsed_secs: elapsed,
        throughput_per_sec: out.slots_executed() as f64 / elapsed.max(f64::EPSILON),
        deliveries: out.deliveries(),
    }
}

fn measure_async(name: &'static str, net: &Network, frames: u64, seed: SeedTree) -> ScenarioReport {
    let delta = net.max_degree().max(1) as u64;
    let alg = AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive delta"));
    let config = AsyncRunConfig {
        stop_when_complete: false,
        ..AsyncRunConfig::until_complete(frames)
    };
    let start = Instant::now();
    let out = Scenario::asynchronous(net, alg)
        .config(config)
        .run(seed)
        .expect("async run");
    let elapsed = start.elapsed().as_secs_f64();
    let total_frames: u64 = out.frames_executed().iter().sum();
    ScenarioReport {
        name,
        engine: "async",
        nodes: net.node_count(),
        universe: net.universe_size(),
        work_units: total_frames,
        unit: "frames",
        elapsed_secs: elapsed,
        throughput_per_sec: total_frames as f64 / elapsed.max(f64::EPSILON),
        deliveries: out.deliveries(),
    }
}

/// Validates the shape of an existing `BENCH_engines.json`.
///
/// The measurement fields may be `null` only in a `mode: "pending"`
/// report (committed from an environment that could not build and run
/// the benchmark); in `full`/`smoke` reports every number must be a
/// finite non-negative value.
fn check_report(text: &str) -> Result<(), String> {
    use mmhew_obs::value::{parse, Value};
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let str_field = |key: &str| -> Result<&str, String> {
        doc.get(key)
            .and_then(Value::as_str)
            .ok_or(format!("field {key:?} missing or not a string"))
    };
    let schema = str_field("schema")?;
    if schema != "mmhew-perf-report/v1" {
        return Err(format!(
            "schema {schema:?} (expected \"mmhew-perf-report/v1\")"
        ));
    }
    let mode = str_field("mode")?;
    if !["full", "smoke", "pending"].contains(&mode) {
        return Err(format!(
            "mode {mode:?} (expected \"full\", \"smoke\", or \"pending\")"
        ));
    }
    let pending = mode == "pending";
    doc.get("seed")
        .and_then(Value::as_u64)
        .ok_or("field \"seed\" missing or not an integer")?;
    str_field("regenerate")?;
    let scenarios = doc
        .get("scenarios")
        .and_then(Value::as_arr)
        .ok_or("field \"scenarios\" missing or not an array")?;
    if scenarios.is_empty() {
        return Err("\"scenarios\" is empty".to_string());
    }
    for (i, s) in scenarios.iter().enumerate() {
        let at = |key: &str, want: &str| format!("scenarios[{i}].{key}: expected {want}");
        let strv = |key: &str| s.get(key).and_then(Value::as_str);
        strv("name").ok_or(at("name", "a string"))?;
        let engine = strv("engine").ok_or(at("engine", "a string"))?;
        if !["sync", "sync-event", "async"].contains(&engine) {
            return Err(at("engine", "\"sync\", \"sync-event\", or \"async\""));
        }
        let unit = strv("unit").ok_or(at("unit", "a string"))?;
        if !["slots", "frames"].contains(&unit) {
            return Err(at("unit", "\"slots\" or \"frames\""));
        }
        for key in ["nodes", "universe"] {
            s.get(key)
                .and_then(Value::as_u64)
                .filter(|n| *n > 0)
                .ok_or(at(key, "a positive integer"))?;
        }
        for key in [
            "work_units",
            "elapsed_secs",
            "throughput_per_sec",
            "deliveries",
        ] {
            match s.get(key) {
                Some(Value::Null) if pending => {}
                Some(Value::Null) => {
                    return Err(format!(
                        "scenarios[{i}].{key} is null, which only a \
                         mode \"pending\" report may contain (this one is {mode:?})"
                    ));
                }
                Some(v) if v.as_f64().is_some_and(|x| x.is_finite() && x >= 0.0) => {}
                _ => {
                    return Err(at(
                        key,
                        "a finite non-negative number (or null when pending)",
                    ))
                }
            }
        }
    }
    // A fully measured report carrying the low-ρ pair must show the event
    // executor at least matching the slotted oracle — that throughput win
    // is the fast path's reason to exist. Smoke budgets are far too small
    // for stable ratios, so only `full` reports are held to the ordering.
    if mode == "full" {
        let low_rho_throughput = |engine: &str| {
            scenarios
                .iter()
                .find(|s| {
                    s.get("name").and_then(Value::as_str) == Some("sparse_low_rho_256")
                        && s.get("engine").and_then(Value::as_str) == Some(engine)
                })
                .and_then(|s| s.get("throughput_per_sec"))
                .and_then(Value::as_f64)
        };
        if let (Some(slotted), Some(event)) =
            (low_rho_throughput("sync"), low_rho_throughput("sync-event"))
        {
            if event < slotted {
                return Err(format!(
                    "sparse_low_rho_256: event throughput ({event:.0} slots/sec) below \
                     slotted ({slotted:.0} slots/sec) — the dead-air fast path regressed"
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let args = Args::parse().unwrap_or_else(|e| {
        eprintln!("perf_report: {e}");
        std::process::exit(2);
    });
    args.expect_only(&["seed", "out"], &["smoke", "check"])
        .unwrap_or_else(|e| {
            eprintln!("perf_report: {e}");
            std::process::exit(2);
        });
    if args.flag("check") {
        let path = args.raw("out").unwrap_or("BENCH_engines.json");
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_report: cannot read {path}: {e}");
            std::process::exit(1);
        });
        match check_report(&text) {
            Ok(()) => {
                println!("{path}: valid mmhew-perf-report/v1");
                return;
            }
            Err(e) => {
                eprintln!("perf_report: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.flag("smoke");
    let seed = args.get_or("seed", 0xBE5Du64).unwrap_or_else(|e| {
        eprintln!("perf_report: {e}");
        std::process::exit(2);
    });
    let out_path = args.raw("out").unwrap_or("BENCH_engines.json").to_string();
    let tree = SeedTree::new(seed);
    let (sparse_slots, dense_slots, async_frames, low_rho_slots, scale_slots) = if smoke {
        (200, 100, 50, 500, 200)
    } else {
        (20_000, 4_000, 5_000, 50_000, 1_000)
    };

    let sparse_net = sparse(tree.branch("net"));
    let dense_net = dense(tree.branch("net"));
    let low_rho_net = sparse_low_rho(tree.branch("net"));
    let scale_net = million_node(tree.branch("net"));
    let scenarios = vec![
        measure_sync(
            "sparse_grid_8x8",
            &sparse_net,
            sparse_slots,
            tree.branch("sync-sparse"),
        ),
        measure_sync(
            "dense_complete_64",
            &dense_net,
            dense_slots,
            tree.branch("sync-dense"),
        ),
        measure_async(
            "sparse_grid_8x8",
            &sparse_net,
            async_frames,
            tree.branch("async-sparse"),
        ),
        // Same seed for both executors: byte-identity makes the
        // deliveries columns a free cross-check on the fast path.
        measure_low_rho(
            Engine::Slotted,
            &low_rho_net,
            low_rho_slots,
            tree.branch("sync-low-rho"),
        ),
        measure_low_rho(
            Engine::Event,
            &low_rho_net,
            low_rho_slots,
            tree.branch("sync-low-rho"),
        ),
        measure_scale(
            Engine::Slotted,
            &scale_net,
            scale_slots,
            tree.branch("sync-scale"),
        ),
        measure_scale(
            Engine::Event,
            &scale_net,
            scale_slots,
            tree.branch("sync-scale"),
        ),
    ];
    for s in &scenarios {
        println!(
            "{:>18} [{}] {:>8} {}: {:.2}s -> {:.0} {}/sec ({} deliveries)",
            s.name,
            s.engine,
            s.work_units,
            s.unit,
            s.elapsed_secs,
            s.throughput_per_sec,
            s.unit,
            s.deliveries
        );
    }
    let report = Report {
        schema: "mmhew-perf-report/v1",
        mode: if smoke { "smoke" } else { "full" },
        seed,
        scenarios,
        regenerate: "cargo run --release -p mmhew-harness --bin perf_report",
    };
    let json = mmhew_obs::json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").unwrap_or_else(|e| {
        eprintln!("perf_report: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}

#[cfg(test)]
mod tests {
    use super::check_report;

    fn scenario(mode: &str, elapsed: &str) -> String {
        format!(
            "{{\"schema\":\"mmhew-perf-report/v1\",\"mode\":\"{mode}\",\"seed\":1,\
             \"scenarios\":[{{\"name\":\"s\",\"engine\":\"sync\",\"nodes\":64,\
             \"universe\":8,\"work_units\":100,\"unit\":\"slots\",\
             \"elapsed_secs\":{elapsed},\"throughput_per_sec\":10.0,\
             \"deliveries\":5}}],\
             \"regenerate\":\"cargo run --release -p mmhew-harness --bin perf_report\"}}"
        )
    }

    #[test]
    fn accepts_measured_and_pending_reports() {
        assert_eq!(check_report(&scenario("full", "1.5")), Ok(()));
        assert_eq!(check_report(&scenario("smoke", "0.01")), Ok(()));
        // Pending reports may carry the documented null placeholders.
        assert_eq!(check_report(&scenario("pending", "null")), Ok(()));
    }

    #[test]
    fn rejects_nulls_outside_pending_mode() {
        let err = check_report(&scenario("full", "null")).expect_err("must fail");
        assert!(err.contains("null"), "{err}");
    }

    fn low_rho_pair(mode: &str, slotted_tp: &str, event_tp: &str) -> String {
        let row = |engine: &str, tp: &str| {
            format!(
                "{{\"name\":\"sparse_low_rho_256\",\"engine\":\"{engine}\",\
                 \"nodes\":256,\"universe\":8,\"work_units\":100,\"unit\":\"slots\",\
                 \"elapsed_secs\":1.0,\"throughput_per_sec\":{tp},\"deliveries\":5}}"
            )
        };
        format!(
            "{{\"schema\":\"mmhew-perf-report/v1\",\"mode\":\"{mode}\",\"seed\":1,\
             \"scenarios\":[{},{}],\
             \"regenerate\":\"cargo run --release -p mmhew-harness --bin perf_report\"}}",
            row("sync", slotted_tp),
            row("sync-event", event_tp)
        )
    }

    #[test]
    fn low_rho_ordering_enforced_on_full_reports_only() {
        assert_eq!(
            check_report(&low_rho_pair("full", "100.0", "250.0")),
            Ok(())
        );
        let err = check_report(&low_rho_pair("full", "250.0", "100.0")).expect_err("must fail");
        assert!(err.contains("fast path"), "{err}");
        // Smoke budgets are jitter-dominated, so the ordering is waived there,
        // and pending rows carry nulls, so there is nothing to compare.
        assert_eq!(
            check_report(&low_rho_pair("smoke", "250.0", "100.0")),
            Ok(())
        );
        assert_eq!(
            check_report(&low_rho_pair("pending", "null", "null")),
            Ok(())
        );
    }

    #[test]
    fn rejects_malformed_reports() {
        assert!(check_report("not json").is_err());
        assert!(check_report("{}").is_err());
        let wrong_schema = scenario("full", "1.0").replace("/v1", "/v9");
        assert!(check_report(&wrong_schema).unwrap_err().contains("schema"));
        let bad_engine = scenario("full", "1.0").replace("\"sync\"", "\"warp\"");
        assert!(check_report(&bad_engine).unwrap_err().contains("engine"));
        let negative = scenario("full", "-2.0");
        assert!(check_report(&negative)
            .unwrap_err()
            .contains("elapsed_secs"));
    }

    #[test]
    fn committed_report_shape_is_accepted() {
        // The repo's own BENCH_engines.json (wherever the test runs from,
        // walk up to the workspace root) must pass its own checker.
        let mut dir = std::env::current_dir().expect("cwd");
        loop {
            let candidate = dir.join("BENCH_engines.json");
            if candidate.exists() {
                let text = std::fs::read_to_string(&candidate).expect("read");
                assert_eq!(check_report(&text), Ok(()), "{}", candidate.display());
                // The committed report must carry the low-ρ pair so the
                // event-vs-slotted comparison survives regeneration.
                assert!(text.contains("sparse_low_rho_256"), "low-ρ rows missing");
                assert!(text.contains("sync-event"), "event-engine row missing");
                return;
            }
            if !dir.pop() {
                panic!(
                    "BENCH_engines.json not found above {:?}",
                    std::env::current_dir()
                );
            }
        }
    }
}
