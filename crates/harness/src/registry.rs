//! Registry mapping experiment ids to their run functions.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments;

/// Signature of every experiment entry point.
pub type ExperimentFn = fn(Effort, u64) -> ExperimentReport;

/// All experiments in presentation order.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("E1", experiments::e1_n_scaling::run as ExperimentFn),
        ("E2", experiments::e2_dest_scaling::run),
        ("E3", experiments::e3_s_delta::run),
        ("E4", experiments::e4_adaptive::run),
        ("E5", experiments::e5_uniform::run),
        ("E6", experiments::e6_variable_start::run),
        ("E7", experiments::e7_rho::run),
        ("E8", experiments::e8_epsilon::run),
        ("E9", experiments::e9_frame_lemmas::run),
        ("E10", experiments::e10_async::run),
        ("E11", experiments::e11_baseline::run),
        ("E12", experiments::e12_asymmetric::run),
        ("E13", experiments::e13_unreliable::run),
        ("E14", experiments::e14_propagation::run),
        ("E15", experiments::e15_energy::run),
        ("E16", experiments::e16_burst_plan::run),
        ("E17", experiments::e17_growth::run),
        ("E18", experiments::e18_termination::run),
        ("E19", experiments::e19_exact_probability::run),
        ("E20", experiments::e20_contention::run),
        ("E21", experiments::e21_join_rediscovery::run),
        ("E22", experiments::e22_churn_staleness::run),
        ("E23", experiments::e23_spectrum_churn::run),
        ("E24", experiments::e24_bursty_loss::run),
        ("E25", experiments::e25_jamming::run),
        ("E26", experiments::e26_robust_repetition::run),
        ("E27", experiments::e27_rivals_completion::run),
        ("E28", experiments::e28_rivals_adversity::run),
        ("E29", experiments::e29_rivals_churn::run),
        ("F-CDF", experiments::f_cdf::run),
    ]
}

/// Looks up one experiment by id (case-insensitive).
pub fn by_id(id: &str) -> Option<ExperimentFn> {
    all()
        .into_iter()
        .find(|(eid, _)| eid.eq_ignore_ascii_case(id))
        .map(|(_, f)| f)
}

/// Standard main body for the per-experiment binaries: parses
/// `--quick`/`--full`/`--jobs <n>`/`--seed <n>`/`--csv <path>` through
/// the shared [`crate::cli`] parser (anything else is rejected as a
/// misspelling), runs the experiment and prints the report.
///
/// # Panics
///
/// Panics if `id` is unknown or CSV writing fails.
pub fn run_binary(id: &str) {
    let f = by_id(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    let (args, jobs, seed) = match crate::cli::Args::parse().and_then(|a| {
        a.expect_only(&["seed", "csv"], &[])?;
        let jobs = a.jobs()?;
        let seed = a.get_or("seed", 20_260_706u64)?;
        Ok((a, jobs, seed))
    }) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{id}: {e}");
            eprintln!("usage: [--quick|--full] [--jobs N] [--seed N] [--csv PATH]");
            std::process::exit(2);
        }
    };
    if let Some(jobs) = jobs {
        crate::sweep::set_jobs(jobs);
    }
    let report = f(args.effort(), seed);
    report.print();
    if let Some(path) = args.raw("csv") {
        report
            .write_csv(std::path::Path::new(path))
            .expect("failed to write CSV");
        println!("csv written to {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        // Structural rather than a hard-coded count: ids must be unique,
        // and every numbered experiment from E1 up to the highest
        // registered number must be present (no gaps).
        let entries = all();
        let ids: std::collections::HashSet<&str> = entries.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), entries.len(), "duplicate experiment id");
        let highest = entries
            .iter()
            .filter_map(|(id, _)| id.strip_prefix('E').and_then(|n| n.parse::<u32>().ok()))
            .max()
            .expect("numbered experiments exist");
        for k in 1..=highest {
            assert!(
                ids.contains(format!("E{k}").as_str()),
                "gap in experiment numbering at E{k}"
            );
        }
        assert!(highest >= 29, "E27-E29 must be registered");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_id("e1").is_some());
        assert!(by_id("E10").is_some());
        assert!(by_id("f-cdf").is_some());
        assert!(by_id("E99").is_none());
    }
}
