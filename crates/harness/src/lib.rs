//! Experiment harness reproducing the paper's analytical results by
//! simulation.
//!
//! The ICDCS 2011 paper is analysis-only — its "evaluation" is Theorems
//! 1–3 and 9–10 plus Lemmas 4–8. This crate turns each into a measurable
//! experiment (see `DESIGN.md` §5 for the full index) and provides:
//!
//! * [`experiments`] — E1–E23 and F-CDF, each returning a structured
//!   [`ExperimentReport`];
//! * [`registry`] — id → experiment lookup plus the shared binary `main`
//!   body ([`registry::run_binary`]);
//! * [`Table`]/[`ExperimentReport`] — aligned-text, markdown and CSV
//!   rendering;
//! * [`parallel_reps`] — order-preserving, seed-deterministic parallel
//!   repetition.
//!
//! Run everything: `cargo run -p mmhew-harness --release --bin run_all`
//! (add `--full` for the EXPERIMENTS.md-sized sweeps).

pub mod cli;
pub mod experiment;
pub mod experiments;
pub mod plot;
pub mod registry;
pub mod sweep;
pub mod table;

pub use experiment::{Effort, ExperimentReport};
pub use plot::AsciiPlot;
pub use sweep::{parallel_reps, reps_completed, set_jobs};
pub use table::{fmt_f64, Table};
