//! Experiment reports: structured output of one reproduction experiment.

use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// How much compute an experiment run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effort {
    /// Few repetitions, small networks — seconds per experiment; used by
    /// CI and the default harness binaries.
    Quick,
    /// More repetitions and larger sweeps — for the recorded
    /// EXPERIMENTS.md numbers.
    Full,
}

impl Effort {
    /// Picks `quick` or `full` depending on the effort level.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }

    /// Parses `--quick`/`--full` style command-line arguments (defaults to
    /// quick).
    #[deprecated(note = "parse cli::Args and use Args::effort, which also validates flags")]
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Effort::Full
        } else {
            Effort::Quick
        }
    }
}

/// The result of one experiment: identification, the data table, and
/// interpretation notes (what shape the paper predicts and what was seen).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id (e.g. "E1").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Which paper result it validates.
    pub validates: String,
    /// The data.
    pub table: Table,
    /// Free-form observations appended below the table.
    pub notes: Vec<String>,
    /// Rendered figures (title, pre-rendered body) appended after the
    /// notes.
    pub figures: Vec<(String, String)>,
}

impl ExperimentReport {
    /// Creates a report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        validates: impl Into<String>,
        table: Table,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            validates: validates.into(),
            table,
            notes: Vec::new(),
            figures: Vec::new(),
        }
    }

    /// Appends an observation note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Appends a pre-rendered figure (e.g. an [`crate::AsciiPlot`]).
    pub fn figure(&mut self, title: impl Into<String>, body: impl Into<String>) {
        self.figures.push((title.into(), body.into()));
    }

    /// Renders the full report as plain text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {}: {} ===\n", self.id, self.title));
        out.push_str(&format!("validates: {}\n\n", self.validates));
        out.push_str(&self.table.render_text());
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        for (title, body) in &self.figures {
            out.push_str(&format!("\n[{title}]\n{body}"));
        }
        out
    }

    /// Renders as a markdown section (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}: {}\n\n", self.id, self.title));
        out.push_str(&format!("*Validates: {}*\n\n", self.validates));
        out.push_str(&self.table.render_markdown());
        out.push('\n');
        for note in &self.notes {
            out.push_str(&format!("- {note}\n"));
        }
        for (title, body) in &self.figures {
            out.push_str(&format!("\n**{title}**\n\n```text\n{body}```\n"));
        }
        out
    }

    /// Prints the text rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.render_text());
    }

    /// Writes the table as CSV to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.table.render_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExperimentReport {
        let mut t = Table::new(vec!["x".into(), "y".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        let mut r = ExperimentReport::new("E1", "scaling in N", "Theorem 1", t);
        r.note("log-shaped as predicted");
        r
    }

    #[test]
    fn text_rendering_contains_everything() {
        let text = report().render_text();
        assert!(text.contains("E1"));
        assert!(text.contains("Theorem 1"));
        assert!(text.contains("note: log-shaped"));
    }

    #[test]
    fn markdown_rendering() {
        let md = report().render_markdown();
        assert!(md.starts_with("### E1"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("- log-shaped"));
    }

    #[test]
    fn csv_round_trip_via_tempfile() {
        let dir = std::env::temp_dir().join("mmhew-test-csv");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("e1.csv");
        report().write_csv(&path).expect("write");
        let content = std::fs::read_to_string(&path).expect("read");
        assert!(content.starts_with("x,y"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn figures_are_rendered_in_both_formats() {
        let mut r = report();
        r.figure("shape", "*  *\n  *\n");
        let text = r.render_text();
        assert!(text.contains("[shape]"));
        assert!(text.contains("*  *"));
        let md = r.render_markdown();
        assert!(md.contains("**shape**"));
        assert!(md.contains("```text"));
    }

    #[test]
    fn effort_pick() {
        assert_eq!(Effort::Quick.pick(1, 2), 1);
        assert_eq!(Effort::Full.pick(1, 2), 2);
    }
}
