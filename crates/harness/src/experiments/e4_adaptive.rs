//! E4 — Theorem 2: the cost of not knowing the degree.
//!
//! The same networks are solved by Algorithm 1 with the *exact* degree as
//! its estimate and by Algorithm 2 with no knowledge at all. Theorem 2
//! predicts the adaptive algorithm pays an `O(M log M)`-vs-`O(M log Δ)`
//! overhead: it must climb its estimate from 2 up past `Δ`, and its late
//! stages are long. The overhead ratio should stay moderate on
//! small-degree networks and grow with `Δ`.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::SeedTree;

const EPSILON: f64 = 0.01;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e4");
    let reps = effort.pick(8, 30);

    let nets: Vec<(&str, Network)> = vec![
        (
            "ring16",
            NetworkBuilder::ring(16)
                .universe(4)
                .build(seed.branch("ring"))
                .expect("valid"),
        ),
        (
            "grid4x4",
            NetworkBuilder::grid(4, 4)
                .universe(4)
                .build(seed.branch("grid"))
                .expect("valid"),
        ),
        (
            "complete8",
            NetworkBuilder::complete(8)
                .universe(4)
                .build(seed.branch("complete"))
                .expect("valid"),
        ),
        (
            "star12",
            NetworkBuilder::star(12)
                .universe(4)
                .build(seed.branch("star"))
                .expect("valid"),
        ),
    ];

    let mut table = Table::new(
        [
            "network",
            "Δ",
            "Alg1 slots (exact Δ)",
            "Alg2 slots (no knowledge)",
            "overhead",
            "Thm2 bound",
        ]
        .map(String::from)
        .to_vec(),
    );

    for (name, net) in &nets {
        let delta = net.max_degree().max(1) as u64;
        let bounds = Bounds::from_network(net, delta, EPSILON);
        let budget = (bounds.theorem2_slots().ceil() as u64 * 4).max(10_000);
        let informed = measure_sync(
            net,
            SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(budget),
            reps,
            seed.branch("alg1").branch(name),
        );
        let adaptive = measure_sync(
            net,
            SyncAlgorithm::Adaptive,
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(budget),
            reps,
            seed.branch("alg2").branch(name),
        );
        let a1 = informed.summary().mean;
        let a2 = adaptive.summary().mean;
        table.push_row(vec![
            (*name).into(),
            delta.to_string(),
            fmt_f64(a1),
            fmt_f64(a2),
            fmt_f64(a2 / a1.max(1e-9)),
            fmt_f64(bounds.theorem2_slots()),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E4",
        "Algorithm 2 (no degree knowledge) vs Algorithm 1 (exact degree)",
        "Theorem 2: O(M log M) without knowledge vs O(M log Δ_est) with",
        table,
    );
    report.note("the overhead column is the multiplicative price of estimating the degree online");
    report.note(format!("ε={EPSILON}, reps={reps}, identical start times"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 2);
        assert_eq!(r.table.len(), 4);
        for row in r.table.rows() {
            let a1: f64 = row[2].parse().expect("alg1");
            let a2: f64 = row[3].parse().expect("alg2");
            assert!(a1 > 0.0 && a2 > 0.0);
        }
    }
}
