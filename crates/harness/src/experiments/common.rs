//! Shared measurement helpers for the experiment suite.

use crate::sweep::parallel_reps;
use mmhew_discovery::{AsyncAlgorithm, Scenario, SyncAlgorithm};
use mmhew_engine::{AsyncRunConfig, EnergyModel, FaultPlan, StartSchedule, SyncRunConfig};
use mmhew_rivals::ProtocolKind;
use mmhew_topology::Network;
use mmhew_util::{SeedTree, Summary};

/// Aggregated completion statistics of repeated synchronous runs.
#[derive(Debug, Clone)]
pub struct SyncMeasurement {
    /// Slots from `T_s` to completion, one entry per *completed* rep.
    pub slots: Vec<f64>,
    /// Repetitions that did not complete within the budget.
    pub failures: u64,
    /// Total repetitions.
    pub reps: u64,
}

impl SyncMeasurement {
    /// Summary over the completed repetitions.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(&self.slots)
    }

    /// Fraction of repetitions that failed to complete.
    pub fn failure_rate(&self) -> f64 {
        if self.reps == 0 {
            0.0
        } else {
            self.failures as f64 / self.reps as f64
        }
    }
}

/// Runs `reps` seeded repetitions of a synchronous discovery and collects
/// completion times (slots after the latest start).
pub fn measure_sync(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: &StartSchedule,
    config: SyncRunConfig,
    reps: u64,
    seed: SeedTree,
) -> SyncMeasurement {
    let outcomes = parallel_reps(reps, seed, |_rep, rep_seed| {
        Scenario::sync(network, algorithm)
            .starts(starts.clone())
            .config(config)
            .run(rep_seed)
            .expect("protocol construction failed")
            .slots_to_complete()
    });
    let slots: Vec<f64> = outcomes.iter().flatten().map(|&s| s as f64).collect();
    let failures = outcomes.iter().filter(|o| o.is_none()).count() as u64;
    SyncMeasurement {
        slots,
        failures,
        reps,
    }
}

/// Like [`measure_sync`], but every repetition runs under a clone of the
/// given [`FaultPlan`].
pub fn measure_sync_faulted(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: &StartSchedule,
    faults: &FaultPlan,
    config: SyncRunConfig,
    reps: u64,
    seed: SeedTree,
) -> SyncMeasurement {
    let outcomes = parallel_reps(reps, seed, |_rep, rep_seed| {
        Scenario::sync(network, algorithm)
            .starts(starts.clone())
            .with_faults(faults.clone())
            .config(config)
            .run(rep_seed)
            .expect("protocol construction failed")
            .slots_to_complete()
    });
    let slots: Vec<f64> = outcomes.iter().flatten().map(|&s| s as f64).collect();
    let failures = outcomes.iter().filter(|o| o.is_none()).count() as u64;
    SyncMeasurement {
        slots,
        failures,
        reps,
    }
}

/// Like [`measure_sync_faulted`], but wraps every node in a
/// [`mmhew_discovery::RobustDiscovery`] with the given repetition factor.
#[allow(clippy::too_many_arguments)]
pub fn measure_sync_robust(
    network: &Network,
    algorithm: SyncAlgorithm,
    repetition: u64,
    starts: &StartSchedule,
    faults: &FaultPlan,
    config: SyncRunConfig,
    reps: u64,
    seed: SeedTree,
) -> SyncMeasurement {
    let outcomes = parallel_reps(reps, seed, |_rep, rep_seed| {
        Scenario::sync(network, algorithm)
            .robust(repetition)
            .starts(starts.clone())
            .with_faults(faults.clone())
            .config(config)
            .run(rep_seed)
            .expect("protocol construction failed")
            .slots_to_complete()
    });
    let slots: Vec<f64> = outcomes.iter().flatten().map(|&s| s as f64).collect();
    let failures = outcomes.iter().filter(|o| o.is_none()).count() as u64;
    SyncMeasurement {
        slots,
        failures,
        reps,
    }
}

/// One catalog protocol's repeated head-to-head measurement: completion
/// slots plus energy spent, with budget-exhausted repetitions counted as
/// failures (their energy still accrues over the whole budget, which is
/// exactly the "matched energy budget" comparison the rivals experiments
/// make).
#[derive(Debug, Clone)]
pub struct ProtocolMeasurement {
    /// Slots from `T_s` to completion, one entry per *completed* rep.
    pub slots: Vec<f64>,
    /// Mean per-node-per-slot energy of every repetition (completed or
    /// not), under the model passed to [`measure_protocol`].
    pub energy_per_node_slot: Vec<f64>,
    /// Repetitions that did not complete within the budget.
    pub failures: u64,
    /// Total repetitions.
    pub reps: u64,
}

impl ProtocolMeasurement {
    /// Summary over the completed repetitions' slot counts.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(&self.slots)
    }

    /// Mean energy per node per executed slot across all repetitions.
    pub fn mean_energy_rate(&self) -> f64 {
        Summary::from_samples(&self.energy_per_node_slot).mean
    }
}

/// Runs `reps` seeded repetitions of a catalog protocol (rebuilding the
/// per-node stack from its builder each repetition) and collects
/// completion times and energy rates. `faults` applies to every
/// repetition when given.
pub fn measure_protocol(
    network: &Network,
    kind: &'static ProtocolKind,
    delta_est: u64,
    faults: Option<&FaultPlan>,
    config: SyncRunConfig,
    model: &EnergyModel,
    reps: u64,
    seed: SeedTree,
) -> ProtocolMeasurement {
    let outcomes = parallel_reps(reps, seed, |_rep, rep_seed| {
        let stack = kind
            .build_sync(network, delta_est)
            .expect("catalog stack builds on non-empty channel sets");
        let mut scenario = Scenario::sync_stack(network, stack).config(config);
        if let Some(plan) = faults {
            scenario = scenario.with_faults(plan.clone());
        }
        let out = scenario.run(rep_seed).expect("scenario runs");
        let denom = (network.node_count() as u64 * out.slots_executed()).max(1) as f64;
        (out.slots_to_complete(), out.total_energy(model) / denom)
    });
    let slots: Vec<f64> = outcomes
        .iter()
        .filter_map(|(s, _)| s.map(|v| v as f64))
        .collect();
    let energy_per_node_slot: Vec<f64> = outcomes.iter().map(|(_, e)| *e).collect();
    let failures = outcomes.iter().filter(|(s, _)| s.is_none()).count() as u64;
    ProtocolMeasurement {
        slots,
        energy_per_node_slot,
        failures,
        reps,
    }
}

/// Aggregated completion statistics of repeated asynchronous runs.
#[derive(Debug, Clone)]
pub struct AsyncMeasurement {
    /// `min_full_frames_at_completion` per completed rep.
    pub frames: Vec<f64>,
    /// Real nanoseconds from `T_s` to completion per completed rep.
    pub realtime_ns: Vec<f64>,
    /// Repetitions that did not complete within the budget.
    pub failures: u64,
    /// Total repetitions.
    pub reps: u64,
}

impl AsyncMeasurement {
    /// Summary of the frame counts.
    pub fn frames_summary(&self) -> Summary {
        Summary::from_samples(&self.frames)
    }

    /// Summary of the real-time durations.
    pub fn realtime_summary(&self) -> Summary {
        Summary::from_samples(&self.realtime_ns)
    }

    /// Fraction of repetitions that failed to complete.
    pub fn failure_rate(&self) -> f64 {
        if self.reps == 0 {
            0.0
        } else {
            self.failures as f64 / self.reps as f64
        }
    }
}

/// Runs `reps` seeded repetitions of an asynchronous discovery.
pub fn measure_async(
    network: &Network,
    algorithm: AsyncAlgorithm,
    config: &AsyncRunConfig,
    reps: u64,
    seed: SeedTree,
) -> AsyncMeasurement {
    let outcomes = parallel_reps(reps, seed, |_rep, rep_seed| {
        let out = Scenario::asynchronous(network, algorithm)
            .config(config.clone())
            .run(rep_seed)
            .expect("protocol construction failed");
        out.min_full_frames_at_completion().map(|frames| {
            let wall = out
                .completion_time()
                .expect("complete")
                .saturating_duration_since(out.latest_start());
            (frames as f64, wall.as_nanos() as f64)
        })
    });
    let mut frames = Vec::new();
    let mut realtime_ns = Vec::new();
    let mut failures = 0;
    for o in outcomes {
        match o {
            Some((f, w)) => {
                frames.push(f);
                realtime_ns.push(w);
            }
            None => failures += 1,
        }
    }
    AsyncMeasurement {
        frames,
        realtime_ns,
        failures,
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_discovery::SyncParams;
    use mmhew_topology::NetworkBuilder;

    #[test]
    fn measure_sync_completes_small_network() {
        let net = NetworkBuilder::complete(3)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("build");
        let m = measure_sync(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(2).expect("valid")),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(100_000),
            6,
            SeedTree::new(1),
        );
        assert_eq!(m.reps, 6);
        assert_eq!(m.failures, 0);
        assert_eq!(m.slots.len(), 6);
        assert!(m.summary().mean > 0.0);
        assert_eq!(m.failure_rate(), 0.0);
    }

    #[test]
    fn measure_sync_counts_failures_under_tiny_budget() {
        let net = NetworkBuilder::complete(4)
            .universe(4)
            .build(SeedTree::new(0))
            .expect("build");
        let m = measure_sync(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(4).expect("valid")),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(2), // absurdly small
            5,
            SeedTree::new(2),
        );
        assert!(m.failures > 0);
        assert!(m.failure_rate() > 0.0);
    }

    #[test]
    fn measure_protocol_runs_catalog_entries() {
        let net = NetworkBuilder::complete(4)
            .universe(5)
            .build(SeedTree::new(0))
            .expect("build");
        let kind = mmhew_rivals::catalog::by_name("mc-dis").expect("registered");
        let m = measure_protocol(
            &net,
            kind,
            3,
            None,
            SyncRunConfig::until_complete(200_000),
            &EnergyModel::default(),
            3,
            SeedTree::new(4),
        );
        assert_eq!(m.reps, 3);
        assert_eq!(
            m.failures, 0,
            "full availability on a prime universe completes deterministically"
        );
        assert_eq!(m.energy_per_node_slot.len(), 3);
        let rate = m.mean_energy_rate();
        assert!(
            rate > 0.0 && rate < 0.3,
            "mc-dis duty cycle keeps energy rate low, got {rate}"
        );
    }

    #[test]
    fn measure_async_small_network() {
        let net = NetworkBuilder::line(3)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("build");
        let m = measure_async(
            &net,
            AsyncAlgorithm::FrameBased(mmhew_discovery::AsyncParams::new(2).expect("valid")),
            &AsyncRunConfig::until_complete(100_000),
            4,
            SeedTree::new(3),
        );
        assert_eq!(m.failures, 0);
        assert_eq!(m.frames.len(), 4);
        assert!(m.frames_summary().mean > 0.0);
        assert!(m.realtime_summary().mean > 0.0);
    }
}
