//! E26 — repetition-factor inflation restores the success guarantee.
//!
//! The paper's conclusion claims the `1 − ε` guarantees survive unreliable
//! channels at a multiplicative budget cost. This experiment makes the
//! claim falsifiable: calibrate a slot budget the algorithm comfortably
//! meets on a clean channel, impose heavy Bernoulli loss, and show
//!
//! 1. the *unwrapped* algorithm now blows that budget in most runs, while
//! 2. [`mmhew_discovery::RobustDiscovery`] with
//!    `r = ⌈ln(N²/ε)/ln(1/p)⌉` repetitions, given `r×` the budget,
//!    completes with failure rate ≤ ε again.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::{measure_sync, measure_sync_faulted, measure_sync_robust};
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{repetition_factor, SyncAlgorithm, SyncParams};
use mmhew_engine::{FaultPlan, StartSchedule, SyncRunConfig};
use mmhew_faults::LinkLossModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const N: usize = 4;
const UNIVERSE: u16 = 4;
const P_LOSS: f64 = 0.75;
const EPSILON: f64 = 0.1;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e26");
    let reps = effort.pick(10, 40);

    let net = NetworkBuilder::complete(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("complete networks are always valid");
    let delta = net.max_degree().max(1) as u64;
    let alg = SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive"));
    let plan = FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
        delivery_probability: 1.0 - P_LOSS,
    });

    // Calibrate: a budget the clean channel meets with slack.
    let clean = measure_sync(
        &net,
        alg,
        &StartSchedule::Identical,
        SyncRunConfig::until_complete(2_000_000),
        reps,
        seed.branch("calibrate"),
    );
    let budget = (2.0 * clean.summary().mean).ceil().max(1.0) as u64;
    let r = repetition_factor(net.node_count(), EPSILON, P_LOSS);

    let mut table = Table::new(
        [
            "variant",
            "slot budget",
            "mean slots",
            "failures",
            "failure rate",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut push = |name: &str, b: u64, m: &crate::experiments::common::SyncMeasurement| {
        table.push_row(vec![
            name.to_string(),
            b.to_string(),
            fmt_f64(m.summary().mean),
            m.failures.to_string(),
            fmt_f64(m.failure_rate()),
        ]);
    };
    push("clean channel (calibration)", 2_000_000, &clean);

    let unwrapped = measure_sync_faulted(
        &net,
        alg,
        &StartSchedule::Identical,
        &plan,
        SyncRunConfig::until_complete(budget),
        reps,
        seed.branch("unwrapped"),
    );
    push("unwrapped, p_loss=0.75", budget, &unwrapped);

    let robust = measure_sync_robust(
        &net,
        alg,
        r,
        &StartSchedule::Identical,
        &plan,
        SyncRunConfig::until_complete(r * budget),
        reps,
        seed.branch("robust"),
    );
    push(&format!("robust r={r}, p_loss=0.75"), r * budget, &robust);

    let mut report = ExperimentReport::new(
        "E26",
        "robust repetition vs heavy loss under a calibrated slot budget",
        "Conclusion (b): an r = ⌈ln(N²/ε)/ln(1/p)⌉ repetition factor restores ≥1−ε success on \
         a channel where the unwrapped algorithm blows its budget, at an r× budget cost",
        table,
    );
    report.note(format!(
        "calibrated budget = 2x clean mean = {budget} slots; r = {r} \
         (N={N}, ε={EPSILON}, p_loss={P_LOSS})"
    ));
    report.note(format!(
        "unwrapped failure rate {} vs robust {} (target ≤ {EPSILON})",
        fmt_f64(unwrapped.failure_rate()),
        fmt_f64(robust.failure_rate())
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_restores_success_where_unwrapped_fails() {
        let r = run(Effort::Quick, 26);
        assert_eq!(r.table.len(), 3);
        let rows = r.table.rows();
        let clean_failures: u64 = rows[0][3].parse().expect("failures");
        let unwrapped_rate: f64 = rows[1][4].parse().expect("rate");
        let robust_rate: f64 = rows[2][4].parse().expect("rate");
        assert_eq!(clean_failures, 0, "calibration budget must be comfortable");
        assert!(
            unwrapped_rate > 0.5,
            "75% loss should blow the clean budget most of the time, got {unwrapped_rate}"
        );
        // ε = 0.1; allow 2/10 at quick effort for sampling noise.
        assert!(
            robust_rate <= 0.2,
            "repetition should restore ≈1-ε success, got failure rate {robust_rate}"
        );
    }
}
