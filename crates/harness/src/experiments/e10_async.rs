//! E10 — Theorems 9 & 10: the asynchronous algorithm under clock drift.
//!
//! Algorithm 4 runs on a heterogeneous grid with random clock offsets,
//! staggered real-time starts, and random piecewise drift of magnitude
//! `δ`. Swept over `δ` up to the paper's limit `1/7`, the measured
//! frames-to-completion (the min over nodes of full frames after `T_s`)
//! should sit far below Theorem 9's frame bound, vary only mildly with
//! `δ`, and the measured real time should respect Theorem 10's
//! `(M+1)·L/(1−δ)` conversion.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_async;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{AsyncAlgorithm, AsyncParams, Bounds};
use mmhew_engine::{AsyncRunConfig, AsyncStartSchedule, ClockConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_time::{DriftBound, DriftModel, LocalDuration, RealDuration};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const EPSILON: f64 = 0.01;
const FRAME_LEN: u64 = 3_000;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e10");
    let reps = effort.pick(8, 30);
    // δ as exact rationals: 0, 1/100, 1/20, 1/10, 1/7.
    let deltas: &[(u64, u64, &str)] = &[
        (0, 1, "0"),
        (1, 100, "1/100"),
        (1, 20, "1/20"),
        (1, 10, "1/10"),
        (1, 7, "1/7 (limit)"),
    ];

    let net = NetworkBuilder::grid(3, 3)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))
        .expect("grid with subsets is valid");
    let delta_est = net.max_degree().max(1) as u64;
    let bounds = Bounds::from_network(&net, delta_est, EPSILON);
    let frame_budget = (bounds.theorem9_frames().ceil() as u64 * 2).max(50_000);

    let mut table = Table::new(
        [
            "δ",
            "mean frames after Tₛ",
            "ci95",
            "Thm9 frame bound",
            "mean real time (µs)",
            "Thm10 bound (µs)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut means = Vec::new();
    for (i, &(num, den, label)) in deltas.iter().enumerate() {
        let drift = if num == 0 {
            DriftModel::Ideal
        } else {
            DriftModel::RandomPiecewise {
                bound: DriftBound::new(num, den),
                segment: RealDuration::from_nanos(FRAME_LEN * 5),
            }
        };
        let config = AsyncRunConfig::until_complete(frame_budget)
            .with_frame_len(LocalDuration::from_nanos(FRAME_LEN))
            .with_clocks(ClockConfig {
                drift,
                offset_window: LocalDuration::from_nanos(FRAME_LEN * 10),
            })
            .with_starts(AsyncStartSchedule::Staggered {
                window: RealDuration::from_nanos(FRAME_LEN * 10),
            });
        let m = measure_async(
            &net,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est).expect("positive")),
            &config,
            reps,
            seed.branch("run").index(i as u64),
        );
        assert_eq!(m.failures, 0, "async run failed to complete within budget");
        let frames = m.frames_summary();
        means.push(frames.mean);
        let delta_f = num as f64 / den as f64;
        table.push_row(vec![
            label.into(),
            fmt_f64(frames.mean),
            fmt_f64(frames.ci95_halfwidth()),
            fmt_f64(bounds.theorem9_frames()),
            fmt_f64(m.realtime_summary().mean / 1_000.0),
            fmt_f64(bounds.theorem10_realtime_ns(FRAME_LEN, delta_f) / 1_000.0),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E10",
        "Algorithm 4 frames-to-completion vs clock drift magnitude",
        "Theorem 9 (frame bound) and Theorem 10 (real-time bound)",
        table,
    );
    let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / means
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    report.note(format!(
        "frames-to-completion varies only {spread:.2}x from δ=0 to δ=1/7 — \
         the algorithm is drift-insensitive within Assumption 1, as the analysis promises"
    ));
    report.note(format!(
        "grid 3x3, S={}, Δ={}, ρ={:.2}, L={FRAME_LEN}ns, ε={EPSILON}, reps={reps}, \
         random offsets and staggered starts",
        net.s_max(),
        net.max_degree(),
        net.rho()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_drift_levels_complete_below_bound() {
        let r = run(Effort::Quick, 10);
        assert_eq!(r.table.len(), 5);
        for row in r.table.rows() {
            let mean: f64 = row[1].parse().expect("mean frames");
            let bound: f64 = row[3].parse().expect("bound");
            assert!(mean > 0.0);
            assert!(
                mean < bound,
                "δ={} measured {mean} frames exceeds bound {bound}",
                row[0]
            );
        }
    }
}
