//! E14 — extension (c): diverse channel propagation characteristics.
//!
//! The base model assumes all channels propagate identically; under the
//! extension, each channel has its own range (higher frequencies die
//! sooner), so a link's span can be a strict subset of `A(u) ∩ A(v)` and
//! `ρ` drops. Discovery must still complete — a node needs only *one*
//! usable common channel per neighbor — and the slowdown should track the
//! reduced `ρ`.

use crate::experiment::{Effort, ExperimentReport};
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{tables_are_sound, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::SyncRunConfig;
use mmhew_topology::{NetworkBuilder, Propagation};
use mmhew_util::{SeedTree, Summary};

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e14");
    let reps = effort.pick(8, 30);
    let configs: &[(&str, Propagation)] = &[
        ("uniform (base model)", Propagation::Uniform),
        (
            "mildly diverse",
            Propagation::PerChannelRange {
                ranges: vec![3.0, 3.0, 2.5, 2.5],
            },
        ),
        (
            "strongly diverse",
            Propagation::PerChannelRange {
                ranges: vec![3.0, 2.2, 1.6, 1.2],
            },
        ),
    ];

    let mut table = Table::new(
        [
            "propagation",
            "links",
            "ρ",
            "mean slots",
            "ci95",
            "sound tables",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (i, (label, prop)) in configs.iter().enumerate() {
        // Same node placement every time (same seed): only propagation
        // changes.
        let net = NetworkBuilder::unit_disk(20, 10.0, 3.0)
            .universe(4)
            .propagation(prop.clone())
            .build(seed.branch("net"))
            .expect("unit disk is valid");
        let delta = net.max_degree().max(1) as u64;
        let results = parallel_reps(reps, seed.branch("run").index(i as u64), |_rep, s| {
            let out = Scenario::sync(
                &net,
                SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            )
            .config(SyncRunConfig::until_complete(2_000_000))
            .run(s)
            .expect("run");
            (
                out.slots_to_complete(),
                tables_are_sound(&net, out.tables()),
            )
        });
        let slots: Vec<f64> = results
            .iter()
            .filter_map(|(s, _)| s.map(|v| v as f64))
            .collect();
        let sound = results.iter().all(|(_, ok)| *ok);
        let s = Summary::from_samples(&slots);
        table.push_row(vec![
            (*label).into(),
            net.links().len().to_string(),
            fmt_f64(net.rho()),
            fmt_f64(s.mean),
            fmt_f64(s.ci95_halfwidth()),
            if sound {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }

    let mut report = ExperimentReport::new(
        "E14",
        "discovery under per-channel propagation ranges",
        "Conclusion (c): the algorithms adapt to diverse propagation characteristics",
        table,
    );
    report.note(
        "diverse propagation prunes link spans (fewer usable channels per link), lowering ρ \
         and slowing discovery accordingly — but every remaining link is still discovered",
    );
    report.note(format!("unit disk, 20 nodes, 4 channels, reps={reps}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diverse_propagation_still_completes_soundly() {
        let r = run(Effort::Quick, 14);
        assert_eq!(r.table.len(), 3);
        for row in r.table.rows() {
            assert_eq!(row[5], "yes", "{} produced unsound tables", row[0]);
            let mean: f64 = row[3].parse().expect("mean");
            assert!(mean > 0.0);
        }
        // Stronger diversity must not increase rho.
        let rho_base: f64 = r.table.rows()[0][2].parse().expect("rho");
        let rho_strong: f64 = r.table.rows()[2][2].parse().expect("rho");
        assert!(rho_strong <= rho_base + 1e-9);
    }
}
