//! E17 — estimate-growth ablation for Algorithm 2.
//!
//! The paper adopts the Nakano–Olariu sequential (+1) estimate schedule
//! and rejects geometric doubling on the grounds that the dwell time per
//! estimate cannot be computed without knowing `N`, `S` and `ρ`. This
//! ablation runs the rejected scheme with several fixed dwells across
//! networks of very different degree, showing the trade-off: doubling
//! races through low estimates (good on high-degree networks) but its
//! late stages overshoot (transmission probabilities collapse as `2^-i`),
//! and no fixed dwell is right for every network — which is the paper's
//! point.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::SyncAlgorithm;
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::SeedTree;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e17");
    let reps = effort.pick(8, 30);

    let nets: Vec<(&str, Network)> = vec![
        (
            "ring16 (Δ=2)",
            NetworkBuilder::ring(16)
                .universe(4)
                .build(seed.branch("ring"))
                .expect("valid"),
        ),
        (
            "complete12 (Δ=11)",
            NetworkBuilder::complete(12)
                .universe(4)
                .build(seed.branch("complete"))
                .expect("valid"),
        ),
        (
            "star24 (Δ=23)",
            NetworkBuilder::star(24)
                .universe(4)
                .build(seed.branch("star"))
                .expect("valid"),
        ),
    ];
    let strategies: Vec<(&str, SyncAlgorithm)> = vec![
        ("+1 (paper)", SyncAlgorithm::Adaptive),
        (
            "double, dwell 1",
            SyncAlgorithm::AdaptiveDoubling { dwell: 1 },
        ),
        (
            "double, dwell 4",
            SyncAlgorithm::AdaptiveDoubling { dwell: 4 },
        ),
        (
            "double, dwell 16",
            SyncAlgorithm::AdaptiveDoubling { dwell: 16 },
        ),
    ];

    let mut table = Table::new(
        ["network", "strategy", "mean slots", "ci95", "vs paper"]
            .map(String::from)
            .to_vec(),
    );
    for (ni, (net_name, net)) in nets.iter().enumerate() {
        let mut paper_mean = None;
        for (si, (strat_name, alg)) in strategies.iter().enumerate() {
            let m = measure_sync(
                net,
                *alg,
                &StartSchedule::Identical,
                SyncRunConfig::until_complete(3_000_000),
                reps,
                seed.branch("run").index(ni as u64).index(si as u64),
            );
            let mean = m.summary().mean;
            let baseline = *paper_mean.get_or_insert(mean);
            table.push_row(vec![
                (*net_name).into(),
                (*strat_name).into(),
                fmt_f64(mean),
                fmt_f64(m.summary().ci95_halfwidth()),
                format!("{:.2}x", mean / baseline.max(1e-9)),
            ]);
        }
    }

    let mut report = ExperimentReport::new(
        "E17",
        "Algorithm 2 estimate growth: sequential +1 vs rejected geometric doubling",
        "§III-A2: why the paper adopts the Nakano–Olariu sequential schedule",
        table,
    );
    report.note(
        "doubling with a small dwell overshoots past Δ and wastes long low-probability \
         stages; larger dwells fix high-degree networks but slow low-degree ones — \
         no knowledge-free dwell wins everywhere",
    );
    report.note(format!("identical start times, reps={reps}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_report_shape() {
        let r = run(Effort::Quick, 17);
        assert_eq!(r.table.len(), 12);
        for row in r.table.rows() {
            let mean: f64 = row[2].parse().expect("mean");
            assert!(mean > 0.0);
        }
    }
}
