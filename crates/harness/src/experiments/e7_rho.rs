//! E7 — the `1/ρ` heterogeneity penalty.
//!
//! The `PairwiseOverlap` availability model controls the span-ratio
//! exactly: every node gets `shared` common channels plus `private`
//! exclusive ones, so `ρ = shared/(shared+private)` while `|A(u)| = 4`
//! stays fixed. Every theorem predicts running time ∝ `1/ρ`; the
//! measured×ρ column should stay roughly flat.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const EPSILON: f64 = 0.01;
const NODES: usize = 6;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e7");
    let reps = effort.pick(10, 40);
    // (shared, private) with shared+private = 4 → ρ = shared/4.
    let points: &[(u16, u16)] = &[(4, 0), (3, 1), (2, 2), (1, 3)];

    let mut table = Table::new(
        [
            "ρ",
            "S",
            "Δ",
            "mean slots",
            "ci95",
            "mean × ρ",
            "Thm1 bound",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut normalized = Vec::new();
    for &(shared, private) in points {
        let universe = shared + NODES as u16 * private;
        let net = NetworkBuilder::complete(NODES)
            .universe(universe)
            .availability(AvailabilityModel::PairwiseOverlap { shared, private })
            .build(seed.branch("net").index(shared as u64))
            .expect("overlap model fits the universe");
        let delta = net.max_degree().max(1) as u64;
        let bounds = Bounds::from_network(&net, delta, EPSILON);
        let m = measure_sync(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(bounds.theorem1_slots().ceil() as u64 * 4),
            reps,
            seed.branch("run").index(shared as u64),
        );
        let s = m.summary();
        normalized.push(s.mean * net.rho());
        table.push_row(vec![
            fmt_f64(net.rho()),
            net.s_max().to_string(),
            delta.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.ci95_halfwidth()),
            fmt_f64(s.mean * net.rho()),
            fmt_f64(bounds.theorem1_slots()),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E7",
        "completion slots vs heterogeneity (exact span-ratio sweep)",
        "All theorems: running time ∝ 1/ρ",
        table,
    );
    let spread = normalized.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / normalized
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    report.note(format!(
        "mean×ρ max/min = {spread:.2}; flat confirms the inverse dependence \
         (the paper: 'the more heterogeneous the network is, the larger is the running time')"
    ));
    report.note(format!(
        "complete graph of {NODES}, |A(u)|=4 fixed, ε={EPSILON}, reps={reps}"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 7);
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn slots_increase_as_rho_decreases() {
        let r = run(Effort::Quick, 29);
        let rho1: f64 = r.table.rows()[0][3].parse().expect("mean");
        let rho_quarter: f64 = r.table.rows()[3][3].parse().expect("mean");
        assert!(
            rho_quarter > rho1 * 2.0,
            "ρ=1/4 should be much slower than ρ=1: {rho1} vs {rho_quarter}"
        );
    }
}
