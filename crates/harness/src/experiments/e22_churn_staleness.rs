//! E22 — discovered-set staleness under node churn.
//!
//! The paper's algorithms converge once and stop being interesting; under
//! churn the ground truth keeps moving, and the question becomes how far
//! the discovered sets lag behind it. [`ContinuousDiscovery`] keeps
//! re-announcing (so rejoining nodes are re-discovered) and evicts
//! neighbors not heard within `stale_timeout` slots (so departed nodes are
//! forgotten). This experiment runs that wrapper over a grid network under
//! Poisson churn and samples membership staleness — true links missing
//! from tables, plus ghost entries naming departed neighbors — at regular
//! intervals after a warm-up.
//!
//! Below saturation, ghosts are bounded by the eviction timeout (a
//! departed neighbor lingers at most `stale_timeout` slots) and missing
//! entries by the re-discovery latency (E21), so mean staleness grows
//! roughly linearly with the churn rate.

use crate::experiment::{Effort, ExperimentReport};
use crate::plot::AsciiPlot;
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{
    build_continuous_protocols, staleness, ContinuousConfig, SyncAlgorithm, SyncParams,
};
use mmhew_dynamics::{poisson_churn, ChurnConfig, DynamicsSchedule};
use mmhew_engine::{SyncEngine, SyncRunConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::{SeedTree, Summary};

/// Steady-state re-announce period of the continuous wrapper.
const REANNOUNCE: u64 = 16;
/// Slots without a beacon before a neighbor is evicted.
const STALE_TIMEOUT: u64 = 400;
/// Slots between staleness samples.
const SAMPLE_EVERY: u64 = 25;
/// Expected absence duration of a churned node.
const MEAN_DOWNTIME: f64 = 600.0;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e22");
    let reps = effort.pick(4, 16);
    let horizon = effort.pick(6_000, 20_000);
    let warmup = horizon / 3;
    let net = NetworkBuilder::grid(3, 3)
        .universe(4)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))
        .expect("grid builds");
    let delta = net.max_degree().max(1) as u64;
    let algorithm = SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive degree"));
    let continuous = ContinuousConfig::new(REANNOUNCE, STALE_TIMEOUT).expect("positive periods");
    let links = net.links().len();
    let rates: &[f64] = &[0.0, 0.001, 0.005, 0.02];

    let mut table = Table::new(
        [
            "churn rate /slot",
            "mean missing",
            "mean ghosts",
            "mean total",
            "stale fraction",
            "peak total",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut series_rows = Vec::new();
    for (k, &rate) in rates.iter().enumerate() {
        let runs = parallel_reps(reps, seed.branch("run").index(k as u64), |rep, rep_seed| {
            let schedule = if rate > 0.0 {
                DynamicsSchedule::new(poisson_churn(
                    &net,
                    horizon,
                    &ChurnConfig {
                        rate,
                        mean_downtime: MEAN_DOWNTIME,
                    },
                    rep_seed.branch("churn"),
                ))
            } else {
                DynamicsSchedule::empty()
            };
            let protocols =
                build_continuous_protocols(&net, algorithm, continuous).expect("non-empty sets");
            let config = SyncRunConfig::fixed(horizon);
            let mut engine = SyncEngine::new(
                &net,
                protocols,
                vec![0; net.node_count()],
                rep_seed.branch("engine"),
            )
            .with_dynamics(schedule);
            let (mut missing, mut ghosts, mut peak, mut samples) = (0.0f64, 0.0f64, 0usize, 0u64);
            let mut series = Vec::new();
            for slot in 0..horizon {
                engine.step(&config);
                if slot >= warmup && slot % SAMPLE_EVERY == 0 {
                    let r = staleness(engine.network(), &engine.tables_snapshot());
                    missing += r.missing as f64;
                    ghosts += r.ghosts as f64;
                    peak = peak.max(r.total());
                    samples += 1;
                    if rep == 0 {
                        series.push((slot as f64, r.total() as f64));
                    }
                }
            }
            let samples = samples.max(1) as f64;
            (missing / samples, ghosts / samples, peak, series)
        });
        let missing = Summary::from_samples(&runs.iter().map(|r| r.0).collect::<Vec<_>>()).mean;
        let ghosts = Summary::from_samples(&runs.iter().map(|r| r.1).collect::<Vec<_>>()).mean;
        let peak = runs.iter().map(|r| r.2).max().unwrap_or(0);
        table.push_row(vec![
            format!("{rate}"),
            fmt_f64(missing),
            fmt_f64(ghosts),
            fmt_f64(missing + ghosts),
            fmt_f64((missing + ghosts) / links as f64),
            peak.to_string(),
        ]);
        if let Some((_, _, _, series)) = runs.first() {
            if !series.is_empty() {
                series_rows.push((format!("rate={rate}"), series.clone()));
            }
        }
    }

    let mut report = ExperimentReport::new(
        "E22",
        "discovered-set staleness vs churn rate under continuous discovery",
        "staleness is near zero without churn and stays bounded by the \
         eviction timeout below saturation, growing with the churn rate",
        table,
    );
    let mut plot = AsciiPlot::new(72, 16);
    for (label, series) in series_rows {
        plot.add_series(label, series);
    }
    report.figure("total staleness over time, rep 0 (x = slot)", plot.render());
    report.note(format!(
        "3x3 grid, |U|=4, |A(u)|=3, Algorithm 3 inner, reannounce={REANNOUNCE}, \
         stale_timeout={STALE_TIMEOUT}, mean downtime={MEAN_DOWNTIME} slots, \
         horizon={horizon} (warm-up {warmup}), sampled every {SAMPLE_EVERY} \
         slots, reps={reps}; {links} directed links total"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 11);
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn static_network_has_no_staleness_and_churn_hurts() {
        let r = run(Effort::Quick, 13);
        let rows = r.table.rows();
        let static_total: f64 = rows[1][3].parse().expect("total column");
        let churned_total: f64 = rows[4][3].parse().expect("total column");
        // Without churn the wrapper converges and evicts nothing.
        assert!(static_total < 0.5, "static staleness {static_total}");
        assert_eq!(rows[1][2].parse::<f64>().expect("ghosts"), 0.0);
        // At 0.02 departures/slot on 9 nodes, tables visibly lag.
        assert!(
            churned_total > static_total,
            "churn {churned_total} vs static {static_total}"
        );
    }
}
