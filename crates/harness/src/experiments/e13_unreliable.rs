//! E13 — extension (b): unreliable channels.
//!
//! Each would-be-clear reception is delivered independently with
//! probability `q`. Coverage of a link per slot scales by `q`, so expected
//! completion time should scale ≈ `1/q`; the measured×q column should stay
//! roughly flat.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_radio::Impairments;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const N: usize = 10;
const UNIVERSE: u16 = 4;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e13");
    let reps = effort.pick(10, 40);
    let qs: &[f64] = &[1.0, 0.5, 0.25, 0.1];

    let net = NetworkBuilder::ring(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("ring networks are always valid");
    let delta = net.max_degree().max(1) as u64;

    let mut table = Table::new(
        [
            "delivery prob q",
            "mean slots",
            "ci95",
            "mean × q",
            "failures",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut normalized = Vec::new();
    for (i, &q) in qs.iter().enumerate() {
        let m = measure_sync(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(2_000_000)
                .with_impairments(Impairments::with_delivery_probability(q)),
            reps,
            seed.branch("run").index(i as u64),
        );
        let s = m.summary();
        normalized.push(s.mean * q);
        table.push_row(vec![
            q.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.ci95_halfwidth()),
            fmt_f64(s.mean * q),
            m.failures.to_string(),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E13",
        "completion slots vs channel delivery probability",
        "Conclusion (b): the algorithms tolerate unreliable channels, paying a 1/q factor",
        table,
    );
    let spread = normalized.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / normalized
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    report.note(format!(
        "mean×q max/min = {spread:.2}; flat confirms the expected 1/q slowdown"
    ));
    report.note(format!("ring N={N}, Algorithm 3, reps={reps}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_discovery::Scenario;

    #[test]
    fn unreliable_runs_are_seed_stable() {
        // Regression for the Impairments -> mmhew_faults delegation: the
        // per-reception draw sequence, and hence every seeded outcome,
        // must remain a pure function of the seed.
        let net = NetworkBuilder::ring(4)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("ring networks are always valid");
        let run_once = || {
            Scenario::sync(
                &net,
                SyncAlgorithm::Uniform(SyncParams::new(2).expect("positive")),
            )
            .config(
                SyncRunConfig::until_complete(500_000)
                    .with_impairments(Impairments::with_delivery_probability(0.5)),
            )
            .run(SeedTree::new(77))
            .expect("run")
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.completion_slot(), b.completion_slot());
        assert_eq!(a.link_coverage(), b.link_coverage());
        assert_eq!(a.deliveries(), b.deliveries());
        let sorted = |o: &mmhew_engine::SyncOutcome| {
            o.tables()
                .iter()
                .map(|t| t.to_sorted_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(sorted(&a), sorted(&b));
    }

    #[test]
    fn lossier_channels_cost_proportionally_more() {
        let r = run(Effort::Quick, 13);
        assert_eq!(r.table.len(), 4);
        let reliable: f64 = r.table.rows()[0][1].parse().expect("mean");
        let lossy: f64 = r.table.rows()[3][1].parse().expect("mean");
        // q went 1.0 -> 0.1: expect roughly 10x growth; accept 4x..30x.
        let ratio = lossy / reliable;
        assert!(
            (4.0..30.0).contains(&ratio),
            "q=0.1 should cost ≈10x, got {ratio:.1}x"
        );
        // All runs completed.
        for row in r.table.rows() {
            assert_eq!(row[4], "0", "failures at q={}", row[0]);
        }
    }
}
