//! E21 — re-discovery latency of a node joining a running network.
//!
//! A node `X` leaves a complete graph at slot 0 and rejoins at slot `T`
//! with its original edges, while the survivors run Algorithm 3 from slot
//! 0. By the time `X` arrives the survivors have long since discovered
//! each other, so the run's completion slot isolates the re-discovery of
//! `X`'s links alone. Algorithm 3 tolerates arbitrary start slots, so
//! Theorem 3 bounds this latency exactly as it would a fresh start at
//! `T_s = T` — the static analysis transfers to the dynamic join, with
//! `X`'s local degree `d` playing the role of the network degree.

use crate::experiment::{Effort, ExperimentReport};
use crate::plot::AsciiPlot;
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, Scenario, SyncAlgorithm, SyncParams};
use mmhew_dynamics::{DynamicsSchedule, TimedEvent};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::{NetworkBuilder, NetworkEvent, NodeId};
use mmhew_util::{SeedTree, Summary};

const EPSILON: f64 = 0.01;
const UNIVERSE: u16 = 4;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e21");
    let reps = effort.pick(8, 48);
    let degrees: &[usize] = &[1, 2, 4, 8];

    let mut table = Table::new(
        [
            "local degree d",
            "N",
            "join slot T",
            "mean re-disc",
            "median",
            "max",
            "Thm3 bound",
            "mean/bound",
            "failures",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for &d in degrees {
        let n = d + 1;
        let net = NetworkBuilder::complete(n)
            .universe(UNIVERSE)
            .build(seed.branch("net").index(d as u64))
            .expect("complete graph builds");
        let joiner = NodeId::new(d as u32);
        let delta = net.max_degree().max(1) as u64;
        let bounds = Bounds::from_network(&net, delta, EPSILON);
        let bound = bounds.theorem3_slots();
        // The survivors must be done among themselves well before X
        // rejoins, so completion is driven purely by X's links.
        let join_slot = bound.ceil() as u64 * 2;
        let budget = join_slot + bound.ceil() as u64 * 4;
        let mut events = vec![TimedEvent::new(0, NetworkEvent::NodeLeave { node: joiner })];
        events.push(TimedEvent::new(
            join_slot,
            NetworkEvent::NodeJoin {
                node: joiner,
                position: net.topology().position(joiner),
                available: net.available(joiner).to_owned(),
            },
        ));
        for i in 0..d as u32 {
            let other = NodeId::new(i);
            events.push(TimedEvent::new(
                join_slot,
                NetworkEvent::EdgeAdd {
                    from: joiner,
                    to: other,
                },
            ));
            events.push(TimedEvent::new(
                join_slot,
                NetworkEvent::EdgeAdd {
                    from: other,
                    to: joiner,
                },
            ));
        }
        let schedule = DynamicsSchedule::new(events);
        let starts: Vec<u64> = (0..n).map(|i| if i == d { join_slot } else { 0 }).collect();
        let algorithm = SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive degree"));
        let runs = parallel_reps(
            reps,
            seed.branch("run").index(d as u64),
            |_rep, rep_seed| {
                Scenario::sync(&net, algorithm)
                    .starts(StartSchedule::Explicit(starts.clone()))
                    .with_dynamics(schedule.clone())
                    .config(SyncRunConfig::until_complete(budget))
                    .run(rep_seed)
                    .expect("protocol construction failed")
                    // latest_start is exactly the join slot, so this is the
                    // re-discovery latency Theorem 3 bounds.
                    .slots_to_complete()
            },
        );
        let latencies: Vec<f64> = runs.iter().filter_map(|s| s.map(|v| v as f64)).collect();
        let failures = runs.len() - latencies.len();
        let summary = Summary::from_samples(&latencies);
        table.push_row(vec![
            d.to_string(),
            n.to_string(),
            join_slot.to_string(),
            fmt_f64(summary.mean),
            fmt_f64(summary.median),
            fmt_f64(summary.max),
            fmt_f64(bound),
            fmt_f64(summary.mean / bound),
            failures.to_string(),
        ]);
        measured.push((d as f64, summary.mean));
        predicted.push((d as f64, bound));
    }

    let mut report = ExperimentReport::new(
        "E21",
        "re-discovery latency of a joining node vs Theorem 3",
        "a join into a running network completes within the static \
         Theorem 3 bound for the joiner's local degree",
        table,
    );
    let mut plot = AsciiPlot::new(72, 16);
    plot.add_series("measured mean".to_string(), measured);
    plot.add_series("Thm3 bound".to_string(), predicted);
    report.figure("re-discovery slots vs local degree d", plot.render());
    report.note(format!(
        "complete graph of d+1 nodes, |U|={UNIVERSE} (full availability), \
         Algorithm 3 with Δ_est=d, ε={EPSILON}, reps={reps}; node d leaves \
         at slot 0 and rejoins (node + both edge directions) at T, starting \
         its protocol at T via an explicit start schedule"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 11);
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn rediscovery_stays_under_the_static_bound() {
        // Theorem 3 is a with-high-probability upper bound, so the mean
        // re-discovery latency sits clearly below it for every degree.
        let r = run(Effort::Quick, 12);
        for row in r.table.rows().iter().skip(1) {
            let ratio: f64 = row[7].parse().expect("ratio column");
            assert!(ratio < 1.0, "mean/bound {ratio} in {row:?}");
            assert_eq!(row[8], "0", "failures in {row:?}");
        }
    }
}
