//! E12 — extension (a): asymmetric communication graphs.
//!
//! Nodes draw individual transmit ranges, so some links are one-way (the
//! strong transmitter is heard but cannot hear back). The paper's
//! conclusion claims the algorithms extend to this case; nothing in
//! Algorithms 3/4 actually relies on symmetry, so discovery of every
//! *incoming* link must still complete and match the directed ground
//! truth.

use crate::experiment::{Effort, ExperimentReport};
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{tables_match_ground_truth, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::SyncRunConfig;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::{SeedTree, Summary};

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e12");
    let reps = effort.pick(8, 30);
    // (r_min, r_max): equal ranges = symmetric control; spread = asymmetric.
    let configs: &[(f64, f64, &str)] = &[
        (2.5, 2.5, "symmetric (control)"),
        (1.5, 3.5, "mildly asymmetric"),
        (1.0, 5.0, "strongly asymmetric"),
    ];

    let mut table = Table::new(
        [
            "graph",
            "links",
            "one-way links",
            "mean slots",
            "ci95",
            "ground truth",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (i, &(r_min, r_max, label)) in configs.iter().enumerate() {
        let net = NetworkBuilder::asymmetric_disk(18, 8.0, r_min, r_max)
            .universe(6)
            .availability(AvailabilityModel::UniformSubset { size: 4 })
            .build(seed.branch("net").index(i as u64))
            .expect("asymmetric disk is valid");
        let delta = net.max_degree().max(1) as u64;
        let one_way = net
            .links()
            .iter()
            .filter(|l| {
                !net.links().contains(&mmhew_topology::Link {
                    from: l.to,
                    to: l.from,
                })
            })
            .count();
        let results = parallel_reps(reps, seed.branch("run").index(i as u64), |_rep, s| {
            let out = Scenario::sync(
                &net,
                SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            )
            .config(SyncRunConfig::until_complete(2_000_000))
            .run(s)
            .expect("run");
            (
                out.slots_to_complete(),
                out.completed() && tables_match_ground_truth(&net, out.tables()),
            )
        });
        let slots: Vec<f64> = results
            .iter()
            .filter_map(|(s, _)| s.map(|v| v as f64))
            .collect();
        let all_truthful = results.iter().all(|(_, ok)| *ok);
        let s = Summary::from_samples(&slots);
        table.push_row(vec![
            label.into(),
            net.links().len().to_string(),
            one_way.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.ci95_halfwidth()),
            if all_truthful {
                "exact".into()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }

    let mut report = ExperimentReport::new(
        "E12",
        "discovery on asymmetric communication graphs (per-node transmit ranges)",
        "Conclusion (a): the algorithms extend to asymmetric graphs",
        table,
    );
    report.note(
        "every node discovers exactly its in-neighbors (nodes it can hear) — \
         one-way links are discovered by the receiving side only, as the directed ground truth requires",
    );
    report.note(format!("18 nodes in an 8x8 field, reps={reps}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetric_discovery_is_exact() {
        let r = run(Effort::Quick, 12);
        assert_eq!(r.table.len(), 3);
        for row in r.table.rows() {
            assert_eq!(row[5], "exact", "{} failed ground truth", row[0]);
        }
        // The strongly asymmetric graph must actually contain one-way links.
        let one_way: u64 = r.table.rows()[2][2].parse().expect("count");
        assert!(
            one_way > 0,
            "expected one-way links in the asymmetric graph"
        );
    }
}
