//! E18 — termination-detection trade-off.
//!
//! The paper's algorithms never stop; in a deployment each node must
//! decide locally when discovery is "done" (cf. the companion work \[22\] on
//! lightweight termination detection). The quiescence detector stops a
//! node after `q` slots without a new neighbor. Sweeping `q` exposes the
//! trade-off: small thresholds quit before slow links are covered (missed
//! links), large thresholds waste energy idling after completion. The
//! miss rate should fall roughly geometrically in `q`.

use crate::experiment::{Effort, ExperimentReport};
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::SyncRunConfig;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::{SeedTree, Summary};

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e18");
    let reps = effort.pick(12, 60);
    let thresholds: &[u64] = &[25, 100, 400, 1_600, 6_400];

    let net = NetworkBuilder::grid(3, 3)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("net"))
        .expect("grid is valid");
    let delta = net.max_degree().max(1) as u64;
    let total_links = net.links().len() as f64;

    let mut table = Table::new(
        [
            "quiet threshold q",
            "all links found",
            "mean missed links",
            "mean stop slot",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut miss_rates = Vec::new();
    for (i, &q) in thresholds.iter().enumerate() {
        let results = parallel_reps(reps, seed.branch("run").index(i as u64), |_rep, s| {
            let out = Scenario::sync(
                &net,
                SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            )
            .terminating(q)
            .config(SyncRunConfig::until_all_terminated(3_000_000))
            .run(s)
            .expect("valid protocols");
            let missed = out
                .link_coverage()
                .iter()
                .filter(|(_, t)| t.is_none())
                .count() as f64;
            let stop = out
                .terminated_slot()
                .expect("quiescence always fires eventually") as f64;
            (missed, stop)
        });
        let missed: Vec<f64> = results.iter().map(|(m, _)| *m).collect();
        let stops: Vec<f64> = results.iter().map(|(_, s)| *s).collect();
        let complete_runs = missed.iter().filter(|&&m| m == 0.0).count();
        miss_rates.push(1.0 - complete_runs as f64 / reps as f64);
        table.push_row(vec![
            q.to_string(),
            format!("{complete_runs}/{reps}"),
            fmt_f64(Summary::from_samples(&missed).mean),
            fmt_f64(Summary::from_samples(&stops).mean),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E18",
        "quiescence-based local termination: miss rate vs stop time",
        "practical termination for the paper's run-forever algorithms (cf. companion work [22])",
        table,
    );
    report.note(format!(
        "miss rate falls from {:.0}% to {:.0}% across the threshold sweep while the stop \
         slot grows ~linearly in q — pick q a few multiples of the expected per-link \
         coverage time",
        miss_rates.first().copied().unwrap_or(0.0) * 100.0,
        miss_rates.last().copied().unwrap_or(0.0) * 100.0,
    ));
    report.note(format!(
        "grid 3x3, {total_links} links, Algorithm 3 with Δ_est=Δ={delta}, reps={reps}"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generous_thresholds_find_everything() {
        let r = run(Effort::Quick, 18);
        assert_eq!(r.table.len(), 5);
        // The most generous threshold misses nothing.
        let last = r.table.rows().last().expect("rows");
        let missed: f64 = last[2].parse().expect("missed");
        assert_eq!(missed, 0.0, "q=6400 should find every link: {last:?}");
        // Stop slot grows monotonically with the threshold.
        let stops: Vec<f64> = r
            .table
            .rows()
            .iter()
            .map(|row| row[3].parse().expect("stop"))
            .collect();
        for pair in stops.windows(2) {
            assert!(
                pair[0] <= pair[1] * 1.05,
                "stop slots should grow: {stops:?}"
            );
        }
    }
}
