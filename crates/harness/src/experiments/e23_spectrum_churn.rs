//! E23 — link re-establishment latency after spectrum churn.
//!
//! Availability churn: two neighbors share exactly one channel (channel
//! 0). A primary user occupies it at `T1` — the link's last common channel
//! is gone, so the link vanishes from the ground truth — and vacates at
//! `T2`, restoring the link *uncovered*. The time to re-cover it measures
//! how quickly discovery re-establishes connectivity after an outage.
//!
//! Node 0's availability has `S` channels, so its beacons (and listening
//! slots) spread over all `S` while only channel 0 can cross the link:
//! the per-slot coverage probability per direction is
//! `p·(1/S)·p = 1/(4S)` with Algorithm 3's capped `p = 1/2`, and the
//! re-establishment latency grows linearly in `S` — the same spectrum
//! dilution that drives the `S_max` factor in Theorems 1–3.

use crate::experiment::{Effort, ExperimentReport};
use crate::plot::AsciiPlot;
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Scenario, SyncAlgorithm, SyncParams};
use mmhew_dynamics::{DynamicsSchedule, TimedEvent};
use mmhew_engine::SyncRunConfig;
use mmhew_spectrum::{AvailabilityModel, ChannelId, ChannelSet};
use mmhew_topology::{NetworkBuilder, NetworkEvent, NodeId};
use mmhew_util::{SeedTree, Summary};

/// Slot at which the primary user occupies channel 0.
const T1: u64 = 200;
/// Slots the primary user stays before vacating.
const OUTAGE: u64 = 100;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e23");
    let reps = effort.pick(16, 96);
    let sizes: &[u16] = &[1, 2, 4, 8];
    let t2 = T1 + OUTAGE;

    let mut table = Table::new(
        [
            "S = |A(0)|",
            "mean re-est",
            "median",
            "p95",
            "max",
            "mean/4S",
            "failures",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut measured = Vec::new();
    let mut reference = Vec::new();
    for &s in sizes {
        let sets = vec![ChannelSet::full(s), [0u16].into_iter().collect()];
        let net = NetworkBuilder::line(2)
            .universe(s)
            .availability(AvailabilityModel::Explicit(sets))
            .build(seed.branch("net").index(s as u64))
            .expect("two-node line builds");
        // Node 1 loses its only channel: the link's last common channel
        // goes with it. OUTAGE slots later the primary user vacates.
        let schedule = DynamicsSchedule::new(vec![
            TimedEvent::new(
                T1,
                NetworkEvent::ChannelLost {
                    node: NodeId::new(1),
                    channel: ChannelId::new(0),
                },
            ),
            TimedEvent::new(
                t2,
                NetworkEvent::ChannelGained {
                    node: NodeId::new(1),
                    channel: ChannelId::new(0),
                },
            ),
        ]);
        let algorithm = SyncAlgorithm::Uniform(SyncParams::new(1).expect("positive degree"));
        let budget = t2 + 512 * s as u64;
        let runs = parallel_reps(
            reps,
            seed.branch("run").index(s as u64),
            |_rep, rep_seed| {
                let outcome = Scenario::sync(&net, algorithm)
                    .with_dynamics(schedule.clone())
                    .config(SyncRunConfig::until_complete(budget))
                    .run(rep_seed)
                    .expect("protocol construction failed");
                // Both link directions were covered long before T1 and dropped
                // by the resync, so completion is re-establishment.
                outcome.completion_slot().map(|c| c - t2 + 1)
            },
        );
        let latencies: Vec<f64> = runs.iter().filter_map(|s| s.map(|v| v as f64)).collect();
        let failures = runs.len() - latencies.len();
        let summary = Summary::from_samples(&latencies);
        let four_s = 4.0 * s as f64;
        table.push_row(vec![
            s.to_string(),
            fmt_f64(summary.mean),
            fmt_f64(summary.median),
            fmt_f64(summary.p95),
            fmt_f64(summary.max),
            fmt_f64(summary.mean / four_s),
            failures.to_string(),
        ]);
        measured.push((s as f64, summary.mean));
        reference.push((s as f64, four_s));
    }

    let mut report = ExperimentReport::new(
        "E23",
        "link re-establishment latency after a primary-user outage",
        "re-establishment latency grows linearly in S — the per-direction \
         coverage probability is 1/(4S) once the channel returns",
        table,
    );
    let mut plot = AsciiPlot::new(72, 16);
    plot.add_series("measured mean".to_string(), measured);
    plot.add_series("4S reference".to_string(), reference);
    report.figure("re-establishment slots vs S", plot.render());
    report.note(format!(
        "two nodes, A(0) = {{0..S}}, A(1) = {{0}}, Algorithm 3 with \
         Δ_est=1 (p capped at 1/2); channel 0 occupied at slot {T1}, \
         vacated {OUTAGE} slots later; reps={reps}; latency counted from \
         the vacate slot; mean/4S near a constant confirms linear growth"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 11);
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn latency_grows_with_spectrum_size() {
        // With 8x the channels to dilute over, re-establishment takes
        // clearly longer than on a single shared channel.
        let r = run(Effort::Quick, 17);
        let rows = r.table.rows();
        let s1: f64 = rows[1][1].parse().expect("mean column");
        let s8: f64 = rows[4][1].parse().expect("mean column");
        assert!(s8 > s1, "S=8 mean {s8} vs S=1 mean {s1}");
    }
}
