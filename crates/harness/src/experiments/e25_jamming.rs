//! E25 — completion time vs fraction of channels jammed.
//!
//! A jammer that permanently blankets `k` of the `U` universal channels
//! turns every reception attempt there into noise. Because a link is
//! covered as soon as it meets on *any* commonly-available channel,
//! discovery still completes while `k < U` — the meeting probability per
//! slot just shrinks with the number of clear channels, so completion
//! time should grow as the jammed fraction rises, without failures.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync_faulted;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{SyncAlgorithm, SyncParams};
use mmhew_engine::{FaultPlan, StartSchedule, SyncRunConfig};
use mmhew_faults::JamSchedule;
use mmhew_spectrum::ChannelSet;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const N: usize = 8;
const UNIVERSE: u16 = 6;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e25");
    let reps = effort.pick(10, 40);
    let jammed_counts: &[u16] = &[0, 1, 2, 3, 4];

    let net = NetworkBuilder::complete(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("complete networks are always valid");
    let delta = net.max_degree().max(1) as u64;
    let alg = SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive"));
    let config = SyncRunConfig::until_complete(2_000_000);

    let mut table = Table::new(
        [
            "jammed channels",
            "jammed fraction",
            "mean slots",
            "ci95",
            "failures",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut means = Vec::new();
    for (i, &k) in jammed_counts.iter().enumerate() {
        let jammed: ChannelSet = (0..k).collect();
        let plan = if k == 0 {
            FaultPlan::new()
        } else {
            FaultPlan::new().with_jamming(JamSchedule::fixed(jammed))
        };
        let m = measure_sync_faulted(
            &net,
            alg,
            &StartSchedule::Identical,
            &plan,
            config,
            reps,
            seed.branch("run").index(i as u64),
        );
        let s = m.summary();
        means.push(s.mean);
        table.push_row(vec![
            k.to_string(),
            fmt_f64(f64::from(k) / f64::from(UNIVERSE)),
            fmt_f64(s.mean),
            fmt_f64(s.ci95_halfwidth()),
            m.failures.to_string(),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E25",
        "completion slots vs fraction of universal channels jammed",
        "Multichannel hopping degrades gracefully under jamming: completion slows as channels \
         are blanketed but succeeds while any common channel stays clear",
        table,
    );
    report.note(format!(
        "slowdown at {}/{UNIVERSE} jammed = {:.2}x over clear spectrum",
        jammed_counts[jammed_counts.len() - 1],
        means[means.len() - 1] / means[0].max(1e-9)
    ));
    report.note(format!(
        "complete N={N}, U={UNIVERSE}, Algorithm 3, reps={reps}"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jamming_slows_but_does_not_stop_discovery() {
        let r = run(Effort::Quick, 25);
        assert_eq!(r.table.len(), 5);
        let clear: f64 = r.table.rows()[0][2].parse().expect("mean");
        let heavy: f64 = r.table.rows()[4][2].parse().expect("mean");
        assert!(
            heavy > clear,
            "4/6 jammed ({heavy:.0}) should exceed clear spectrum ({clear:.0})"
        );
        // Graceful degradation: every rep still completes.
        for row in r.table.rows() {
            assert_eq!(row[4], "0", "failures at k={}", row[0]);
        }
    }
}
