//! E24 — bursty loss vs Bernoulli loss at equal average loss rate.
//!
//! A Gilbert–Elliott channel with stationary loss `L` drops the same
//! long-run fraction of beacons as a Bernoulli channel with delivery
//! `1 − L`, but concentrates the losses into bursts. Discovery cares about
//! the *tail* link — a link blacked out for a whole burst makes no
//! progress at all — so at equal average loss, burstier channels should
//! cost strictly more slots, and increasingly so as the mean burst length
//! grows.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::{measure_sync, measure_sync_faulted};
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{SyncAlgorithm, SyncParams};
use mmhew_engine::{FaultPlan, StartSchedule, SyncRunConfig};
use mmhew_faults::{GilbertElliott, LinkLossModel};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const N: usize = 10;
const UNIVERSE: u16 = 4;
const LOSS: f64 = 0.3;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e24");
    let reps = effort.pick(10, 40);
    let burst_lens: &[f64] = &[2.0, 8.0, 32.0];

    let net = NetworkBuilder::ring(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("ring networks are always valid");
    let delta = net.max_degree().max(1) as u64;
    let alg = SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive"));
    let config = SyncRunConfig::until_complete(2_000_000);

    let mut table = Table::new(
        [
            "loss model",
            "mean slots",
            "ci95",
            "vs bernoulli",
            "failures",
        ]
        .map(String::from)
        .to_vec(),
    );

    let bernoulli = measure_sync_faulted(
        &net,
        alg,
        &StartSchedule::Identical,
        &FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
            delivery_probability: 1.0 - LOSS,
        }),
        config,
        reps,
        seed.branch("bernoulli"),
    );
    let base = bernoulli.summary();
    table.push_row(vec![
        format!("bernoulli L={LOSS}"),
        fmt_f64(base.mean),
        fmt_f64(base.ci95_halfwidth()),
        "1.00".to_string(),
        bernoulli.failures.to_string(),
    ]);

    for (i, &burst) in burst_lens.iter().enumerate() {
        let m = measure_sync_faulted(
            &net,
            alg,
            &StartSchedule::Identical,
            &FaultPlan::new().with_default_loss(LinkLossModel::GilbertElliott(
                GilbertElliott::bursty(LOSS, burst),
            )),
            config,
            reps,
            seed.branch("ge").index(i as u64),
        );
        let s = m.summary();
        table.push_row(vec![
            format!("gilbert-elliott L={LOSS} burst={burst}"),
            fmt_f64(s.mean),
            fmt_f64(s.ci95_halfwidth()),
            fmt_f64(s.mean / base.mean.max(1e-9)),
            m.failures.to_string(),
        ]);
    }

    // Sanity anchor: a fault-free run, for calibrating the 1/(1-L) cost of
    // the Bernoulli row itself.
    let clean = measure_sync(
        &net,
        alg,
        &StartSchedule::Identical,
        config,
        reps,
        seed.branch("clean"),
    );

    let mut report = ExperimentReport::new(
        "E24",
        "completion slots: bursty vs independent loss at equal average rate",
        "At equal average loss, burst-correlated losses delay discovery more than independent \
         losses — the repetition analysis's independence assumption is the optimistic case",
        table,
    );
    report.note(format!(
        "fault-free mean {} slots; bernoulli pays ≈1/(1-L)",
        fmt_f64(clean.summary().mean)
    ));
    report.note(format!(
        "ring N={N}, Algorithm 3, reps={reps}, loss L={LOSS}"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burstier_loss_costs_more_at_equal_rate() {
        let r = run(Effort::Quick, 24);
        assert_eq!(r.table.len(), 4);
        let bernoulli: f64 = r.table.rows()[0][1].parse().expect("mean");
        let longest_burst: f64 = r.table.rows()[3][1].parse().expect("mean");
        assert!(
            longest_burst > bernoulli,
            "burst=32 ({longest_burst:.0}) should exceed bernoulli ({bernoulli:.0}) at equal loss"
        );
        for row in r.table.rows() {
            assert_eq!(row[4], "0", "failures for {}", row[0]);
        }
    }
}
