//! E20 — contention profile behind the `1/ρ` penalty.
//!
//! E7 shows completion time growing like `1/ρ`; this diagnostic explains
//! *why* by attaching a [`MetricsSink`] to the same sweep. With the
//! `PairwiseOverlap` model the only channels a beacon can cross a link on
//! are the `shared` block (indices `0..shared`), so as `ρ` falls the same
//! transmission probability mass concentrates onto fewer useful channels:
//! the per-channel collision rate on the shared block climbs while the
//! private channels carry transmissions no neighbor can hear.
//!
//! The collision time series (collisions per window of slots, shared
//! channels summed) shows contention decaying as nodes are discovered and
//! stages sweep to lower transmission probabilities.

use crate::experiment::{Effort, ExperimentReport};
use crate::plot::AsciiPlot;
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::SyncRunConfig;
use mmhew_obs::MetricsSink;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::{SeedTree, Summary};

const EPSILON: f64 = 0.01;
const NODES: usize = 6;
/// Windows the collision series aims for over one budget-length run.
const SERIES_WINDOWS: u64 = 24;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e20");
    let reps = effort.pick(6, 24);
    // (shared, private) with shared+private = 4 → ρ = shared/4 (as in E7).
    let points: &[(u16, u16)] = &[(4, 0), (3, 1), (2, 2), (1, 3)];

    let mut table = Table::new(
        [
            "ρ",
            "mean slots",
            "busy frac",
            "coll rate",
            "shared coll rate",
            "private deliver",
            "mean contenders",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut series_rows = Vec::new();
    for &(shared, private) in points {
        let universe = shared + NODES as u16 * private;
        let net = NetworkBuilder::complete(NODES)
            .universe(universe)
            .availability(AvailabilityModel::PairwiseOverlap { shared, private })
            .build(seed.branch("net").index(shared as u64))
            .expect("overlap model fits the universe");
        let delta = net.max_degree().max(1) as u64;
        let bounds = Bounds::from_network(&net, delta, EPSILON);
        let budget = bounds.theorem1_slots().ceil() as u64 * 4;
        let window = (budget / SERIES_WINDOWS).max(1);
        let algorithm = SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive"));
        let runs = parallel_reps(
            reps,
            seed.branch("run").index(shared as u64),
            |_rep, rep_seed| {
                let mut sink = MetricsSink::with_collision_series(window);
                let outcome = Scenario::sync(&net, algorithm)
                    .config(SyncRunConfig::until_complete(budget))
                    .with_sink(&mut sink)
                    .run(rep_seed)
                    .expect("protocol construction failed");
                (outcome.slots_to_complete(), sink)
            },
        );
        let mut metrics = MetricsSink::with_collision_series(window);
        for (_, sink) in &runs {
            metrics.merge(sink);
        }
        let slots: Vec<f64> = runs
            .iter()
            .filter_map(|(s, _)| s.map(|v| v as f64))
            .collect();
        let split = |range: std::ops::Range<usize>| {
            let (coll, active) = metrics.channels()[range]
                .iter()
                .fold((0u64, 0u64), |(c, a), ch| {
                    (c + ch.collision, a + ch.active())
                });
            if active == 0 {
                0.0
            } else {
                coll as f64 / active as f64
            }
        };
        let channels = metrics.channels().len();
        let shared_rate = split(0..(shared as usize).min(channels));
        let private_deliveries: u64 = metrics
            .channels()
            .iter()
            .skip(shared as usize)
            .map(|ch| ch.deliveries)
            .sum();
        let mean_contenders = {
            let (sum, active) = metrics.channels().iter().fold((0u64, 0u64), |(s, a), ch| {
                (s + ch.contenders_sum, a + ch.active())
            });
            if active == 0 {
                0.0
            } else {
                sum as f64 / active as f64
            }
        };
        table.push_row(vec![
            fmt_f64(net.rho()),
            fmt_f64(Summary::from_samples(&slots).mean),
            fmt_f64(metrics.busy_fraction()),
            fmt_f64(metrics.collision_rate()),
            fmt_f64(shared_rate),
            private_deliveries.to_string(),
            fmt_f64(mean_contenders),
        ]);
        // Shared-block collisions per window, summed over reps, as one
        // series per ρ point.
        let windows = metrics
            .collision_series()
            .iter()
            .take(shared as usize)
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        let series: Vec<(f64, f64)> = (0..windows)
            .map(|w| {
                let total: u64 = metrics
                    .collision_series()
                    .iter()
                    .take(shared as usize)
                    .filter_map(|s| s.get(w))
                    .sum();
                ((w as u64 * window) as f64, total as f64)
            })
            .collect();
        series_rows.push((format!("ρ={}", fmt_f64(net.rho())), series));
    }

    let mut report = ExperimentReport::new(
        "E20",
        "contention profile vs heterogeneity (collision diagnostics for E7)",
        "lower ρ concentrates contention on the shared channels; \
         private channels never deliver",
        table,
    );
    let mut plot = AsciiPlot::new(72, 16);
    for (label, series) in series_rows {
        if !series.is_empty() {
            plot.add_series(label, series);
        }
    }
    report.figure(
        "shared-block collisions per window (x = slot)",
        plot.render(),
    );
    report.note(format!(
        "complete graph of {NODES}, |A(u)|=4 fixed, ε={EPSILON}, reps={reps}; \
         collision series windows of budget/{SERIES_WINDOWS} slots"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 11);
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn private_channels_never_deliver() {
        // A private channel has exactly one owner, so no neighbor can ever
        // hear a beacon sent there: the deliveries column is exactly zero
        // for every ρ < 1, and contention happens on the shared block.
        let r = run(Effort::Quick, 13);
        for row in &r.table.rows()[1..] {
            assert_eq!(row[5], "0", "private deliveries in {row:?}");
        }
        let rho_quarter_shared: f64 = r.table.rows()[3][4].parse().expect("rate");
        assert!(
            rho_quarter_shared > 0.0,
            "six nodes on one shared channel must collide sometimes"
        );
    }
}
