//! E5 — Theorem 3 vs Theorem 1: constant-probability Algorithm 3 against
//! staged Algorithm 1 as the degree estimate loosens.
//!
//! Theorem 1's bound grows like `log Δ_est`; Theorem 3's grows *linearly*
//! in `Δ_est` once `Δ_est > 2S` (the price paid for tolerating variable
//! start times). Sweeping `Δ_est` on a fixed network should show Algorithm
//! 3 competitive (or better — no stage overhead) at tight estimates and
//! increasingly worse at loose ones, with a crossover — exactly the
//! trade-off the paper describes ("although the algorithm works even if
//! the upper bound is loose, the running time … depends linearly on the
//! value of the upper bound").

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const EPSILON: f64 = 0.01;
const N: usize = 16;
const UNIVERSE: u16 = 4;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e5");
    let reps = effort.pick(10, 40);
    let estimates: &[u64] = effort.pick(&[2, 8, 32, 128], &[2, 8, 32, 128, 512]);

    let net = NetworkBuilder::ring(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("ring networks are always valid");

    let mut table = Table::new(
        [
            "Δ_est",
            "Alg1 slots",
            "Alg3 slots",
            "Alg3/Alg1",
            "Thm1 bound",
            "Thm3 bound",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut ratios = Vec::new();
    for &dest in estimates {
        let params = SyncParams::new(dest).expect("positive");
        let bounds = Bounds::from_network(&net, dest, EPSILON);
        let budget =
            ((bounds.theorem1_slots() + bounds.theorem3_slots()).ceil() as u64 * 4).max(10_000);
        let staged = measure_sync(
            &net,
            SyncAlgorithm::Staged(params),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(budget),
            reps,
            seed.branch("alg1").index(dest),
        );
        let uniform = measure_sync(
            &net,
            SyncAlgorithm::Uniform(params),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(budget),
            reps,
            seed.branch("alg3").index(dest),
        );
        let a1 = staged.summary().mean;
        let a3 = uniform.summary().mean;
        ratios.push(a3 / a1.max(1e-9));
        table.push_row(vec![
            dest.to_string(),
            fmt_f64(a1),
            fmt_f64(a3),
            fmt_f64(a3 / a1.max(1e-9)),
            fmt_f64(bounds.theorem1_slots()),
            fmt_f64(bounds.theorem3_slots()),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E5",
        "staged (Alg 1) vs constant-probability (Alg 3) as Δ_est loosens",
        "Theorem 1 (log Δ_est) vs Theorem 3 (linear Δ_est)",
        table,
    );
    report.note(format!(
        "Alg3/Alg1 ratio goes from {:.2} at the tightest estimate to {:.2} at the loosest — \
         the predicted log-vs-linear divergence",
        ratios.first().copied().unwrap_or(0.0),
        ratios.last().copied().unwrap_or(0.0),
    ));
    report.note(format!(
        "ring N={N}, S={UNIVERSE}, ε={EPSILON}, reps={reps}"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 4);
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn uniform_degrades_faster_with_loose_estimates() {
        let r = run(Effort::Quick, 21);
        let first_ratio: f64 = r.table.rows()[0][3].parse().expect("ratio");
        let last_ratio: f64 = r.table.rows()[3][3].parse().expect("ratio");
        assert!(
            last_ratio > first_ratio * 2.0,
            "expected the Alg3/Alg1 ratio to grow markedly: {first_ratio} -> {last_ratio}"
        );
    }
}
