//! The reproduction experiment suite (see DESIGN.md §5 for the index).

pub mod common;
pub mod e10_async;
pub mod e11_baseline;
pub mod e12_asymmetric;
pub mod e13_unreliable;
pub mod e14_propagation;
pub mod e15_energy;
pub mod e16_burst_plan;
pub mod e17_growth;
pub mod e18_termination;
pub mod e19_exact_probability;
pub mod e1_n_scaling;
pub mod e20_contention;
pub mod e21_join_rediscovery;
pub mod e22_churn_staleness;
pub mod e23_spectrum_churn;
pub mod e2_dest_scaling;
pub mod e3_s_delta;
pub mod e4_adaptive;
pub mod e5_uniform;
pub mod e6_variable_start;
pub mod e7_rho;
pub mod e8_epsilon;
pub mod e9_frame_lemmas;
pub mod f_cdf;
