//! E2 — Theorem 1's `log Δ_est` dependence.
//!
//! On a fixed network, Algorithm 1 is run with increasingly loose degree
//! estimates. Theorem 1 predicts slots grow like `⌈log₂ Δ_est⌉` (each
//! stage gets longer but stage count stays put): the measured/-stage-length
//! column should stay roughly flat, demonstrating that even very loose
//! estimates only cost a logarithmic factor — the property the paper
//! highlights ("the bound … may be quite loose").

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const EPSILON: f64 = 0.01;
const N: usize = 16;
const UNIVERSE: u16 = 4;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e2");
    let reps = effort.pick(10, 40);
    let estimates: &[u64] = effort.pick(&[2, 8, 32, 128], &[2, 8, 32, 128, 512, 2048]);

    let net = NetworkBuilder::ring(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("ring networks are always valid");

    let mut table = Table::new(
        [
            "Δ_est",
            "stage len",
            "mean slots",
            "ci95",
            "bound (Thm 1)",
            "mean/stage len",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut normalized = Vec::new();
    for &dest in estimates {
        let params = SyncParams::new(dest).expect("positive");
        let bounds = Bounds::from_network(&net, dest, EPSILON);
        let m = measure_sync(
            &net,
            SyncAlgorithm::Staged(params),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(bounds.theorem1_slots().ceil() as u64 * 4),
            reps,
            seed.branch("run").index(dest),
        );
        let s = m.summary();
        let norm = s.mean / params.stage_len() as f64;
        normalized.push(norm);
        table.push_row(vec![
            dest.to_string(),
            params.stage_len().to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.ci95_halfwidth()),
            fmt_f64(bounds.theorem1_slots()),
            fmt_f64(norm),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E2",
        "Algorithm 1 slots vs looseness of the degree estimate",
        "Theorem 1: the Δ_est dependence is only logarithmic",
        table,
    );
    let spread = normalized.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / normalized
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    report.note(format!(
        "mean/stage-length max/min = {spread:.2}; flat ⇒ cost of a loose bound is exactly the stage-length factor"
    ));
    report.note(format!("ring N={N}, true Δ=2, ε={EPSILON}, reps={reps}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 5);
        assert_eq!(r.table.len(), 4);
        for row in r.table.rows() {
            let mean: f64 = row[2].parse().expect("mean");
            assert!(mean > 0.0);
        }
    }

    #[test]
    fn slots_grow_with_estimate_but_sublinearly() {
        let r = run(Effort::Quick, 31);
        let first: f64 = r.table.rows()[0][2].parse().expect("mean");
        let last: f64 = r.table.rows()[3][2].parse().expect("mean");
        assert!(last > first, "looser estimate should cost something");
        // Δ_est grew 64x; slots must grow far less than that.
        assert!(
            last < first * 16.0,
            "grew {first} -> {last}: not logarithmic"
        );
    }
}
