//! E27 — completion-time CDF: the paper's algorithms vs rival protocols.
//!
//! The rivals shelf (`mmhew-rivals`) implements two deterministic
//! channel-hopping families — Mc-Dis (prime duty cycles, arXiv:1307.3630
//! lineage) and the S-Nihao/A-Nihao grids (arXiv:1411.5415) — behind the
//! same `SyncProtocol` trait the paper's randomized algorithms use. This
//! experiment races them head-to-head on one matched network (same seed,
//! same channel draws) and compares completion times *and* the energy
//! each protocol spent getting there: the deterministic rivals run tiny
//! duty cycles (a node is quiet in most slots), so their energy per
//! node-slot is far below the paper's always-on algorithms, while their
//! completion times are correspondingly longer — the latency/energy
//! trade the two literatures optimize from opposite ends.
//!
//! The network is a complete graph with full availability over a prime
//! universe, where the rivals' schedules provably align on every channel
//! (see `mmhew_rivals::mcdis`) — so every row completes and the CDF is
//! over clean samples.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_protocol;
use crate::plot::AsciiPlot;
use crate::table::{fmt_f64, Table};
use mmhew_engine::{EnergyModel, SyncRunConfig};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const N: usize = 8;
const UNIVERSE: u16 = 5;
const BUDGET: u64 = 400_000;

/// The head-to-head lineup: the paper's Algorithms 1–3 plus both rival
/// families, all as registered catalog names.
pub const LINEUP: &[&str] = &[
    "staged", "adaptive", "uniform", "mc-dis", "s-nihao", "a-nihao",
];

/// Empirical CDF of a sample vector as (x, F(x)) pairs.
fn cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len().max(1) as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e27");
    let reps = effort.pick(8, 40);
    let net = NetworkBuilder::complete(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("complete networks build");
    let delta_est = net.max_degree().max(1) as u64;
    let model = EnergyModel::default();
    let config = SyncRunConfig::until_complete(BUDGET);

    let mut table = Table::new(
        [
            "protocol",
            "mean slots",
            "p95 slots",
            "max slots",
            "energy/node/slot",
            "failures",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut plot = AsciiPlot::new(72, 16).log_x();
    let mut energy_rates: Vec<(String, f64)> = Vec::new();
    for (i, name) in LINEUP.iter().enumerate() {
        let kind = mmhew_rivals::catalog::by_name(name).expect("lineup names are registered");
        let m = measure_protocol(
            &net,
            kind,
            delta_est,
            None,
            config,
            &model,
            reps,
            seed.branch("proto").index(i as u64),
        );
        let s = m.summary();
        table.push_row(vec![
            (*name).to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.p95),
            fmt_f64(s.max),
            format!("{:.3}", m.mean_energy_rate()),
            m.failures.to_string(),
        ]);
        if !m.slots.is_empty() {
            plot.add_series(*name, cdf(&m.slots));
        }
        energy_rates.push(((*name).to_string(), m.mean_energy_rate()));
    }

    let mut report = ExperimentReport::new(
        "E27",
        "completion-time CDF: Algorithms 1-3 vs Mc-Dis vs Nihao, matched energy budgets",
        "the paper's randomized always-on algorithms complete orders of magnitude \
         faster; the deterministic duty-cycled rivals spend a fraction of the \
         energy per slot — neither dominates, they optimize different budgets",
        table,
    );
    report.figure(
        "empirical completion-time CDF (x = slots after T_s, log scale)",
        plot.render(),
    );
    report.note(format!(
        "complete N={N}, |U|={UNIVERSE}, full availability (prime universe: \
         the rivals' hop schedules provably cover every channel), reps={reps}, \
         budget={BUDGET}; energy model transmit={}, listen={}, quiet={}",
        model.transmit_cost, model.listen_cost, model.quiet_cost
    ));
    report.note(
        "matched budgets: every protocol sees the identical network and seeds; \
         the energy column is what each one paid per node-slot to get its CDF"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_completes_and_the_trade_off_holds() {
        let r = run(Effort::Quick, 27);
        assert_eq!(r.table.len(), LINEUP.len());
        let rows = r.table.rows();
        // The paper's algorithms never exhaust the budget here, and on a
        // prime universe with full availability neither do the rivals.
        for row in rows {
            assert_eq!(row[5], "0", "failures for {}", row[0]);
        }
        // The trade: mc-dis spends far less energy per node-slot than the
        // always-on staged algorithm...
        let staged_energy: f64 = rows[0][4].parse().expect("staged energy");
        let mcdis_energy: f64 = rows[3][4].parse().expect("mc-dis energy");
        assert!(
            mcdis_energy < staged_energy,
            "mc-dis {mcdis_energy} vs staged {staged_energy}"
        );
        // ...but takes longer to finish.
        let staged_mean: f64 = rows[0][1].parse().expect("staged mean");
        let mcdis_mean: f64 = rows[3][1].parse().expect("mc-dis mean");
        assert!(
            mcdis_mean > staged_mean,
            "mc-dis {mcdis_mean} vs staged {staged_mean}"
        );
    }
}
