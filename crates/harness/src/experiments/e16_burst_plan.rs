//! E16 — why Algorithm 4 repeats its beacon in every slot.
//!
//! The frame/slot structure is the paper's central asynchronous design
//! choice: a transmitting node repeats the beacon in each of the three
//! slots so that *any* aligned listener frame contains a complete copy.
//! This ablation replaces the plan with (a) a single slot per frame and
//! (b) one beacon spanning the whole frame, under misaligned ideal clocks
//! and under drifting clocks. The whole-frame variant collapses (an
//! equal-length misaligned window can never contain it); the single-slot
//! variant survives but pays in coverage opportunities.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_async;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{AsyncAlgorithm, AsyncParams};
use mmhew_engine::{AsyncRunConfig, AsyncStartSchedule, BurstPlan, ClockConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_time::{DriftBound, DriftModel, LocalDuration, RealDuration};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const FRAME_LEN: u64 = 3_000;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e16");
    let reps = effort.pick(8, 30);
    let budget = effort.pick(30_000, 120_000);

    let net = NetworkBuilder::grid(3, 3)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))
        .expect("grid is valid");
    let delta = net.max_degree().max(1) as u64;

    let plans: &[(&str, BurstPlan)] = &[
        ("every slot (paper)", BurstPlan::EverySlot),
        ("single slot", BurstPlan::SingleSlot { slot: 1 }),
        ("whole frame", BurstPlan::WholeFrame),
    ];
    let clock_settings: &[(&str, ClockConfig)] = &[
        (
            "ideal, misaligned",
            ClockConfig {
                drift: DriftModel::Ideal,
                offset_window: LocalDuration::from_nanos(FRAME_LEN * 10),
            },
        ),
        (
            "drift ≤1/7",
            ClockConfig {
                drift: DriftModel::RandomPiecewise {
                    bound: DriftBound::PAPER,
                    segment: RealDuration::from_nanos(FRAME_LEN * 5),
                },
                offset_window: LocalDuration::from_nanos(FRAME_LEN * 10),
            },
        ),
    ];

    let mut table = Table::new(
        ["clocks", "burst plan", "completed", "mean frames after Tₛ"]
            .map(String::from)
            .to_vec(),
    );
    for (ci, (clock_name, clocks)) in clock_settings.iter().enumerate() {
        for (pi, (plan_name, plan)) in plans.iter().enumerate() {
            let config = AsyncRunConfig::until_complete(budget)
                .with_frame_len(LocalDuration::from_nanos(FRAME_LEN))
                .with_clocks(clocks.clone())
                .with_starts(AsyncStartSchedule::Staggered {
                    window: RealDuration::from_nanos(FRAME_LEN * 10),
                })
                .with_burst_plan(*plan);
            let m = measure_async(
                &net,
                AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
                &config,
                reps,
                seed.branch("run").index(ci as u64).index(pi as u64),
            );
            let completed = reps - m.failures;
            table.push_row(vec![
                (*clock_name).into(),
                (*plan_name).into(),
                format!("{completed}/{reps}"),
                if m.frames.is_empty() {
                    "—".into()
                } else {
                    fmt_f64(m.frames_summary().mean)
                },
            ]);
        }
    }

    let mut report = ExperimentReport::new(
        "E16",
        "ablating Algorithm 4's repeat-in-every-slot beacon layout",
        "the frame/slot structure behind Lemmas 5 and 7",
        table,
    );
    report.note(
        "under ideal clocks relative frame phases are frozen forever: a whole-frame beacon \
         never fits a misaligned equal-length window, and a single fixed slot either fits a \
         given link's phase or never does — only the repeat-in-every-slot plan covers every \
         phase (Lemma 7's guarantee)",
    );
    report.note(
        "drift rescues the ablated plans by slowly sweeping the phases, but at a heavy \
         cost (whole-frame relies entirely on rare drift-induced nestings)",
    );
    report.note(format!(
        "grid 3x3, L={FRAME_LEN}ns, frame budget={budget}, reps={reps}"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_always_completes_whole_frame_stalls() {
        let r = run(Effort::Quick, 16);
        assert_eq!(r.table.len(), 6);
        // Row 0: ideal clocks, paper plan — all complete.
        let every_ideal = &r.table.rows()[0];
        assert!(every_ideal[2].starts_with(&format!("{}", 8)));
        // Row 2: ideal clocks, whole frame — nothing completes.
        let whole_ideal = &r.table.rows()[2];
        assert!(
            whole_ideal[2].starts_with("0/"),
            "whole-frame beacon should stall on misaligned ideal clocks: {whole_ideal:?}"
        );
    }
}
