//! E3 — Theorem 1's `max(S, Δ)/ρ` factor.
//!
//! Two sweeps on Algorithm 1:
//!
//! * growing `S` at fixed `Δ` (rings with ever larger homogeneous channel
//!   sets) — slots should grow ≈ linearly in `S`;
//! * growing `Δ` at fixed `S` (complete graphs of growing size) — slots
//!   should grow ≈ linearly in `Δ` once `Δ > S` (with a mild extra
//!   `log N` term since `N` grows alongside).

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::SeedTree;

const EPSILON: f64 = 0.01;

fn measure(net: &Network, delta_est: u64, reps: u64, seed: SeedTree) -> (f64, f64, f64) {
    let bounds = Bounds::from_network(net, delta_est, EPSILON);
    let m = measure_sync(
        net,
        SyncAlgorithm::Staged(SyncParams::new(delta_est).expect("positive")),
        &StartSchedule::Identical,
        SyncRunConfig::until_complete(bounds.theorem1_slots().ceil() as u64 * 4),
        reps,
        seed,
    );
    let s = m.summary();
    (s.mean, s.ci95_halfwidth(), bounds.theorem1_slots())
}

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e3");
    let reps = effort.pick(10, 40);
    let s_values: &[u16] = effort.pick(&[2, 4, 8, 16], &[2, 4, 8, 16, 32, 64]);
    let delta_values: &[usize] = effort.pick(&[3, 5, 9, 17], &[3, 5, 9, 17, 33]);

    let mut table = Table::new(
        [
            "sweep",
            "S",
            "Δ",
            "mean slots",
            "ci95",
            "bound",
            "mean/max(S,Δ)",
        ]
        .map(String::from)
        .to_vec(),
    );

    // Sweep 1: S grows, Δ = 2 fixed (ring of 16).
    for &s in s_values {
        let net = NetworkBuilder::ring(16)
            .universe(s)
            .build(seed.branch("s-net").index(s as u64))
            .expect("ring networks are always valid");
        let (mean, ci, bound) = measure(&net, 4, reps, seed.branch("s-run").index(s as u64));
        table.push_row(vec![
            "S↑".into(),
            s.to_string(),
            net.max_degree().to_string(),
            fmt_f64(mean),
            fmt_f64(ci),
            fmt_f64(bound),
            fmt_f64(mean / s.max(2) as f64),
        ]);
    }

    // Sweep 2: Δ grows, S = 4 fixed (complete graphs).
    for &n in delta_values {
        let net = NetworkBuilder::complete(n)
            .universe(4)
            .build(seed.branch("d-net").index(n as u64))
            .expect("complete networks are always valid");
        let delta = net.max_degree(); // n - 1
        let (mean, ci, bound) = measure(
            &net,
            delta as u64,
            reps,
            seed.branch("d-run").index(n as u64),
        );
        table.push_row(vec![
            "Δ↑".into(),
            "4".into(),
            delta.to_string(),
            fmt_f64(mean),
            fmt_f64(ci),
            fmt_f64(bound),
            fmt_f64(mean / delta.max(4) as f64),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E3",
        "completion slots vs channel-set size S and per-channel degree Δ",
        "Theorem 1: slots ∝ max(S, Δ)",
        table,
    );
    report.note(
        "the mean/max(S,Δ) column should be roughly flat within each sweep \
         (a mild upward drift in the Δ-sweep reflects the growing log N term)",
    );
    report.note(format!("ε={EPSILON}, reps={reps}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 3);
        assert_eq!(r.table.len(), 8);
    }

    #[test]
    fn s_sweep_grows_roughly_linearly() {
        let r = run(Effort::Quick, 17);
        let rows: Vec<&Vec<String>> = r.table.rows().iter().filter(|row| row[0] == "S↑").collect();
        let first: f64 = rows[0][3].parse().expect("mean");
        let last: f64 = rows[3][3].parse().expect("mean");
        // S grew 8x: expect meaningful growth (at least 3x) but not wildly
        // superlinear (at most 20x).
        assert!(last > first * 3.0, "S-sweep too flat: {first} -> {last}");
        assert!(
            last < first * 20.0,
            "S-sweep superlinear: {first} -> {last}"
        );
    }
}
