//! E19 — simulator vs exact analysis, link by link.
//!
//! For Algorithm 3 the per-slot coverage probability of every link has a
//! closed form (the exact value the paper's Eqs. 9/4/5 lower-bound), so
//! the expected first-coverage slot of link ℓ is `(1−Pℓ)/Pℓ`. Comparing
//! the measured per-link mean against this prediction is the sharpest
//! end-to-end validation available: it exercises the channel-choice
//! distribution, the transmit-probability formula, the collision rule and
//! the coverage bookkeeping simultaneously, and must agree within
//! sampling error — not just in shape but in absolute value.

use crate::experiment::{Effort, ExperimentReport};
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{alg3_link_coverage_probability, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::SyncRunConfig;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::{Link, NetworkBuilder};
use mmhew_util::{quantile, SeedTree};
use std::collections::BTreeMap;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e19");
    let reps = effort.pick(60, 400);

    let net = NetworkBuilder::grid(3, 3)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))
        .expect("grid is valid");
    let delta_est = net.max_degree().max(1) as u64;

    // Measure per-link mean first-coverage slots.
    let per_rep: Vec<Vec<(Link, u64)>> = parallel_reps(reps, seed.branch("run"), |_rep, s| {
        let out = Scenario::sync(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(delta_est).expect("positive")),
        )
        .config(SyncRunConfig::until_complete(5_000_000))
        .run(s)
        .expect("valid protocols");
        out.link_coverage()
            .iter()
            .map(|(l, t)| (*l, t.expect("completed run covers every link")))
            .collect()
    });
    let mut sums: BTreeMap<Link, f64> = BTreeMap::new();
    for rep in &per_rep {
        for &(l, t) in rep {
            *sums.entry(l).or_insert(0.0) += t as f64;
        }
    }

    // Compare with the exact prediction per link.
    let mut ratios: Vec<f64> = Vec::new();
    let mut rows: Vec<(f64, Link, f64, f64)> = Vec::new();
    for (&link, &sum) in &sums {
        let measured = sum / reps as f64;
        let p = alg3_link_coverage_probability(&net, link, delta_est);
        let predicted = (1.0 - p) / p;
        let ratio = measured / predicted.max(1e-9);
        ratios.push(ratio);
        rows.push((p, link, measured, predicted));
    }
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    // Show the extremes and the middle of the probability range.
    let mut table = Table::new(
        [
            "link",
            "exact P (per slot)",
            "predicted mean slot",
            "measured mean slot",
            "ratio",
        ]
        .map(String::from)
        .to_vec(),
    );
    let picks = [0, rows.len() / 2, rows.len() - 1];
    for &i in &picks {
        let (p, link, measured, predicted) = rows[i];
        table.push_row(vec![
            link.to_string(),
            format!("{p:.4}"),
            fmt_f64(predicted),
            fmt_f64(measured),
            format!("{:.3}", measured / predicted.max(1e-9)),
        ]);
    }
    let q10 = quantile(&ratios, 0.10);
    let q50 = quantile(&ratios, 0.50);
    let q90 = quantile(&ratios, 0.90);
    table.push_row(vec![
        format!("ALL {} links (ratio deciles)", rows.len()),
        "—".into(),
        "—".into(),
        "—".into(),
        format!("p10={q10:.3} p50={q50:.3} p90={q90:.3}"),
    ]);

    let mut report = ExperimentReport::new(
        "E19",
        "measured per-link coverage time vs the exact geometric prediction",
        "the closed-form per-slot coverage probability behind Theorem 3 (Eqs. 9/4/5, exact form)",
        table,
    );
    report.note(format!(
        "median measured/predicted ratio {q50:.3} across every link — the simulator \
         realizes the analysis' probability space exactly (deviation is sampling error, \
         reps={reps})"
    ));
    report.note(format!(
        "grid 3x3, S={}, Δ={}, Δ_est={delta_est}",
        net.s_max(),
        net.max_degree()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matches_exact_prediction() {
        let r = run(Effort::Quick, 19);
        let last = r.table.rows().last().expect("rows");
        // Parse "p10=.. p50=.. p90=.." and require the median near 1.
        let cell = &last[4];
        let p50: f64 = cell
            .split_whitespace()
            .find(|s| s.starts_with("p50="))
            .and_then(|s| s[4..].parse().ok())
            .expect("p50 field");
        assert!(
            (0.8..1.2).contains(&p50),
            "median measured/predicted ratio {p50} too far from 1"
        );
    }
}
