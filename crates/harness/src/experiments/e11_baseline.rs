//! E11 — the §I strawman comparison.
//!
//! The paper's introduction argues against extending single-channel
//! discovery by running one instance per *universal* channel: its running
//! time is linear in `|U|` even when every node's available set is tiny.
//! Here every node has the same 4 channels (`{0..4}`) while the universe
//! grows; the paper's algorithms don't care about `|U|` at all, while the
//! baseline slows down linearly.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_spectrum::{AvailabilityModel, ChannelSet};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const NODES: usize = 6;
const SET_SIZE: u16 = 4;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e11");
    let reps = effort.pick(10, 40);
    let universes: &[u16] = effort.pick(&[8, 16, 32, 64], &[8, 16, 32, 64, 128]);

    let mut table = Table::new(
        [
            "|U|",
            "Alg3 slots",
            "baseline slots",
            "baseline/Alg3",
            "baseline/|U|",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut ratios = Vec::new();
    for &u in universes {
        let shared: ChannelSet = (0..SET_SIZE).collect();
        let net = NetworkBuilder::complete(NODES)
            .universe(u)
            .availability(AvailabilityModel::Explicit(vec![shared; NODES]))
            .build(seed.branch("net").index(u as u64))
            .expect("explicit sets fit the universe");
        let delta = net.max_degree().max(1) as u64;
        let ours = measure_sync(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(500_000),
            reps,
            seed.branch("ours").index(u as u64),
        );
        let baseline = measure_sync(
            &net,
            SyncAlgorithm::PerChannelBirthday {
                tx_probability: 0.5,
            },
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(500_000),
            reps,
            seed.branch("baseline").index(u as u64),
        );
        let ours_mean = ours.summary().mean;
        let base_mean = baseline.summary().mean;
        ratios.push(base_mean / ours_mean.max(1e-9));
        table.push_row(vec![
            u.to_string(),
            fmt_f64(ours_mean),
            fmt_f64(base_mean),
            fmt_f64(base_mean / ours_mean.max(1e-9)),
            fmt_f64(base_mean / u as f64),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E11",
        "paper's algorithm vs per-universal-channel birthday strawman as |U| grows",
        "§I: the strawman's time is linear in |U|; ours depends only on the available sets",
        table,
    );
    report.note(format!(
        "baseline/Alg3 advantage grows from {:.1}x to {:.1}x as the universe widens — \
         who wins and the linear-in-|U| shape match the paper's argument",
        ratios.first().copied().unwrap_or(0.0),
        ratios.last().copied().unwrap_or(0.0),
    ));
    report.note(format!(
        "complete graph of {NODES}, every node owns the same {SET_SIZE} channels, reps={reps}"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_is_flat_while_baseline_grows() {
        let r = run(Effort::Quick, 11);
        assert_eq!(r.table.len(), 4);
        let ours_first: f64 = r.table.rows()[0][1].parse().expect("ours");
        let ours_last: f64 = r.table.rows()[3][1].parse().expect("ours");
        let base_first: f64 = r.table.rows()[0][2].parse().expect("base");
        let base_last: f64 = r.table.rows()[3][2].parse().expect("base");
        // |U| grew 8x: ours stays put, baseline grows several-fold.
        assert!(
            ours_last < ours_first * 2.0,
            "our algorithm should not depend on |U|: {ours_first} -> {ours_last}"
        );
        assert!(
            base_last > base_first * 3.0,
            "baseline should scale with |U|: {base_first} -> {base_last}"
        );
    }
}
