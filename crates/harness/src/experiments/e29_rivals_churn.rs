//! E29 — rival protocols under Poisson churn: staleness of the
//! continuously-maintained neighbor tables.
//!
//! E22 established the staleness baseline for the paper's Algorithm 3
//! under churn; this experiment puts the deterministic rivals through
//! the identical pipeline. Each catalog stack is wrapped per node in
//! [`ContinuousDiscovery`] (re-announce + stale-entry eviction) and run
//! over a churning grid. The rivals' low duty cycles cut both ways
//! here: a rejoining neighbor is only re-heard when the deterministic
//! schedules next align, so missing-entry staleness lags the randomized
//! algorithm's, while ghost eviction — a pure timeout — behaves the
//! same for everyone.

use crate::experiment::{Effort, ExperimentReport};
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{staleness, ContinuousConfig, ContinuousDiscovery};
use mmhew_dynamics::{poisson_churn, ChurnConfig, DynamicsSchedule};
use mmhew_engine::{SyncEngine, SyncProtocol, SyncRunConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::{NetworkBuilder, NodeId};
use mmhew_util::{SeedTree, Summary};

/// Steady-state re-announce period of the continuous wrapper.
const REANNOUNCE: u64 = 16;
/// Slots without a beacon before a neighbor is evicted.
const STALE_TIMEOUT: u64 = 400;
/// Slots between staleness samples.
const SAMPLE_EVERY: u64 = 25;
/// Expected absence duration of a churned node.
const MEAN_DOWNTIME: f64 = 600.0;
/// Poisson departure rate per node per slot when churn is on.
const CHURN_RATE: f64 = 0.005;

/// The protocols compared: the paper's Algorithm 3 plus one entry from
/// each rival family.
const LINEUP: &[&str] = &["uniform", "mc-dis", "s-nihao"];

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e29");
    let reps = effort.pick(3, 12);
    let horizon = effort.pick(6_000, 20_000);
    let warmup = horizon / 3;
    let net = NetworkBuilder::grid(3, 3)
        .universe(4)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))
        .expect("grid builds");
    let delta = net.max_degree().max(1) as u64;
    let continuous = ContinuousConfig::new(REANNOUNCE, STALE_TIMEOUT).expect("positive periods");
    let links = net.links().len();

    let mut table = Table::new(
        [
            "protocol",
            "churn rate",
            "mean missing",
            "mean ghosts",
            "mean total",
            "stale fraction",
            "peak total",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (pi, name) in LINEUP.iter().enumerate() {
        let kind = mmhew_rivals::catalog::by_name(name).expect("lineup names are registered");
        for (k, &rate) in [0.0, CHURN_RATE].iter().enumerate() {
            let row_seed = seed.branch("run").index((pi * 2 + k) as u64);
            let runs = parallel_reps(reps, row_seed, |_rep, rep_seed| {
                let schedule = if rate > 0.0 {
                    DynamicsSchedule::new(poisson_churn(
                        &net,
                        horizon,
                        &ChurnConfig {
                            rate,
                            mean_downtime: MEAN_DOWNTIME,
                        },
                        rep_seed.branch("churn"),
                    ))
                } else {
                    DynamicsSchedule::empty()
                };
                let protocols: Vec<Box<dyn SyncProtocol>> = kind
                    .build_sync(&net, delta)
                    .expect("catalog stack builds")
                    .into_iter()
                    .enumerate()
                    .map(|(i, inner)| {
                        let available = net.available(NodeId::new(i as u32)).to_owned();
                        Box::new(
                            ContinuousDiscovery::new(inner, available, continuous)
                                .expect("non-empty channel sets"),
                        ) as Box<dyn SyncProtocol>
                    })
                    .collect();
                let config = SyncRunConfig::fixed(horizon);
                let mut engine = SyncEngine::new(
                    &net,
                    protocols,
                    vec![0; net.node_count()],
                    rep_seed.branch("engine"),
                )
                .with_dynamics(schedule);
                let (mut missing, mut ghosts, mut peak, mut samples) =
                    (0.0f64, 0.0f64, 0usize, 0u64);
                for slot in 0..horizon {
                    engine.step(&config);
                    if slot >= warmup && slot % SAMPLE_EVERY == 0 {
                        let r = staleness(engine.network(), &engine.tables_snapshot());
                        missing += r.missing as f64;
                        ghosts += r.ghosts as f64;
                        peak = peak.max(r.total());
                        samples += 1;
                    }
                }
                let samples = samples.max(1) as f64;
                (missing / samples, ghosts / samples, peak)
            });
            let missing = Summary::from_samples(&runs.iter().map(|r| r.0).collect::<Vec<_>>()).mean;
            let ghosts = Summary::from_samples(&runs.iter().map(|r| r.1).collect::<Vec<_>>()).mean;
            let peak = runs.iter().map(|r| r.2).max().unwrap_or(0);
            table.push_row(vec![
                (*name).to_string(),
                format!("{rate}"),
                fmt_f64(missing),
                fmt_f64(ghosts),
                fmt_f64(missing + ghosts),
                fmt_f64((missing + ghosts) / links as f64),
                peak.to_string(),
            ]);
        }
    }

    let mut report = ExperimentReport::new(
        "E29",
        "neighbor-table staleness under Poisson churn: Algorithm 3 vs the rivals",
        "ghost eviction is timeout-bound for every protocol, but re-discovery of \
         rejoining neighbors tracks each protocol's meeting rate — the duty-cycled \
         rivals carry more missing entries at the same churn rate",
        table,
    );
    report.note(format!(
        "3x3 grid, |U|=4, |A(u)|=3, ContinuousDiscovery wrapper on every \
         protocol, reannounce={REANNOUNCE}, stale_timeout={STALE_TIMEOUT}, \
         churn rate {CHURN_RATE} with mean downtime={MEAN_DOWNTIME} slots, \
         horizon={horizon} (warm-up {warmup}), sampled every {SAMPLE_EVERY} \
         slots, reps={reps}; {links} directed links total"
    ));
    report.note(
        "heterogeneous subsets void the rivals' deterministic coverage guarantee \
         (see mmhew-rivals docs), so their static-network staleness is a floor, \
         not a bug"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_rows_are_finite_and_churn_hurts_the_paper_algorithm() {
        let r = run(Effort::Quick, 29);
        assert_eq!(r.table.len(), LINEUP.len() * 2);
        let rows = r.table.rows();
        for row in rows {
            let total: f64 = row[4].parse().expect("total column");
            assert!(
                total.is_finite() && total >= 0.0,
                "{}: total {total}",
                row[0]
            );
        }
        // Algorithm 3's rows mirror E22: churn strictly worsens staleness.
        let static_total: f64 = rows[0][4].parse().expect("uniform static");
        let churned_total: f64 = rows[1][4].parse().expect("uniform churned");
        assert!(
            churned_total > static_total,
            "churn {churned_total} vs static {static_total}"
        );
    }
}
