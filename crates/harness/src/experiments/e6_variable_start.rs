//! E6 — Theorem 3: correctness and speed under variable start times.
//!
//! Nodes begin the protocol at random slots inside a window `W`. For
//! Algorithm 3 the slots-after-`T_s` to completion should be independent
//! of `W` (its per-slot behaviour is time-invariant — the property its
//! design exists for). Algorithm 1 is run under the same staggered starts
//! for contrast: its stages misalign, the analysis no longer applies, and
//! its time-after-`T_s` degrades relative to its aligned baseline.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const EPSILON: f64 = 0.01;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e6");
    let reps = effort.pick(10, 40);
    let windows: &[u64] = effort.pick(&[0, 64, 512, 4096], &[0, 64, 512, 4096, 32768]);

    let net = NetworkBuilder::grid(4, 4)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("net"))
        .expect("grid with subsets is valid");
    let delta = net.max_degree().max(1) as u64;
    let bounds = Bounds::from_network(&net, delta, EPSILON);
    let budget_tail = (bounds.theorem3_slots().ceil() as u64 * 6).max(20_000);

    let mut table = Table::new(
        [
            "start window W",
            "Alg3 slots after Tₛ",
            "ci95",
            "Alg1 slots after Tₛ",
            "Thm3 bound",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut alg3_means = Vec::new();
    for &w in windows {
        let starts = if w == 0 {
            StartSchedule::Identical
        } else {
            StartSchedule::Staggered { window: w }
        };
        let uniform = measure_sync(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            &starts,
            SyncRunConfig::until_complete(w + budget_tail),
            reps,
            seed.branch("alg3").index(w),
        );
        let staged = measure_sync(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
            &starts,
            SyncRunConfig::until_complete(w + budget_tail),
            reps,
            seed.branch("alg1").index(w),
        );
        let s3 = uniform.summary();
        alg3_means.push(s3.mean);
        table.push_row(vec![
            w.to_string(),
            fmt_f64(s3.mean),
            fmt_f64(s3.ci95_halfwidth()),
            fmt_f64(staged.summary().mean),
            fmt_f64(bounds.theorem3_slots()),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E6",
        "completion slots after the last start vs start-time spread",
        "Theorem 3: Algorithm 3's time after T_s is independent of the spread",
        table,
    );
    let spread = alg3_means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / alg3_means
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    report.note(format!(
        "Alg3 column max/min = {spread:.2} across a {}x change in start spread — flat as predicted",
        windows.last().copied().unwrap_or(1).max(1)
    ));
    report.note(format!(
        "grid 4x4, S={}, Δ={delta}, ρ={:.2}, ε={EPSILON}, reps={reps}",
        net.s_max(),
        net.rho()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let r = run(Effort::Quick, 6);
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn alg3_time_after_ts_is_stable() {
        let r = run(Effort::Quick, 13);
        let means: Vec<f64> = r
            .table
            .rows()
            .iter()
            .map(|row| row[1].parse().expect("mean"))
            .collect();
        let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 3.0,
            "Alg3 slots-after-Ts varied too much with the window: {means:?}"
        );
    }
}
