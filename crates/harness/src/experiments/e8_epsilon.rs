//! E8 — success-probability calibration.
//!
//! Theorem 1 promises: run for the bound's slot count and fail with
//! probability at most `ε`. We run Algorithm 1 with a budget of *exactly*
//! the theorem's slot count for several `ε` and measure the empirical
//! failure rate, which must come in at or below `ε` (typically far below —
//! the constants are conservative). The mean completion time should grow
//! ∝ `ln(1/ε)`-ish through the `ln(N²/ε)` factor.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const N: usize = 12;
const UNIVERSE: u16 = 4;
const DELTA_EST: u64 = 4;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e8");
    let reps = effort.pick(20, 200);
    let epsilons: &[f64] = &[0.5, 0.1, 0.01];

    let net = NetworkBuilder::ring(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("ring networks are always valid");

    let mut table = Table::new(
        [
            "ε",
            "budget = Thm1 bound",
            "empirical failure rate",
            "mean slots (completed)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut ok = true;
    for (k, &eps) in epsilons.iter().enumerate() {
        let bounds = Bounds::from_network(&net, DELTA_EST, eps);
        let budget = bounds.theorem1_slots().ceil() as u64;
        let m = measure_sync(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(DELTA_EST).expect("positive")),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(budget),
            reps,
            seed.branch("run").index(k as u64),
        );
        if m.failure_rate() > eps {
            ok = false;
        }
        table.push_row(vec![
            eps.to_string(),
            budget.to_string(),
            fmt_f64(m.failure_rate()),
            fmt_f64(m.summary().mean),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E8",
        "empirical failure probability at the theorem's slot budget",
        "Theorem 1: Pr[not done within the bound] ≤ ε",
        table,
    );
    report.note(if ok {
        "all empirical failure rates are at or below their ε — the bound holds \
         (with room to spare; the constant 16 is conservative)"
            .to_string()
    } else {
        "WARNING: an empirical failure rate exceeded ε".to_string()
    });
    report.note(format!(
        "ring N={N}, S={UNIVERSE}, Δ_est={DELTA_EST}, reps={reps}"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rates_respect_epsilon() {
        let r = run(Effort::Quick, 8);
        assert_eq!(r.table.len(), 3);
        for row in r.table.rows() {
            let eps: f64 = row[0].parse().expect("eps");
            let rate: f64 = row[2].parse().expect("rate");
            assert!(
                rate <= eps,
                "failure rate {rate} exceeded ε={eps} at the theorem budget"
            );
        }
    }
}
