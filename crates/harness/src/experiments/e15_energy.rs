//! E15 — energy-to-completion ablation.
//!
//! Discovery latency is only half the deployment story: nodes pay for
//! every active slot. This experiment measures total network energy to
//! completion under a standard radio cost model (tx > rx ≫ idle) for
//! Algorithms 1/2/3 and the strawman baseline, plus Algorithm 3's
//! energy as its degree estimate loosens — where a looser estimate
//! *lowers* the duty cycle (p = |A|/Δ_est shrinks) but lengthens the run,
//! exposing a latency/energy trade-off the paper's analysis does not
//! capture.

use crate::experiment::{Effort, ExperimentReport};
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::{EnergyModel, SyncRunConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::Histogram;
use mmhew_util::{SeedTree, Summary};

fn measure_energy(
    net: &Network,
    alg: SyncAlgorithm,
    reps: u64,
    seed: SeedTree,
) -> (Summary, Summary, Vec<f64>) {
    let model = EnergyModel::default();
    let results = parallel_reps(reps, seed, |_rep, s| {
        let out = Scenario::sync(net, alg)
            .config(SyncRunConfig::until_complete(3_000_000))
            .run(s)
            .expect("valid protocols");
        let per_node: Vec<f64> = out.action_counts().iter().map(|c| model.cost(c)).collect();
        (
            out.slots_to_complete().expect("completed") as f64,
            out.total_energy(&model),
            per_node,
        )
    });
    let slots: Vec<f64> = results.iter().map(|(s, _, _)| *s).collect();
    let energy: Vec<f64> = results.iter().map(|(_, e, _)| *e).collect();
    let per_node: Vec<f64> = results
        .iter()
        .flat_map(|(_, _, p)| p.iter().copied())
        .collect();
    (
        Summary::from_samples(&slots),
        Summary::from_samples(&energy),
        per_node,
    )
}

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e15");
    let reps = effort.pick(10, 40);

    let net = NetworkBuilder::grid(4, 4)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("net"))
        .expect("grid is valid");
    let delta = net.max_degree().max(1) as u64;

    let mut table = Table::new(
        ["algorithm", "mean slots", "mean energy", "energy/slot/node"]
            .map(String::from)
            .to_vec(),
    );
    let n = net.node_count() as f64;
    let algorithms: Vec<(String, SyncAlgorithm)> = vec![
        (
            "Alg1 (Δ_est=Δ)".into(),
            SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
        ),
        ("Alg2 (adaptive)".into(), SyncAlgorithm::Adaptive),
        (
            "Alg3 (Δ_est=Δ)".into(),
            SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
        ),
        (
            format!("Alg3 (Δ_est=8Δ={})", 8 * delta),
            SyncAlgorithm::Uniform(SyncParams::new(8 * delta).expect("positive")),
        ),
        (
            format!("Alg3 (Δ_est=32Δ={})", 32 * delta),
            SyncAlgorithm::Uniform(SyncParams::new(32 * delta).expect("positive")),
        ),
        (
            "strawman baseline".into(),
            SyncAlgorithm::PerChannelBirthday {
                tx_probability: 0.5,
            },
        ),
    ];
    let mut alg3_per_node: Vec<f64> = Vec::new();
    for (i, (name, alg)) in algorithms.iter().enumerate() {
        let (slots, energy, per_node) =
            measure_energy(&net, *alg, reps, seed.branch("run").index(i as u64));
        if i == 2 {
            alg3_per_node = per_node;
        }
        table.push_row(vec![
            name.clone(),
            fmt_f64(slots.mean),
            fmt_f64(energy.mean),
            fmt_f64(energy.mean / slots.mean.max(1.0) / n),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E15",
        "total network energy to discovery completion (tx=1.0, rx=0.7, idle=0.01 per slot)",
        "deployment-cost ablation: latency and energy rank algorithms differently",
        table,
    );
    report.note(
        "loosening Alg3's estimate cuts the per-slot duty cycle (cheaper slots) but \
         lengthens the run — energy grows more slowly than latency",
    );
    report.note(
        "the baseline's idle round-robin slots are cheap individually but it holds every \
         node active for a |U|-times longer schedule",
    );
    report.note(format!(
        "grid 4x4, S={}, Δ={delta}, reps={reps}",
        net.s_max()
    ));
    if !alg3_per_node.is_empty() {
        let hi = alg3_per_node
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            * 1.01;
        let mut hist = Histogram::new(0.0, hi.max(1.0), 12);
        for &e in &alg3_per_node {
            hist.record(e);
        }
        report.figure(
            "per-node energy distribution, Alg3 (Δ_est=Δ)",
            hist.render_ascii(40),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_report_shape() {
        let r = run(Effort::Quick, 15);
        assert_eq!(r.table.len(), 6);
        for row in r.table.rows() {
            let slots: f64 = row[1].parse().expect("slots");
            let energy: f64 = row[2].parse().expect("energy");
            assert!(slots > 0.0 && energy > 0.0, "{row:?}");
        }
    }

    #[test]
    fn loose_estimate_raises_latency_more_than_energy() {
        let r = run(Effort::Quick, 152);
        let tight = &r.table.rows()[2]; // Alg3 Δ_est=Δ
        let loose = &r.table.rows()[4]; // Alg3 Δ_est=32Δ
        let slots_ratio: f64 =
            loose[1].parse::<f64>().expect("slots") / tight[1].parse::<f64>().expect("slots");
        let energy_ratio: f64 =
            loose[2].parse::<f64>().expect("energy") / tight[2].parse::<f64>().expect("energy");
        assert!(slots_ratio > 2.0, "loose estimate should be much slower");
        assert!(
            energy_ratio < slots_ratio,
            "energy must grow more slowly than latency ({energy_ratio:.2} vs {slots_ratio:.2})"
        );
    }
}
