//! F-CDF — link-coverage time distribution.
//!
//! The figure-style series: the empirical CDF of per-link first-coverage
//! times for Algorithms 1, 3 and 4 on the same network. Because the last
//! few links dominate completion (a coupon-collector effect over links),
//! the CDF has a long right tail: the median link is covered many times
//! faster than the slowest one. Reported as deciles.

use crate::experiment::{Effort, ExperimentReport};
use crate::plot::AsciiPlot;
use crate::sweep::parallel_reps;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{AsyncAlgorithm, AsyncParams, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::{AsyncRunConfig, SyncRunConfig};
use mmhew_time::LocalDuration;
use mmhew_topology::NetworkBuilder;
use mmhew_util::{quantile, SeedTree};

const FRAME_LEN: u64 = 3_000;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("fcdf");
    let reps = effort.pick(8, 30);

    let net = NetworkBuilder::ring(16)
        .universe(4)
        .build(seed.branch("net"))
        .expect("ring networks are always valid");
    let delta = net.max_degree().max(1) as u64;

    let sync_cover = |alg: SyncAlgorithm, tag: &str| -> Vec<f64> {
        parallel_reps(reps, seed.branch(tag), |_rep, s| {
            let out = Scenario::sync(&net, alg)
                .config(SyncRunConfig::until_complete(1_000_000))
                .run(s)
                .expect("run");
            out.link_coverage()
                .iter()
                .filter_map(|(_, t)| t.map(|v| v as f64))
                .collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };

    let staged = sync_cover(
        SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
        "alg1",
    );
    let uniform = sync_cover(
        SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
        "alg3",
    );
    let frames: Vec<f64> = parallel_reps(reps, seed.branch("alg4"), |_rep, s| {
        let out = Scenario::asynchronous(
            &net,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
        )
        .config(
            AsyncRunConfig::until_complete(1_000_000)
                .with_frame_len(LocalDuration::from_nanos(FRAME_LEN)),
        )
        .run(s)
        .expect("run");
        out.link_coverage()
            .iter()
            .filter_map(|(_, t)| t.map(|v| v.as_nanos() as f64 / FRAME_LEN as f64))
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();

    let mut table = Table::new(
        [
            "algorithm (unit)",
            "p10",
            "p25",
            "p50",
            "p75",
            "p90",
            "p99",
            "max",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (name, data) in [
        ("Alg 1 (slots)", &staged),
        ("Alg 3 (slots)", &uniform),
        ("Alg 4 (frames)", &frames),
    ] {
        table.push_row(vec![
            name.into(),
            fmt_f64(quantile(data, 0.10)),
            fmt_f64(quantile(data, 0.25)),
            fmt_f64(quantile(data, 0.50)),
            fmt_f64(quantile(data, 0.75)),
            fmt_f64(quantile(data, 0.90)),
            fmt_f64(quantile(data, 0.99)),
            fmt_f64(quantile(data, 1.0)),
        ]);
    }

    let mut report = ExperimentReport::new(
        "F-CDF",
        "per-link first-coverage time distribution (deciles)",
        "coupon-collector tail over links: completion is dominated by the slowest link",
        table,
    );
    let tail = quantile(&uniform, 1.0) / quantile(&uniform, 0.5).max(1e-9);
    report.note(format!(
        "Alg 3's slowest link takes {tail:.1}x the median link — the long tail that makes \
         the union bound over N² links the right analysis tool"
    ));
    report.note(format!("ring of 16, 4 channels, reps={reps}"));
    let mut plot = AsciiPlot::new(56, 14);
    for (name, data) in [("Alg 1", &staged), ("Alg 3", &uniform), ("Alg 4", &frames)] {
        let cdf = mmhew_util::ecdf(data);
        // Thin the curve for plotting.
        let step = (cdf.len() / 80).max(1);
        plot.add_series(name, cdf.into_iter().step_by(step).collect());
    }
    report.figure("empirical CDF of per-link coverage time", plot.render());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_rows_are_monotone_with_long_tails() {
        let r = run(Effort::Quick, 15);
        assert_eq!(r.table.len(), 3);
        for row in r.table.rows() {
            let vals: Vec<f64> = row[1..]
                .iter()
                .map(|c| c.parse().expect("numeric"))
                .collect();
            for pair in vals.windows(2) {
                assert!(
                    pair[0] <= pair[1] + 1e-9,
                    "deciles must be monotone: {row:?}"
                );
            }
            // Long tail: max well above median.
            assert!(vals[6] > vals[2] * 1.5, "expected a tail in {row:?}");
        }
    }
}
