//! E1 — Theorem 1's `log(N/ε)` dependence.
//!
//! Rings keep `Δ = 2` and `ρ = 1` constant while `N` grows, so Theorem 1
//! predicts completion slots grow only logarithmically in `N`. We sweep
//! `N` over powers of two and report the measured mean alongside the
//! theorem's bound; the measured/`ln(N²/ε)` column should stay roughly
//! flat.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_sync;
use crate::plot::AsciiPlot;
use crate::table::{fmt_f64, Table};
use mmhew_discovery::{Bounds, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const EPSILON: f64 = 0.01;
const UNIVERSE: u16 = 4;
const DELTA_EST: u64 = 4;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e1");
    let reps = effort.pick(10, 40);
    let sizes: &[usize] = effort.pick(&[8, 16, 32, 64], &[8, 16, 32, 64, 128, 256]);

    let mut table = Table::new(
        [
            "N",
            "mean slots",
            "ci95",
            "p95",
            "bound (Thm 1)",
            "mean/ln(N²/ε)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut normalized = Vec::new();
    let mut measured_curve = Vec::new();
    let mut bound_curve = Vec::new();
    for &n in sizes {
        let net = NetworkBuilder::ring(n)
            .universe(UNIVERSE)
            .build(seed.branch("net").index(n as u64))
            .expect("ring networks are always valid");
        let bounds = Bounds::from_network(&net, DELTA_EST, EPSILON);
        let m = measure_sync(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(DELTA_EST).expect("positive")),
            &StartSchedule::Identical,
            SyncRunConfig::until_complete(bounds.theorem1_slots().ceil() as u64 * 4),
            reps,
            seed.branch("run").index(n as u64),
        );
        let s = m.summary();
        let norm = s.mean / bounds.ln_n2_over_eps();
        normalized.push(norm);
        measured_curve.push((n as f64, s.mean));
        bound_curve.push((n as f64, bounds.theorem1_slots()));
        table.push_row(vec![
            n.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.ci95_halfwidth()),
            fmt_f64(s.p95),
            fmt_f64(bounds.theorem1_slots()),
            fmt_f64(norm),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E1",
        "completion slots vs network size N (ring, Δ=2, ρ=1)",
        "Theorem 1: O((max(S,Δ)/ρ)·log Δ_est·log(N/ε))",
        table,
    );
    let spread = normalized.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / normalized
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    report.note(format!(
        "normalized column max/min = {:.2}; ≲2 indicates the predicted logarithmic shape",
        spread
    ));
    report.note(format!(
        "ε={EPSILON}, Δ_est={DELTA_EST}, universe={UNIVERSE}, reps={reps}"
    ));
    let mut plot = AsciiPlot::new(56, 12).log_x().log_y();
    plot.add_series("measured mean", measured_curve);
    plot.add_series("Theorem 1 bound", bound_curve);
    report.figure("completion slots vs N (log-log)", plot.render());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_shapely_report() {
        let r = run(Effort::Quick, 12345);
        assert_eq!(r.id, "E1");
        assert_eq!(r.table.len(), 4);
        assert!(!r.notes.is_empty());
        // Mean slots must be positive and below the theorem bound.
        for row in r.table.rows() {
            let mean: f64 = row[1].parse().expect("numeric mean");
            let bound: f64 = row[4].parse().expect("numeric bound");
            assert!(mean > 0.0);
            assert!(mean < bound, "mean {mean} should sit below bound {bound}");
        }
    }

    #[test]
    fn growth_is_sublinear_in_n() {
        let r = run(Effort::Quick, 777);
        let first: f64 = r.table.rows()[0][1].parse().expect("mean");
        let last: f64 = r.table.rows()[3][1].parse().expect("mean");
        // N grows 8x; a logarithmic quantity grows far less than 4x.
        assert!(
            last < first * 4.0,
            "mean grew {first} -> {last}, too fast for log(N)"
        );
    }
}
