//! E9 — Monte-Carlo verification of the structural frame lemmas.
//!
//! * **Lemma 4**: with drift `δ ≤ 1/7`, a frame of one node overlaps at
//!   most 3 frames of any other node. Checked over random drifting clocks
//!   and offsets; also shown to *fail* at `δ = 1/2 > 1/3`, demonstrating
//!   the bound is load-bearing.
//! * **Lemma 7**: after any instant `T`, among the next two full frames of
//!   each of two nodes, some pair is aligned. Checked likewise, with
//!   failures demonstrated at `δ = 1/2 > 1/7`.

use crate::experiment::{Effort, ExperimentReport};
use crate::sweep::parallel_reps;
use crate::table::Table;
use mmhew_time::{
    admissible_sequence, check_admissible, find_aligned_pair_after, overlapping_frames, DriftBound,
    DriftModel, DriftedClock, FrameSchedule, LocalDuration, LocalTime, Rate, RealDuration,
    RealTime,
};
use mmhew_util::SeedTree;
use rand::Rng;

const FRAME_LEN: u64 = 3_000;

/// One trial: random pair of clocks and schedules; returns
/// `(lemma4_violation, lemma7_violation)`.
fn trial(seed: SeedTree, drift_v: &DriftModel, drift_u: &DriftModel) -> (bool, bool) {
    let mut rng = seed.branch("cfg").rng();
    let offset_v = LocalTime::from_nanos(rng.gen_range(0..3 * FRAME_LEN));
    let offset_u = LocalTime::from_nanos(rng.gen_range(0..3 * FRAME_LEN));
    let mut clock_v = DriftedClock::new(drift_v.clone(), offset_v, seed.branch("v"));
    let mut clock_u = DriftedClock::new(drift_u.clone(), offset_u, seed.branch("u"));
    let sched_v = FrameSchedule::new(offset_v, LocalDuration::from_nanos(FRAME_LEN));
    let sched_u = FrameSchedule::new(offset_u, LocalDuration::from_nanos(FRAME_LEN));

    // Lemma 4 over a window of frames of v.
    let mut lemma4_violated = false;
    for i in 0..12 {
        let f = sched_v.frame_interval(i, &mut clock_v);
        let overlaps = overlapping_frames(&f, &sched_u, &mut clock_u, 200);
        if overlaps.len() > 3 {
            lemma4_violated = true;
            break;
        }
    }

    // Lemma 7 at several random instants.
    let mut lemma7_violated = false;
    for _ in 0..6 {
        let t = RealTime::from_nanos(rng.gen_range(0..20 * FRAME_LEN));
        if find_aligned_pair_after(t, &sched_v, &mut clock_v, &sched_u, &mut clock_u, 2).is_none() {
            lemma7_violated = true;
            break;
        }
    }
    (lemma4_violated, lemma7_violated)
}

fn count_violations(
    trials: u64,
    seed: SeedTree,
    drift_v: &DriftModel,
    drift_u: &DriftModel,
) -> (u64, u64) {
    let results = parallel_reps(trials, seed, |_rep, s| trial(s, drift_v, drift_u));
    let l4 = results.iter().filter(|(v4, _)| *v4).count() as u64;
    let l7 = results.iter().filter(|(_, v7)| *v7).count() as u64;
    (l4, l7)
}

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e9");
    let trials = effort.pick(300, 3_000);

    let mut table = Table::new(
        [
            "drift model",
            "δ",
            "trials",
            "Lemma 4 violations",
            "Lemma 7 violations",
        ]
        .map(String::from)
        .to_vec(),
    );

    // Within Assumption 1: several behaviours (including the worst
    // relative drift, one node at +1/7 against one at −1/7), all must be
    // violation-free.
    let admissible: &[(&str, DriftModel, DriftModel)] = &[
        ("ideal", DriftModel::Ideal, DriftModel::Ideal),
        (
            "opposed extremes +1/7 vs −1/7",
            DriftModel::Constant(Rate::new(8, 7)),
            DriftModel::Constant(Rate::new(6, 7)),
        ),
        (
            "opposed extremes −1/7 vs +1/7",
            DriftModel::Constant(Rate::new(6, 7)),
            DriftModel::Constant(Rate::new(8, 7)),
        ),
        (
            "alternating ±1/7 vs ideal",
            DriftModel::Alternating {
                first: Rate::new(8, 7),
                second: Rate::new(6, 7),
                period: RealDuration::from_nanos(FRAME_LEN * 2),
            },
            DriftModel::Ideal,
        ),
        (
            "random ≤1/7 both",
            DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_nanos(FRAME_LEN / 2),
            },
            DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_nanos(FRAME_LEN / 3),
            },
        ),
    ];
    let mut all_clean = true;
    for (i, (name, model_v, model_u)) in admissible.iter().enumerate() {
        let (l4, l7) =
            count_violations(trials, seed.branch("ok").index(i as u64), model_v, model_u);
        if l4 + l7 > 0 {
            all_clean = false;
        }
        table.push_row(vec![
            (*name).into(),
            "≤1/7".into(),
            trials.to_string(),
            l4.to_string(),
            l7.to_string(),
        ]);
    }

    // Beyond the assumption: one node at drift −3/5 against one at +3/5 —
    // both lemmas must break somewhere (the slow node's frame spans 4 of
    // the fast node's frames, and its slots dwarf the fast frames).
    let (l4_bad, l7_bad) = count_violations(
        trials,
        seed.branch("bad"),
        &DriftModel::Constant(Rate::new(2, 5)),
        &DriftModel::Constant(Rate::new(8, 5)),
    );
    table.push_row(vec![
        "opposed ±3/5 (exceeds bound)".into(),
        "3/5".into(),
        trials.to_string(),
        l4_bad.to_string(),
        l7_bad.to_string(),
    ]);

    // Lemma 8: the proof's construction must yield an admissible sequence
    // of length ≥ M/6 under random admissible clocks.
    let lemma8_trials = trials / 3;
    let window_frames = 60u64;
    let lemma8_failures: u64 = parallel_reps(lemma8_trials, seed.branch("lemma8"), |_rep, s| {
        let model = DriftModel::RandomPiecewise {
            bound: DriftBound::PAPER,
            segment: RealDuration::from_nanos(FRAME_LEN / 2),
        };
        let mut rng = s.branch("cfg").rng();
        let off_v = LocalTime::from_nanos(rng.gen_range(0..2 * FRAME_LEN));
        let off_u = LocalTime::from_nanos(rng.gen_range(0..2 * FRAME_LEN));
        let mut cv = DriftedClock::new(model.clone(), off_v, s.branch("v"));
        let mut cu = DriftedClock::new(model, off_u, s.branch("u"));
        let sv = FrameSchedule::new(off_v, LocalDuration::from_nanos(FRAME_LEN));
        let su = FrameSchedule::new(off_u, LocalDuration::from_nanos(FRAME_LEN));
        let seq = admissible_sequence(RealTime::ZERO, &sv, &mut cv, &su, &mut cu, window_frames);
        let long_enough = seq.len() as u64 >= window_frames / 6;
        let valid = check_admissible(&seq, &sv, &mut cv, &su, &mut cu).is_none();
        u64::from(!(long_enough && valid))
    })
    .into_iter()
    .sum();
    table.push_row(vec![
        "Lemma 8 construction (random ≤1/7)".into(),
        "≤1/7".into(),
        lemma8_trials.to_string(),
        "—".into(),
        lemma8_failures.to_string(),
    ]);

    let mut report = ExperimentReport::new(
        "E9",
        "Monte-Carlo check of the frame-overlap and alignment lemmas",
        "Lemma 4 (≤3 overlapping frames), Lemma 7 (aligned pair within 2 frames) and Lemma 8 (admissible sequence ≥ M/6) under δ ≤ 1/7",
        table,
    );
    report.note(if all_clean {
        "zero violations across every admissible drift behaviour".to_string()
    } else {
        "WARNING: violations observed within the drift bound".to_string()
    });
    report.note(format!(
        "at δ=3/5 the lemmas break ({l4_bad} / {l7_bad} violating trials) — Assumption 1 is load-bearing"
    ));
    report.note(format!(
        "Lemma 8: over {lemma8_trials} random clock pairs, the proof's γ→σ construction          always produced an admissible (Definition 4) sequence of ≥ M/6 = {} pairs in a          window of M = {window_frames} frames ({lemma8_failures} failures)",
        window_frames / 6
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemmas_hold_within_bound_and_break_beyond() {
        let r = run(Effort::Quick, 9);
        assert_eq!(r.table.len(), 7);
        // Lemma 8 row: zero failures.
        let lemma8 = r.table.rows().last().expect("rows");
        assert_eq!(lemma8[4], "0", "Lemma 8 construction failed: {lemma8:?}");
        // Rows 0..5 (admissible): zero violations.
        for row in &r.table.rows()[..5] {
            assert_eq!(row[3], "0", "Lemma 4 violated under {}", row[0]);
            assert_eq!(row[4], "0", "Lemma 7 violated under {}", row[0]);
        }
        // Last row (δ=3/5): both lemmas must break.
        let bad = &r.table.rows()[5];
        let l4: u64 = bad[3].parse().expect("count");
        let l7: u64 = bad[4].parse().expect("count");
        assert!(l4 > 0, "expected Lemma 4 violations at δ=3/5");
        assert!(l7 > 0, "expected Lemma 7 violations at δ=3/5");
    }
}
