//! E28 — the E27 head-to-head matrix under adversity: bursty loss plus a
//! jammed channel.
//!
//! The randomized algorithms tolerate loss by construction — every slot
//! is a fresh coin flip, so a lost beacon costs one expected retry. The
//! deterministic rivals have no such slack: their schedules revisit a
//! (transmit-channel, listen-channel) pair only after a full period, so
//! a burst that eats one alignment costs an entire cycle, and a jammed
//! channel permanently removes the alignments that used it. This runs
//! the same lineup as E27 on the same network under a Gilbert–Elliott
//! burst channel plus one always-jammed channel, and reports the
//! slowdown each protocol pays relative to its own clean E27-style run.

use crate::experiment::{Effort, ExperimentReport};
use crate::experiments::common::measure_protocol;
use crate::experiments::e27_rivals_completion::LINEUP;
use crate::table::{fmt_f64, Table};
use mmhew_engine::{EnergyModel, FaultPlan, SyncRunConfig};
use mmhew_faults::{GilbertElliott, JamSchedule, LinkLossModel};
use mmhew_spectrum::ChannelSet;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;

const N: usize = 8;
const UNIVERSE: u16 = 5;
const BUDGET: u64 = 400_000;
/// Stationary loss rate of the burst channel.
const LOSS: f64 = 0.3;
/// Mean burst length in slots.
const BURST: f64 = 8.0;
/// Channels jammed for the whole run (channel 0 only).
const JAMMED: u16 = 1;

/// Runs the experiment.
pub fn run(effort: Effort, master_seed: u64) -> ExperimentReport {
    let seed = SeedTree::new(master_seed).branch("e28");
    let reps = effort.pick(8, 40);
    let net = NetworkBuilder::complete(N)
        .universe(UNIVERSE)
        .build(seed.branch("net"))
        .expect("complete networks build");
    let delta_est = net.max_degree().max(1) as u64;
    let model = EnergyModel::default();
    let config = SyncRunConfig::until_complete(BUDGET);
    let faults = FaultPlan::new()
        .with_default_loss(LinkLossModel::GilbertElliott(GilbertElliott::bursty(
            LOSS, BURST,
        )))
        .with_jamming(JamSchedule::fixed(ChannelSet::full(JAMMED)));

    let mut table = Table::new(
        [
            "protocol",
            "clean mean",
            "adverse mean",
            "slowdown",
            "clean fail",
            "adverse fail",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (i, name) in LINEUP.iter().enumerate() {
        let kind = mmhew_rivals::catalog::by_name(name).expect("lineup names are registered");
        let clean = measure_protocol(
            &net,
            kind,
            delta_est,
            None,
            config,
            &model,
            reps,
            seed.branch("clean").index(i as u64),
        );
        let adverse = measure_protocol(
            &net,
            kind,
            delta_est,
            Some(&faults),
            config,
            &model,
            reps,
            seed.branch("adverse").index(i as u64),
        );
        let c = clean.summary();
        let a = adverse.summary();
        table.push_row(vec![
            (*name).to_string(),
            fmt_f64(c.mean),
            fmt_f64(a.mean),
            if a.n == 0 {
                "—".to_string()
            } else {
                fmt_f64(a.mean / c.mean.max(1e-9))
            },
            clean.failures.to_string(),
            adverse.failures.to_string(),
        ]);
    }

    let mut report = ExperimentReport::new(
        "E28",
        "head-to-head matrix under bursty loss and a jammed channel",
        "randomized algorithms degrade gracefully (a constant-factor slowdown); \
         deterministic schedules lose whole periods per burst and whole \
         alignments to the jammed channel, so their tail blows up first",
        table,
    );
    report.note(format!(
        "same matched network as E27 (complete N={N}, |U|={UNIVERSE}, full \
         availability); Gilbert-Elliott stationary loss {LOSS} with mean burst \
         {BURST} slots on every link, plus channel 0 jammed for the whole run; \
         reps={reps}, budget={BUDGET}"
    ));
    report.note(
        "an adverse-failure count > 0 means the protocol exhausted the budget — \
         for the rivals that is the expected deterministic-miss mode, not noise"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversity_slows_every_protocol_without_breaking_the_paper_ones() {
        let r = run(Effort::Quick, 28);
        assert_eq!(r.table.len(), LINEUP.len());
        let rows = r.table.rows();
        for row in rows {
            assert_eq!(row[4], "0", "clean failures for {}", row[0]);
        }
        // The paper's algorithms (rows 0-2) still complete under adversity
        // and pay a real slowdown.
        for row in &rows[..3] {
            assert_eq!(row[5], "0", "adverse failures for {}", row[0]);
            let clean: f64 = row[1].parse().expect("clean mean");
            let adverse: f64 = row[2].parse().expect("adverse mean");
            assert!(
                adverse > clean,
                "{}: adverse {adverse} should exceed clean {clean}",
                row[0]
            );
        }
    }
}
