//! Aligned-text and markdown table rendering for experiment reports.

use serde::{Deserialize, Serialize};

/// A simple rectangular table of strings with a header row.
///
/// # Examples
///
/// ```
/// use mmhew_harness::Table;
///
/// let mut t = Table::new(vec!["N".into(), "slots".into()]);
/// t.push_row(vec!["8".into(), "420.1".into()]);
/// t.push_row(vec!["16".into(), "517.9".into()]);
/// let text = t.render_text();
/// assert!(text.contains("N"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders with space-aligned columns and a separator line.
    pub fn render_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting for cells containing commas,
    /// quotes or newlines).
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible precision for reports.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 10_000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333333".into(), "4".into()]);
        t
    }

    #[test]
    fn text_alignment() {
        let text = sample().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn markdown_shape() {
        let md = sample().render_markdown();
        assert!(md.starts_with("| a | long-header |"));
        assert_eq!(md.lines().count(), 4);
        assert!(md.lines().nth(1).expect("separator").contains("---"));
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(vec!["x".into(), "y,z".into()]);
        t.push_row(vec!["he said \"hi\"".into(), "plain".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"y,z\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
        assert!(csv.contains("plain"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        sample().push_row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(3.77159), "3.77");
        assert_eq!(fmt_f64(123.456), "123.5");
        assert_eq!(fmt_f64(54321.9), "54322");
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.header().len(), 2);
        assert_eq!(t.rows()[1][0], "333333");
    }
}
