//! Parallel repetition of seeded simulation runs.

use mmhew_util::SeedTree;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-wide count of repetitions finished by [`parallel_reps`] since
/// startup. Monotone; read it before and after a batch to compute a
/// throughput (`run_all` uses the delta for its per-experiment progress
/// lines).
static REPS_COMPLETED: AtomicU64 = AtomicU64::new(0);

/// Programmatic worker-count override (0 = unset). Takes precedence over
/// the `MMHEW_JOBS` environment variable.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Total repetitions completed by [`parallel_reps`] since process start.
pub fn reps_completed() -> u64 {
    REPS_COMPLETED.load(Ordering::Relaxed)
}

/// Overrides the number of worker threads [`parallel_reps`] uses (the
/// `--jobs N` flag of the binaries calls this). Pass 0 to clear the
/// override and fall back to `MMHEW_JOBS` / the machine's parallelism.
/// Thread count never changes results — only wall-clock time.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// Worker threads to use: [`set_jobs`] override, else the `MMHEW_JOBS`
/// environment variable, else [`std::thread::available_parallelism`].
fn effective_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(jobs) = std::env::var("MMHEW_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&j| j > 0)
    {
        return jobs;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `reps` independent repetitions of `f` (each handed its own
/// [`SeedTree`] derived from `seed` and the repetition index) across
/// `crossbeam` scoped threads, preserving result order.
///
/// Repetitions are claimed from a shared atomic counter (work stealing)
/// rather than pre-partitioned into static chunks, so heterogeneous rep
/// durations — e.g. runs that step dynamic scenarios of very different
/// lengths — cannot strand fast threads idle behind a slow chunk.
///
/// Results are identical to the sequential `(0..reps).map(...)` — thread
/// scheduling cannot change them because every repetition's randomness is
/// derived from its index, not from execution order, and each result is
/// written back to its repetition's slot.
///
/// # Examples
///
/// ```
/// use mmhew_harness::parallel_reps;
/// use mmhew_util::SeedTree;
///
/// let squares = parallel_reps(8, SeedTree::new(1), |rep, _seed| rep * rep);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_reps<T, F>(reps: u64, seed: SeedTree, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, SeedTree) -> T + Sync,
{
    let threads = effective_jobs().min(reps.max(1) as usize);
    if threads <= 1 || reps <= 1 {
        return (0..reps)
            .map(|rep| {
                let out = f(rep, seed.index(rep));
                REPS_COMPLETED.fetch_add(1, Ordering::Relaxed);
                out
            })
            .collect();
    }
    let mut results: Vec<Option<T>> = (0..reps).map(|_| None).collect();
    let next = AtomicU64::new(0);
    crossbeam::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::unbounded::<(u64, T)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move |_| loop {
                let rep = next.fetch_add(1, Ordering::Relaxed);
                if rep >= reps {
                    break;
                }
                let out = f(rep, seed.index(rep));
                REPS_COMPLETED.fetch_add(1, Ordering::Relaxed);
                if tx.send((rep, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Collect on this thread while workers run; the channel closes
        // once every worker has dropped its sender.
        for (rep, out) in rx {
            results[rep as usize] = Some(out);
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("all repetitions filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_count() {
        let out = parallel_reps(37, SeedTree::new(0), |rep, _| rep * 2);
        assert_eq!(out.len(), 37);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    fn matches_sequential_with_seed_dependence() {
        let f = |rep: u64, seed: SeedTree| seed.branch("x").index(rep).seed();
        let par = parallel_reps(16, SeedTree::new(9), f);
        let seq: Vec<u64> = (0..16)
            .map(|rep| f(rep, SeedTree::new(9).index(rep)))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn zero_and_one_reps() {
        assert!(parallel_reps(0, SeedTree::new(0), |r, _| r).is_empty());
        assert_eq!(parallel_reps(1, SeedTree::new(0), |r, _| r + 5), vec![5]);
    }

    #[test]
    fn completion_counter_is_monotone() {
        let before = reps_completed();
        let _ = parallel_reps(12, SeedTree::new(4), |r, _| r);
        // Other tests in the process may also advance the counter, so only
        // assert the lower bound from this batch.
        assert!(reps_completed() >= before + 12);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Determinism promise of the docs: the thread count can never
        // change results, because each repetition's seed derives from its
        // index. Simulate real use by hashing per-rep RNG draws.
        let f = |rep: u64, seed: SeedTree| {
            let mut rng = seed.branch("work").rng();
            (0..50).fold(rep, |acc, _| {
                acc.wrapping_mul(31)
                    .wrapping_add(rand::Rng::gen::<u64>(&mut rng))
            })
        };
        set_jobs(1);
        let serial = parallel_reps(23, SeedTree::new(17), f);
        set_jobs(4);
        let parallel = parallel_reps(23, SeedTree::new(17), f);
        set_jobs(0); // restore default for other tests
        assert_eq!(serial, parallel);
    }

    #[test]
    fn skewed_durations_preserve_order() {
        // Work stealing: one pathologically slow rep must not determine
        // which thread runs which of the others, nor where results land.
        set_jobs(4);
        let out = parallel_reps(9, SeedTree::new(5), |rep, _| {
            if rep == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            rep * 3
        });
        set_jobs(0); // restore default for other tests
        assert_eq!(out, (0..9).map(|r| r * 3).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_differ_per_rep() {
        let seeds = parallel_reps(10, SeedTree::new(3), |_, seed| seed.seed());
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), 10);
    }
}
