//! Terminal line plots for experiment figures.
//!
//! The paper's results are scaling *curves*; a table shows the numbers but
//! a plot shows the shape. This renderer draws multiple series on a shared
//! character grid with optional log axes — enough to eyeball "is this
//! logarithmic/linear/inverse" straight from `run_all` output.

/// A multi-series scatter/line plot rendered to text.
///
/// # Examples
///
/// ```
/// use mmhew_harness::plot::AsciiPlot;
///
/// let mut p = AsciiPlot::new(40, 10);
/// p.add_series("measured", vec![(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]);
/// let out = p.render();
/// assert!(out.contains("measured"));
/// assert!(out.lines().count() >= 10);
/// ```
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    width: usize,
    height: usize,
    series: Vec<(String, Vec<(f64, f64)>)>,
    log_x: bool,
    log_y: bool,
}

const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@'];

impl AsciiPlot {
    /// Creates a plot grid of `width × height` characters (axes and labels
    /// are added around it).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "plot too small");
        Self {
            width,
            height,
            series: Vec::new(),
            log_x: false,
            log_y: false,
        }
    }

    /// Adds a named series of `(x, y)` points.
    pub fn add_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push((label.into(), points));
    }

    /// Uses a log₁₀ x-axis (points with `x ≤ 0` are dropped).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Uses a log₁₀ y-axis (points with `y ≤ 0` are dropped).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Renders the plot. Returns a short message if there is nothing to
    /// draw.
    pub fn render(&self) -> String {
        let tx = |x: f64| if self.log_x { x.log10() } else { x };
        let ty = |y: f64| if self.log_y { y.log10() } else { y };
        let points: Vec<(usize, f64, f64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(si, (_, pts))| {
                pts.iter()
                    .filter(|(x, y)| (!self.log_x || *x > 0.0) && (!self.log_y || *y > 0.0))
                    .map(move |&(x, y)| (si, tx(x), ty(y)))
            })
            .collect();
        if points.is_empty() {
            return "(no data to plot)\n".to_string();
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, x, y) in &points {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        if (max_x - min_x).abs() < 1e-12 {
            max_x = min_x + 1.0;
        }
        if (max_y - min_y).abs() < 1e-12 {
            max_y = min_y + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(si, x, y) in &points {
            let cx = ((x - min_x) / (max_x - min_x) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - min_y) / (max_y - min_y) * (self.height - 1) as f64).round() as usize;
            let row = self.height - 1 - cy;
            let mark = MARKS[si % MARKS.len()];
            // Later series win ties; that's fine for eyeballing.
            grid[row][cx] = mark;
        }

        let unt = |v: f64, log: bool| if log { 10f64.powf(v) } else { v };
        let mut out = String::new();
        let y_hi = format!("{:.3e}", unt(max_y, self.log_y));
        let y_lo = format!("{:.3e}", unt(min_y, self.log_y));
        let label_w = y_hi.len().max(y_lo.len());
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{y_hi:>label_w$}")
            } else if r == self.height - 1 {
                format!("{y_lo:>label_w$}")
            } else {
                " ".repeat(label_w)
            };
            out.push_str(&format!("{label} |{}|\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!(
            "{} {}{}\n",
            " ".repeat(label_w),
            "-".repeat(self.width + 2),
            if self.log_x || self.log_y {
                format!(
                    "  (log {})",
                    match (self.log_x, self.log_y) {
                        (true, true) => "x,y",
                        (true, false) => "x",
                        _ => "y",
                    }
                )
            } else {
                String::new()
            }
        ));
        out.push_str(&format!(
            "{} x: {:.3e} .. {:.3e}\n",
            " ".repeat(label_w),
            unt(min_x, self.log_x),
            unt(max_x, self.log_x)
        ));
        for (si, (label, _)) in self.series.iter().enumerate() {
            out.push_str(&format!(
                "{} {} {}\n",
                " ".repeat(label_w),
                MARKS[si % MARKS.len()],
                label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_series_markers_and_labels() {
        let mut p = AsciiPlot::new(30, 8);
        p.add_series("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        p.add_series("b", vec![(0.0, 1.0), (1.0, 0.0)]);
        let out = p.render();
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("* a"));
        assert!(out.contains("o b"));
    }

    #[test]
    fn empty_plot_is_graceful() {
        let p = AsciiPlot::new(10, 4);
        assert_eq!(p.render(), "(no data to plot)\n");
        let mut q = AsciiPlot::new(10, 4).log_y();
        q.add_series("neg", vec![(1.0, -5.0)]);
        assert_eq!(q.render(), "(no data to plot)\n");
    }

    #[test]
    fn monotone_series_occupies_diagonal() {
        let mut p = AsciiPlot::new(10, 10);
        p.add_series("diag", (0..10).map(|i| (i as f64, i as f64)).collect());
        let out = p.render();
        let rows: Vec<&str> = out.lines().take(10).collect();
        // Top row holds the largest y (rightmost column), bottom the
        // smallest (leftmost).
        assert!(rows[0].trim_end().ends_with("*|") || rows[0].contains('*'));
        assert!(rows[9].contains('*'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut p = AsciiPlot::new(12, 4);
        p.add_series("flat", vec![(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]);
        let out = p.render();
        assert!(out.contains('*'));
    }

    #[test]
    fn log_axes_drop_nonpositive_and_label() {
        let mut p = AsciiPlot::new(20, 6).log_x().log_y();
        p.add_series(
            "pow",
            vec![(1.0, 1.0), (10.0, 100.0), (100.0, 10000.0), (0.0, 1.0)],
        );
        let out = p.render();
        assert!(out.contains("(log x,y)"));
        assert!(out.contains("1.000e4"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_panics() {
        let _ = AsciiPlot::new(1, 1);
    }
}
