//! Minimal command-line flag parsing for the harness binaries.
//!
//! Deliberately tiny (no external dependency): `--key value` pairs and
//! boolean `--flag`s, with typed accessors and helpful errors.

use crate::experiment::Effort;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Parsed `--key value` / `--flag` arguments.
///
/// # Examples
///
/// ```
/// use mmhew_harness::cli::Args;
///
/// let args = Args::parse_from(["--nodes", "16", "--verbose"].iter().map(|s| s.to_string()))?;
/// assert_eq!(args.get_or("nodes", 4usize)?, 16);
/// assert!(args.flag("verbose"));
/// assert_eq!(args.get_or("missing", 7u64)?, 7);
/// # Ok::<(), mmhew_harness::cli::CliError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument parsing/lookup errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An argument did not start with `--`.
    NotAFlag(String),
    /// A value failed to parse as the requested type.
    BadValue {
        /// The flag name.
        key: String,
        /// The raw value.
        value: String,
    },
    /// An enum-like flag had an unknown variant.
    UnknownVariant {
        /// The flag name.
        key: String,
        /// The raw value.
        value: String,
        /// Allowed values.
        allowed: &'static [&'static str],
    },
    /// A flag not accepted by this binary (probably a typo) was given.
    UnknownFlag(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::NotAFlag(a) => write!(f, "expected --flag, got {a:?}"),
            CliError::BadValue { key, value } => {
                write!(f, "--{key}: cannot parse {value:?}")
            }
            CliError::UnknownVariant {
                key,
                value,
                allowed,
            } => {
                write!(f, "--{key}: unknown value {value:?} (allowed: {allowed:?})")
            }
            CliError::UnknownFlag(key) => {
                write!(f, "--{key}: unknown flag (misspelled?)")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses from the process arguments (skipping the binary name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::NotAFlag`] for positional arguments.
    pub fn parse() -> Result<Self, CliError> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator.
    ///
    /// A token starting with `--` followed by a token not starting with
    /// `--` is a key/value pair; a `--token` followed by another flag (or
    /// nothing) is a boolean flag.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::NotAFlag`] for positional arguments.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let tokens: Vec<String> = args.into_iter().collect();
        let mut out = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            let Some(key) = tok.strip_prefix("--") else {
                return Err(CliError::NotAFlag(tok.clone()));
            };
            match tokens.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    out.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    /// True if the boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of a key, if present.
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Typed value with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] if present but unparseable.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                key: name.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// An enum-like value restricted to `allowed` (returns the matched
    /// allowed entry), defaulting to the first entry.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::UnknownVariant`] for anything else.
    pub fn one_of(
        &self,
        name: &str,
        allowed: &'static [&'static str],
    ) -> Result<&'static str, CliError> {
        match self.values.get(name) {
            None => Ok(allowed[0]),
            Some(v) => allowed
                .iter()
                .find(|a| a.eq_ignore_ascii_case(v))
                .copied()
                .ok_or_else(|| CliError::UnknownVariant {
                    key: name.to_string(),
                    value: v.clone(),
                    allowed,
                }),
        }
    }

    /// The effort level from the standard `--quick`/`--full` flags
    /// (defaults to quick; `--full` wins when both are given, matching
    /// the historical `Effort::from_args` scan).
    pub fn effort(&self) -> Effort {
        if self.flag("full") {
            Effort::Full
        } else {
            Effort::Quick
        }
    }

    /// The worker count from the standard `--jobs N` key, if given.
    ///
    /// Callers typically feed this to [`crate::sweep::set_jobs`].
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] if present but unparseable.
    pub fn jobs(&self) -> Result<Option<usize>, CliError> {
        match self.values.get("jobs") {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| CliError::BadValue {
                key: "jobs".to_string(),
                value: v.clone(),
            }),
        }
    }

    /// Rejects any argument outside the given vocabularies: `keys` are
    /// the accepted `--key value` names, `flags` the accepted boolean
    /// `--flag`s. The standard effort/parallelism trio (`--quick`,
    /// `--full`, `--jobs N`) is always accepted, so every harness binary
    /// parses it uniformly — and a misspelled flag is an error instead of
    /// being silently ignored.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::UnknownFlag`] naming the first offender.
    pub fn expect_only(&self, keys: &[&str], flags: &[&str]) -> Result<(), CliError> {
        const STANDARD_KEYS: &[&str] = &["jobs"];
        const STANDARD_FLAGS: &[&str] = &["quick", "full"];
        for key in self.values.keys() {
            if !keys.iter().chain(STANDARD_KEYS).any(|k| k == key) {
                return Err(CliError::UnknownFlag(key.clone()));
            }
        }
        for flag in &self.flags {
            if !flags.iter().chain(STANDARD_FLAGS).any(|f| f == flag) {
                return Err(CliError::UnknownFlag(flag.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse_from(args.iter().map(|s| s.to_string())).expect("parse")
    }

    #[test]
    fn key_values_and_flags() {
        let a = parse(&["--n", "12", "--fast", "--eps", "0.5"]);
        assert_eq!(a.get_or("n", 0usize).expect("n"), 12);
        assert_eq!(a.get_or("eps", 0.0f64).expect("eps"), 0.5);
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
        assert_eq!(a.raw("n"), Some("12"));
        assert_eq!(a.raw("zzz"), None);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get_or("n", 42usize).expect("default"), 42);
        assert_eq!(
            a.one_of("algo", &["alg1", "alg2"]).expect("default"),
            "alg1"
        );
    }

    #[test]
    fn errors_are_specific() {
        let a = parse(&["--n", "abc", "--algo", "bogus"]);
        assert!(matches!(
            a.get_or("n", 0usize),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            a.one_of("algo", &["alg1"]),
            Err(CliError::UnknownVariant { .. })
        ));
        assert!(matches!(
            Args::parse_from(["oops".to_string()]),
            Err(CliError::NotAFlag(_))
        ));
    }

    #[test]
    fn trailing_flag_and_case_insensitive_variant() {
        let a = parse(&["--algo", "ALG2", "--verbose"]);
        assert_eq!(a.one_of("algo", &["alg1", "alg2"]).expect("match"), "alg2");
        assert!(a.flag("verbose"));
    }

    #[test]
    fn error_display() {
        let e = CliError::UnknownVariant {
            key: "x".into(),
            value: "y".into(),
            allowed: &["a"],
        };
        assert!(e.to_string().contains("unknown value"));
        assert!(CliError::UnknownFlag("ful".into())
            .to_string()
            .contains("unknown flag"));
    }

    #[test]
    fn effort_and_jobs_parse_uniformly() {
        let a = parse(&["--full", "--jobs", "3"]);
        assert_eq!(a.effort(), Effort::Full);
        assert_eq!(a.jobs().expect("jobs"), Some(3));
        let b = parse(&["--quick"]);
        assert_eq!(b.effort(), Effort::Quick);
        assert_eq!(b.jobs().expect("jobs"), None);
        let c = parse(&["--jobs", "many"]);
        assert!(matches!(c.jobs(), Err(CliError::BadValue { .. })));
    }

    #[test]
    fn expect_only_rejects_misspellings() {
        // The standard trio is always accepted.
        let a = parse(&["--full", "--jobs", "2", "--seed", "7"]);
        assert!(a.expect_only(&["seed"], &[]).is_ok());
        // A misspelled flag is an error, not silently a boolean.
        let b = parse(&["--ful"]);
        assert_eq!(
            b.expect_only(&["seed"], &[]),
            Err(CliError::UnknownFlag("ful".into()))
        );
        let c = parse(&["--sed", "7"]);
        assert_eq!(
            c.expect_only(&["seed"], &[]),
            Err(CliError::UnknownFlag("sed".into()))
        );
    }
}
