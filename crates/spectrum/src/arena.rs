//! Flat bitset arena for per-node availability: all `A(u)` in one
//! allocation.
//!
//! A million-node network with per-node [`ChannelSet`]s pays one heap
//! allocation (and one pointer chase) per node. [`AvailabilityArena`]
//! instead packs every node's bitset into a single `Vec<u64>` with a
//! fixed per-node stride of `⌈universe / 64⌉` words, and hands out
//! [`ChannelSetRef`] borrowed views. Mutation (channel gain/loss, node
//! rejoin) is in-place bit twiddling — no allocation ever, because the
//! stride is fixed by the universe at construction.

use crate::channel::ChannelId;
use crate::channel_set::{ChannelSet, ChannelSetRef};

/// Per-node availability bitsets in one flat allocation.
///
/// Row `i` is the `stride`-word window `words[i*stride .. (i+1)*stride]`;
/// [`get`](Self::get) returns it as a [`ChannelSetRef`]. Equality is
/// word-for-word, which coincides with per-node set equality because the
/// stride is identical for networks over the same universe and no bit
/// beyond the universe is ever set by a validated caller.
///
/// # Examples
///
/// ```
/// use mmhew_spectrum::{AvailabilityArena, ChannelId, ChannelSet};
///
/// let sets: Vec<ChannelSet> = vec![
///     [0u16, 2].into_iter().collect(),
///     [1u16].into_iter().collect(),
/// ];
/// let mut arena = AvailabilityArena::from_sets(&sets, 3);
/// assert_eq!(arena.get(0).len(), 2);
/// arena.insert(1, ChannelId::new(2));
/// assert!(arena.get(1).contains(ChannelId::new(2)));
/// assert_eq!(arena.to_sets(), vec![
///     [0u16, 2].into_iter().collect::<ChannelSet>(),
///     [1u16, 2].into_iter().collect(),
/// ]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityArena {
    /// Words per node: `⌈universe / 64⌉`, at least 1 so every node has a
    /// row even in a one-channel universe.
    stride: usize,
    /// Number of node rows.
    nodes: usize,
    /// `nodes * stride` words, row-major by node.
    words: Vec<u64>,
}

impl AvailabilityArena {
    /// An arena of `nodes` empty sets sized for `universe` channels.
    pub fn empty(nodes: usize, universe: u16) -> Self {
        let stride = (universe as usize).div_ceil(64).max(1);
        Self {
            stride,
            nodes,
            words: vec![0; nodes * stride],
        }
    }

    /// Packs one [`ChannelSet`] per node into a fresh arena.
    ///
    /// # Panics
    ///
    /// Panics if any set holds a channel `≥ universe` (callers validate
    /// availability against the universe before packing).
    pub fn from_sets(sets: &[ChannelSet], universe: u16) -> Self {
        let mut arena = Self::empty(sets.len(), universe);
        for (i, set) in sets.iter().enumerate() {
            arena.assign(i, set.view());
        }
        arena
    }

    /// Number of node rows.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The borrowed view of node `i`'s availability.
    pub fn get(&self, i: usize) -> ChannelSetRef<'_> {
        ChannelSetRef::from_words(&self.words[i * self.stride..(i + 1) * self.stride])
    }

    /// Sets bit `c` in row `i`; returns true if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `c` is beyond the arena's stride (i.e. outside the
    /// universe the arena was sized for).
    pub fn insert(&mut self, i: usize, c: ChannelId) -> bool {
        let (word, bit) = Self::locate(c);
        assert!(word < self.stride, "channel beyond arena universe");
        let w = &mut self.words[i * self.stride + word];
        let had = *w & (1 << bit) != 0;
        *w |= 1 << bit;
        !had
    }

    /// Clears bit `c` in row `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize, c: ChannelId) -> bool {
        let (word, bit) = Self::locate(c);
        if word >= self.stride {
            return false;
        }
        let w = &mut self.words[i * self.stride + word];
        let had = *w & (1 << bit) != 0;
        *w &= !(1 << bit);
        had
    }

    /// Overwrites row `i` with the contents of `set` — an in-place bit
    /// copy, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `set` holds a channel beyond the arena's stride.
    pub fn assign(&mut self, i: usize, set: ChannelSetRef<'_>) {
        let row = &mut self.words[i * self.stride..(i + 1) * self.stride];
        row.fill(0);
        for c in set.iter() {
            let (word, bit) = Self::locate(c);
            assert!(word < row.len(), "channel beyond arena universe");
            row[word] |= 1 << bit;
        }
    }

    /// Unpacks every row into owned, normalized [`ChannelSet`]s (the
    /// serialization shape). Allocates; not for hot paths.
    pub fn to_sets(&self) -> Vec<ChannelSet> {
        (0..self.nodes).map(|i| self.get(i).to_owned()).collect()
    }

    fn locate(c: ChannelId) -> (usize, u32) {
        ((c.index() / 64) as usize, (c.index() % 64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(xs: &[u16]) -> ChannelSet {
        xs.iter().copied().collect()
    }

    #[test]
    fn round_trips_sets() {
        let sets = vec![cs(&[0, 1]), cs(&[]), cs(&[63]), cs(&[2])];
        let arena = AvailabilityArena::from_sets(&sets, 64);
        assert_eq!(arena.node_count(), 4);
        assert_eq!(arena.to_sets(), sets);
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(arena.get(i), s.view());
        }
    }

    #[test]
    fn stride_covers_multi_word_universes() {
        let sets = vec![cs(&[0, 64, 129])];
        let arena = AvailabilityArena::from_sets(&sets, 130);
        assert_eq!(arena.get(0).len(), 3);
        assert!(arena.get(0).contains(ChannelId::new(129)));
        // One-channel universe still gets a full word row.
        let tiny = AvailabilityArena::from_sets(&[cs(&[0])], 1);
        assert_eq!(tiny.get(0).to_owned(), cs(&[0]));
    }

    #[test]
    fn insert_remove_assign_in_place() {
        let mut arena = AvailabilityArena::from_sets(&[cs(&[1]), cs(&[2])], 8);
        assert!(arena.insert(0, ChannelId::new(3)));
        assert!(!arena.insert(0, ChannelId::new(3)), "double insert");
        assert!(arena.remove(1, ChannelId::new(2)));
        assert!(!arena.remove(1, ChannelId::new(2)));
        assert_eq!(arena.to_sets(), vec![cs(&[1, 3]), cs(&[])]);
        arena.assign(0, cs(&[7]).view());
        assert_eq!(arena.get(0).to_owned(), cs(&[7]));
    }

    #[test]
    fn equality_is_per_node_set_equality() {
        let a = AvailabilityArena::from_sets(&[cs(&[1]), cs(&[2, 3])], 8);
        let mut b = AvailabilityArena::from_sets(&[cs(&[1]), cs(&[2])], 8);
        assert_ne!(a, b);
        b.insert(1, ChannelId::new(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "beyond arena universe")]
    fn insert_beyond_universe_panics() {
        let mut arena = AvailabilityArena::empty(1, 8);
        arena.insert(0, ChannelId::new(64));
    }
}
