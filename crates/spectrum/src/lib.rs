//! Spectrum model for M²HeW networks: channels, channel sets, and
//! heterogeneous availability generation.
//!
//! A multi-hop multi-channel heterogeneous wireless (M²HeW) network — e.g.
//! a cognitive-radio network — is characterized by each node `u` perceiving
//! its own *available channel set* `A(u)` (paper §II). This crate provides:
//!
//! * [`ChannelId`] / [`ChannelSet`] — dense channel identifiers and the
//!   bitset algebra (`∩`, `∪`, uniform random choice) the algorithms use;
//! * [`AvailabilityModel`] — generators of `{A(u)}` families, from fully
//!   homogeneous to exact-`ρ` adversarial to the spatial
//!   [`PrimaryUser`]/[`SpectrumMap`] cognitive-radio model.
//!
//! # Examples
//!
//! ```
//! use mmhew_spectrum::{AvailabilityModel, ChannelSet};
//! use mmhew_util::SeedTree;
//!
//! let positions = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)];
//! let sets = AvailabilityModel::UniformSubset { size: 4 }
//!     .assign(10, &positions, SeedTree::new(1))?;
//! assert_eq!(sets.len(), 3);
//! assert!(sets.iter().all(|s: &ChannelSet| s.len() == 4));
//! # Ok::<(), mmhew_spectrum::AvailabilityError>(())
//! ```

pub mod arena;
pub mod availability;
pub mod channel;
pub mod channel_set;
pub mod primary_user;

pub use arena::AvailabilityArena;
pub use availability::{AvailabilityError, AvailabilityModel};
pub use channel::ChannelId;
pub use channel_set::{ChannelSet, ChannelSetRef};
pub use primary_user::{PrimaryUser, SpectrumMap};
