//! Bitset of channels: the available channel set `A(u)` of the paper.

use crate::channel::ChannelId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of channels, stored as a bitset over dense [`ChannelId`] indices.
///
/// This is the `A(u)` of the paper — the set of channels a node perceives
/// as available — and also link spans `span(u, v) = A(u) ∩ A(v)`. The
/// algorithms only ever need membership, intersection, uniform random
/// choice, and cardinality, all of which are O(words) here.
///
/// # Examples
///
/// ```
/// use mmhew_spectrum::{ChannelId, ChannelSet};
///
/// let a: ChannelSet = [0u16, 2, 4].into_iter().collect();
/// let b: ChannelSet = [2u16, 3, 4].into_iter().collect();
/// let common = a.intersection(&b);
/// assert_eq!(common.len(), 2);
/// assert!(common.contains(ChannelId::new(2)));
/// assert!(!common.contains(ChannelId::new(0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelSet {
    words: Vec<u64>,
}

impl ChannelSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the set `{0, 1, ..., n−1}` (a full universe of size `n`).
    pub fn full(n: u16) -> Self {
        let mut set = Self::new();
        for i in 0..n {
            set.insert(ChannelId::new(i));
        }
        set
    }

    /// Inserts a channel; returns true if it was newly added.
    pub fn insert(&mut self, c: ChannelId) -> bool {
        let (word, bit) = Self::locate(c);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let had = self.words[word] & (1 << bit) != 0;
        self.words[word] |= 1 << bit;
        !had
    }

    /// Removes a channel; returns true if it was present.
    pub fn remove(&mut self, c: ChannelId) -> bool {
        let (word, bit) = Self::locate(c);
        if word >= self.words.len() {
            return false;
        }
        let had = self.words[word] & (1 << bit) != 0;
        self.words[word] &= !(1 << bit);
        self.normalize();
        had
    }

    /// Membership test.
    pub fn contains(&self, c: ChannelId) -> bool {
        let (word, bit) = Self::locate(c);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of channels in the set (the `|A(u)|` of the paper).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no channels.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The intersection `self ∩ other` (link spans).
    pub fn intersection(&self, other: &ChannelSet) -> ChannelSet {
        let n = self.words.len().min(other.words.len());
        let words = (0..n).map(|i| self.words[i] & other.words[i]).collect();
        let mut out = ChannelSet { words };
        out.normalize();
        out
    }

    /// Size of the intersection without allocating.
    pub fn intersection_len(&self, other: &ChannelSet) -> usize {
        let n = self.words.len().min(other.words.len());
        (0..n)
            .map(|i| (self.words[i] & other.words[i]).count_ones() as usize)
            .sum()
    }

    /// The union `self ∪ other`.
    pub fn union(&self, other: &ChannelSet) -> ChannelSet {
        let n = self.words.len().max(other.words.len());
        let words = (0..n)
            .map(|i| {
                self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0)
            })
            .collect();
        ChannelSet { words }
    }

    /// True if every channel of `self` is in `other`.
    pub fn is_subset(&self, other: &ChannelSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// True if the sets share no channel.
    pub fn is_disjoint(&self, other: &ChannelSet) -> bool {
        self.intersection_len(other) == 0
    }

    /// Iterates over the channels in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let bit = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ChannelId::new((wi as u32 * 64 + bit) as u16))
                }
            })
        })
    }

    /// A channel selected uniformly at random from the set — line 3 of
    /// every algorithm in the paper ("channel selected uniformly at random
    /// from `A(u)`").
    ///
    /// Returns `None` if the set is empty.
    pub fn choose_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<ChannelId> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let k = rng.gen_range(0..n);
        self.iter().nth(k)
    }

    /// The channel with the largest index, if any.
    pub fn max_channel(&self) -> Option<ChannelId> {
        self.iter().last()
    }

    /// A borrowed, `Copy` view of this set — the same read API without
    /// owning the words. See [`ChannelSetRef`].
    pub fn view(&self) -> ChannelSetRef<'_> {
        ChannelSetRef { words: &self.words }
    }

    /// Overwrites this set with the contents of a borrowed view, reusing
    /// the existing word buffer (no allocation once capacity suffices).
    pub fn copy_from(&mut self, other: ChannelSetRef<'_>) {
        self.words.clear();
        self.words.extend_from_slice(other.trimmed());
    }

    fn locate(c: ChannelId) -> (usize, u32) {
        ((c.index() / 64) as usize, (c.index() % 64) as u32)
    }

    /// Drops trailing zero words so that structural equality coincides with
    /// set equality.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

/// A borrowed, `Copy` view over a channel set's `u64` words.
///
/// `ChannelSetRef` is the read surface of the flat availability arena
/// ([`crate::AvailabilityArena`]) and of [`ChannelSet`] itself
/// ([`ChannelSet::view`]): membership, cardinality, iteration and uniform
/// random choice without owning (or allocating) the words. Trailing zero
/// words are ignored everywhere, so views over fixed-stride arena rows
/// compare and iterate identically to normalized owned sets.
///
/// The uniform draw ([`choose_uniform`](Self::choose_uniform)) performs
/// the *exact* RNG draw sequence of [`ChannelSet::choose_uniform`] — one
/// `gen_range(0..len)` — so swapping owned sets for views anywhere in a
/// simulation leaves RNG streams byte-identical.
///
/// # Examples
///
/// ```
/// use mmhew_spectrum::{ChannelId, ChannelSet};
///
/// let owned: ChannelSet = [1u16, 5].into_iter().collect();
/// let view = owned.view();
/// assert_eq!(view.len(), 2);
/// assert!(view.contains(ChannelId::new(5)));
/// assert_eq!(view.to_owned(), owned);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ChannelSetRef<'a> {
    words: &'a [u64],
}

impl<'a> ChannelSetRef<'a> {
    /// A view over raw bitset words (bit `c % 64` of word `c / 64` set iff
    /// channel `c` is in the set). Trailing zero words are permitted.
    pub fn from_words(words: &'a [u64]) -> Self {
        Self { words }
    }

    /// The words with trailing zeros dropped — the canonical form that
    /// equality, hashing of owned copies, and [`to_owned`](Self::to_owned)
    /// use.
    fn trimmed(self) -> &'a [u64] {
        let mut n = self.words.len();
        while n > 0 && self.words[n - 1] == 0 {
            n -= 1;
        }
        &self.words[..n]
    }

    /// Membership test.
    pub fn contains(self, c: ChannelId) -> bool {
        let (word, bit) = ((c.index() / 64) as usize, c.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of channels in the set.
    pub fn len(self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no channels.
    pub fn is_empty(self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the channels in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = ChannelId> + 'a {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let bit = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ChannelId::new((wi as u32 * 64 + bit) as u16))
                }
            })
        })
    }

    /// A channel selected uniformly at random — the identical draw
    /// sequence as [`ChannelSet::choose_uniform`] (one `gen_range(0..len)`
    /// then an `nth` walk), so views and owned sets are interchangeable
    /// without perturbing RNG streams.
    ///
    /// Returns `None` if the set is empty.
    pub fn choose_uniform<R: Rng + ?Sized>(self, rng: &mut R) -> Option<ChannelId> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let k = rng.gen_range(0..n);
        self.iter().nth(k)
    }

    /// The channel with the largest index, if any.
    pub fn max_channel(self) -> Option<ChannelId> {
        self.iter().last()
    }

    /// The intersection `self ∩ other` as an owned set.
    pub fn intersection(self, other: ChannelSetRef<'_>) -> ChannelSet {
        let n = self.words.len().min(other.words.len());
        let mut out = ChannelSet {
            words: (0..n).map(|i| self.words[i] & other.words[i]).collect(),
        };
        out.normalize();
        out
    }

    /// Size of the intersection without allocating.
    pub fn intersection_len(self, other: ChannelSetRef<'_>) -> usize {
        let n = self.words.len().min(other.words.len());
        (0..n)
            .map(|i| (self.words[i] & other.words[i]).count_ones() as usize)
            .sum()
    }

    /// Iterates the intersection `self ∩ other` in increasing index order
    /// without allocating.
    pub fn iter_common(self, other: ChannelSetRef<'a>) -> impl Iterator<Item = ChannelId> + 'a {
        let n = self.words.len().min(other.words.len());
        let (a, b) = (&self.words[..n], &other.words[..n]);
        (0..n).flat_map(move |wi| {
            let mut bits = a[wi] & b[wi];
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let bit = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ChannelId::new((wi as u32 * 64 + bit) as u16))
                }
            })
        })
    }

    /// True if every channel of `self` is in `other`.
    pub fn is_subset(self, other: ChannelSetRef<'_>) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// True if the sets share no channel.
    pub fn is_disjoint(self, other: ChannelSetRef<'_>) -> bool {
        self.intersection_len(other) == 0
    }

    /// Materializes an owned, normalized [`ChannelSet`]. This allocates —
    /// keep it off per-slot paths (the topology migration gate enforces
    /// exactly that for network accessors).
    #[allow(clippy::wrong_self_convention)]
    pub fn to_owned(self) -> ChannelSet {
        ChannelSet {
            words: self.trimmed().to_vec(),
        }
    }
}

impl PartialEq for ChannelSetRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.trimmed() == other.trimmed()
    }
}

impl Eq for ChannelSetRef<'_> {}

impl PartialEq<ChannelSet> for ChannelSetRef<'_> {
    fn eq(&self, other: &ChannelSet) -> bool {
        self.trimmed() == other.words.as_slice()
    }
}

impl PartialEq<ChannelSetRef<'_>> for ChannelSet {
    fn eq(&self, other: &ChannelSetRef<'_>) -> bool {
        self.words.as_slice() == other.trimmed()
    }
}

impl fmt::Display for ChannelSetRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ChannelId> for ChannelSet {
    fn from_iter<I: IntoIterator<Item = ChannelId>>(iter: I) -> Self {
        let mut set = ChannelSet::new();
        for c in iter {
            set.insert(c);
        }
        set
    }
}

impl FromIterator<u16> for ChannelSet {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        iter.into_iter().map(ChannelId::new).collect()
    }
}

impl Extend<ChannelId> for ChannelSet {
    fn extend<I: IntoIterator<Item = ChannelId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for ChannelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;
    use std::collections::BTreeSet;

    fn set(xs: &[u16]) -> ChannelSet {
        xs.iter().copied().collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ChannelSet::new();
        assert!(s.insert(ChannelId::new(5)));
        assert!(!s.insert(ChannelId::new(5)), "double insert");
        assert!(s.contains(ChannelId::new(5)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(ChannelId::new(5)));
        assert!(!s.remove(ChannelId::new(5)));
        assert!(s.is_empty());
        assert!(!s.remove(ChannelId::new(1000)), "remove beyond capacity");
    }

    #[test]
    fn works_across_word_boundaries() {
        let s = set(&[0, 63, 64, 127, 128, 200]);
        assert_eq!(s.len(), 6);
        for c in [0u16, 63, 64, 127, 128, 200] {
            assert!(s.contains(ChannelId::new(c)), "missing {c}");
        }
        assert!(!s.contains(ChannelId::new(65)));
        let collected: Vec<u16> = s.iter().map(|c| c.index()).collect();
        assert_eq!(collected, vec![0, 63, 64, 127, 128, 200]);
    }

    #[test]
    fn full_universe() {
        let s = ChannelSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(ChannelId::new(69)));
        assert!(!s.contains(ChannelId::new(70)));
    }

    #[test]
    fn set_algebra() {
        let a = set(&[1, 2, 3, 70]);
        let b = set(&[2, 3, 4]);
        assert_eq!(a.intersection(&b), set(&[2, 3]));
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 70]));
        assert!(set(&[2, 3]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_subset(&a));
        assert!(set(&[9]).is_disjoint(&a));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn subset_with_shorter_words() {
        let small = set(&[1]);
        let large = set(&[1, 200]);
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(set(&[200]).intersection(&small).is_empty());
    }

    #[test]
    fn choose_uniform_covers_all_members() {
        let s = set(&[3, 64, 99]);
        let mut rng = SeedTree::new(1).rng();
        let mut seen = BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.choose_uniform(&mut rng).expect("non-empty").index());
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![3, 64, 99]);
        assert_eq!(ChannelSet::new().choose_uniform(&mut rng), None);
    }

    #[test]
    fn choose_uniform_is_roughly_uniform() {
        let s = set(&[0, 1, 2, 3]);
        let mut rng = SeedTree::new(2).rng();
        let mut counts = [0u32; 4];
        let trials = 40_000;
        for _ in 0..trials {
            counts[s.choose_uniform(&mut rng).expect("non-empty").index() as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / trials as f64;
            assert!((p - 0.25).abs() < 0.02, "frequency {p} too far from 0.25");
        }
    }

    #[test]
    fn display_and_from_iter_of_ids() {
        let s: ChannelSet = [ChannelId::new(2), ChannelId::new(0)].into_iter().collect();
        assert_eq!(s.to_string(), "{0,2}");
        assert_eq!(ChannelSet::new().to_string(), "{}");
    }

    #[test]
    fn extend_accumulates() {
        let mut s = set(&[1]);
        s.extend([ChannelId::new(2), ChannelId::new(3)]);
        assert_eq!(s, set(&[1, 2, 3]));
    }

    #[test]
    fn max_channel() {
        assert_eq!(set(&[5, 130, 7]).max_channel(), Some(ChannelId::new(130)));
        assert_eq!(ChannelSet::new().max_channel(), None);
    }

    #[test]
    fn view_matches_owned_semantics() {
        let s = set(&[3, 64, 99]);
        let v = s.view();
        assert_eq!(v.len(), 3);
        assert!(v.contains(ChannelId::new(64)));
        assert!(!v.contains(ChannelId::new(4)));
        assert!(!v.is_empty());
        assert_eq!(
            v.iter().map(|c| c.index()).collect::<Vec<_>>(),
            vec![3, 64, 99]
        );
        assert_eq!(v.max_channel(), Some(ChannelId::new(99)));
        assert_eq!(v.to_owned(), s);
        assert_eq!(v, s);
        assert_eq!(s, v);
        assert_eq!(v.to_string(), s.to_string());
        assert!(ChannelSet::new().view().is_empty());
    }

    #[test]
    fn view_equality_and_ops_ignore_trailing_zero_words() {
        // A fixed-stride arena row carries trailing zero words; the view
        // must behave exactly like the normalized owned set.
        let padded = [0b1010u64, 0, 0];
        let v = ChannelSetRef::from_words(&padded);
        let s = set(&[1, 3]);
        assert_eq!(v, s.view());
        assert_eq!(v, s);
        assert_eq!(v.to_owned(), s);
        assert_eq!(v.len(), 2);
        assert_eq!(v.max_channel(), Some(ChannelId::new(3)));
        assert!(v.is_subset(set(&[0, 1, 2, 3]).view()));
        assert!(set(&[1]).view().is_subset(v));
        assert!(v.is_disjoint(set(&[0, 2, 200]).view()));
        assert_eq!(v.intersection(set(&[3, 70]).view()), set(&[3]));
        assert_eq!(v.intersection_len(set(&[3, 70]).view()), 1);
        assert_eq!(
            v.iter_common(set(&[3, 70]).view()).collect::<Vec<_>>(),
            vec![ChannelId::new(3)]
        );
    }

    #[test]
    fn view_choose_uniform_draws_identically_to_owned() {
        // Byte-identity contract: a view must consume the exact RNG stream
        // the owned set would, member by member, draw by draw.
        let s = set(&[2, 5, 64, 130]);
        let padded: Vec<u64> = {
            let mut w = s.view().trimmed().to_vec();
            w.push(0); // arena-style trailing zero word
            w
        };
        let v = ChannelSetRef::from_words(&padded);
        let mut rng_a = SeedTree::new(9).rng();
        let mut rng_b = SeedTree::new(9).rng();
        for _ in 0..500 {
            assert_eq!(s.choose_uniform(&mut rng_a), v.choose_uniform(&mut rng_b));
        }
        assert_eq!(rng_a, rng_b, "RNG streams diverged");
        assert_eq!(
            ChannelSet::new().view().choose_uniform(&mut rng_a),
            None,
            "empty view draws nothing"
        );
    }

    #[test]
    fn copy_from_reuses_capacity() {
        let mut dst = set(&[0, 1, 2, 200]);
        dst.copy_from(set(&[5]).view());
        assert_eq!(dst, set(&[5]));
        dst.copy_from(ChannelSet::new().view());
        assert!(dst.is_empty());
        assert_eq!(dst, ChannelSet::new());
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        // Structural equality must coincide with set equality even after
        // operations that could leave empty high words behind.
        let mut a = set(&[1, 200]);
        a.remove(ChannelId::new(200));
        assert_eq!(a, set(&[1]));
        let inter = set(&[1, 200]).intersection(&set(&[1, 300]));
        assert_eq!(inter, set(&[1]));
    }
}
