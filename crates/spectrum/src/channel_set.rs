//! Bitset of channels: the available channel set `A(u)` of the paper.

use crate::channel::ChannelId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of channels, stored as a bitset over dense [`ChannelId`] indices.
///
/// This is the `A(u)` of the paper — the set of channels a node perceives
/// as available — and also link spans `span(u, v) = A(u) ∩ A(v)`. The
/// algorithms only ever need membership, intersection, uniform random
/// choice, and cardinality, all of which are O(words) here.
///
/// # Examples
///
/// ```
/// use mmhew_spectrum::{ChannelId, ChannelSet};
///
/// let a: ChannelSet = [0u16, 2, 4].into_iter().collect();
/// let b: ChannelSet = [2u16, 3, 4].into_iter().collect();
/// let common = a.intersection(&b);
/// assert_eq!(common.len(), 2);
/// assert!(common.contains(ChannelId::new(2)));
/// assert!(!common.contains(ChannelId::new(0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelSet {
    words: Vec<u64>,
}

impl ChannelSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the set `{0, 1, ..., n−1}` (a full universe of size `n`).
    pub fn full(n: u16) -> Self {
        let mut set = Self::new();
        for i in 0..n {
            set.insert(ChannelId::new(i));
        }
        set
    }

    /// Inserts a channel; returns true if it was newly added.
    pub fn insert(&mut self, c: ChannelId) -> bool {
        let (word, bit) = Self::locate(c);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let had = self.words[word] & (1 << bit) != 0;
        self.words[word] |= 1 << bit;
        !had
    }

    /// Removes a channel; returns true if it was present.
    pub fn remove(&mut self, c: ChannelId) -> bool {
        let (word, bit) = Self::locate(c);
        if word >= self.words.len() {
            return false;
        }
        let had = self.words[word] & (1 << bit) != 0;
        self.words[word] &= !(1 << bit);
        self.normalize();
        had
    }

    /// Membership test.
    pub fn contains(&self, c: ChannelId) -> bool {
        let (word, bit) = Self::locate(c);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of channels in the set (the `|A(u)|` of the paper).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no channels.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The intersection `self ∩ other` (link spans).
    pub fn intersection(&self, other: &ChannelSet) -> ChannelSet {
        let n = self.words.len().min(other.words.len());
        let words = (0..n).map(|i| self.words[i] & other.words[i]).collect();
        let mut out = ChannelSet { words };
        out.normalize();
        out
    }

    /// Size of the intersection without allocating.
    pub fn intersection_len(&self, other: &ChannelSet) -> usize {
        let n = self.words.len().min(other.words.len());
        (0..n)
            .map(|i| (self.words[i] & other.words[i]).count_ones() as usize)
            .sum()
    }

    /// The union `self ∪ other`.
    pub fn union(&self, other: &ChannelSet) -> ChannelSet {
        let n = self.words.len().max(other.words.len());
        let words = (0..n)
            .map(|i| {
                self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0)
            })
            .collect();
        ChannelSet { words }
    }

    /// True if every channel of `self` is in `other`.
    pub fn is_subset(&self, other: &ChannelSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// True if the sets share no channel.
    pub fn is_disjoint(&self, other: &ChannelSet) -> bool {
        self.intersection_len(other) == 0
    }

    /// Iterates over the channels in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let bit = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ChannelId::new((wi as u32 * 64 + bit) as u16))
                }
            })
        })
    }

    /// A channel selected uniformly at random from the set — line 3 of
    /// every algorithm in the paper ("channel selected uniformly at random
    /// from `A(u)`").
    ///
    /// Returns `None` if the set is empty.
    pub fn choose_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<ChannelId> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let k = rng.gen_range(0..n);
        self.iter().nth(k)
    }

    /// The channel with the largest index, if any.
    pub fn max_channel(&self) -> Option<ChannelId> {
        self.iter().last()
    }

    fn locate(c: ChannelId) -> (usize, u32) {
        ((c.index() / 64) as usize, (c.index() % 64) as u32)
    }

    /// Drops trailing zero words so that structural equality coincides with
    /// set equality.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<ChannelId> for ChannelSet {
    fn from_iter<I: IntoIterator<Item = ChannelId>>(iter: I) -> Self {
        let mut set = ChannelSet::new();
        for c in iter {
            set.insert(c);
        }
        set
    }
}

impl FromIterator<u16> for ChannelSet {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        iter.into_iter().map(ChannelId::new).collect()
    }
}

impl Extend<ChannelId> for ChannelSet {
    fn extend<I: IntoIterator<Item = ChannelId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for ChannelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;
    use std::collections::BTreeSet;

    fn set(xs: &[u16]) -> ChannelSet {
        xs.iter().copied().collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ChannelSet::new();
        assert!(s.insert(ChannelId::new(5)));
        assert!(!s.insert(ChannelId::new(5)), "double insert");
        assert!(s.contains(ChannelId::new(5)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(ChannelId::new(5)));
        assert!(!s.remove(ChannelId::new(5)));
        assert!(s.is_empty());
        assert!(!s.remove(ChannelId::new(1000)), "remove beyond capacity");
    }

    #[test]
    fn works_across_word_boundaries() {
        let s = set(&[0, 63, 64, 127, 128, 200]);
        assert_eq!(s.len(), 6);
        for c in [0u16, 63, 64, 127, 128, 200] {
            assert!(s.contains(ChannelId::new(c)), "missing {c}");
        }
        assert!(!s.contains(ChannelId::new(65)));
        let collected: Vec<u16> = s.iter().map(|c| c.index()).collect();
        assert_eq!(collected, vec![0, 63, 64, 127, 128, 200]);
    }

    #[test]
    fn full_universe() {
        let s = ChannelSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(ChannelId::new(69)));
        assert!(!s.contains(ChannelId::new(70)));
    }

    #[test]
    fn set_algebra() {
        let a = set(&[1, 2, 3, 70]);
        let b = set(&[2, 3, 4]);
        assert_eq!(a.intersection(&b), set(&[2, 3]));
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 70]));
        assert!(set(&[2, 3]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_subset(&a));
        assert!(set(&[9]).is_disjoint(&a));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn subset_with_shorter_words() {
        let small = set(&[1]);
        let large = set(&[1, 200]);
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(set(&[200]).intersection(&small).is_empty());
    }

    #[test]
    fn choose_uniform_covers_all_members() {
        let s = set(&[3, 64, 99]);
        let mut rng = SeedTree::new(1).rng();
        let mut seen = BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.choose_uniform(&mut rng).expect("non-empty").index());
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![3, 64, 99]);
        assert_eq!(ChannelSet::new().choose_uniform(&mut rng), None);
    }

    #[test]
    fn choose_uniform_is_roughly_uniform() {
        let s = set(&[0, 1, 2, 3]);
        let mut rng = SeedTree::new(2).rng();
        let mut counts = [0u32; 4];
        let trials = 40_000;
        for _ in 0..trials {
            counts[s.choose_uniform(&mut rng).expect("non-empty").index() as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / trials as f64;
            assert!((p - 0.25).abs() < 0.02, "frequency {p} too far from 0.25");
        }
    }

    #[test]
    fn display_and_from_iter_of_ids() {
        let s: ChannelSet = [ChannelId::new(2), ChannelId::new(0)].into_iter().collect();
        assert_eq!(s.to_string(), "{0,2}");
        assert_eq!(ChannelSet::new().to_string(), "{}");
    }

    #[test]
    fn extend_accumulates() {
        let mut s = set(&[1]);
        s.extend([ChannelId::new(2), ChannelId::new(3)]);
        assert_eq!(s, set(&[1, 2, 3]));
    }

    #[test]
    fn max_channel() {
        assert_eq!(set(&[5, 130, 7]).max_channel(), Some(ChannelId::new(130)));
        assert_eq!(ChannelSet::new().max_channel(), None);
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        // Structural equality must coincide with set equality even after
        // operations that could leave empty high words behind.
        let mut a = set(&[1, 200]);
        a.remove(ChannelId::new(200));
        assert_eq!(a, set(&[1]));
        let inter = set(&[1, 200]).intersection(&set(&[1, 300]));
        assert_eq!(inter, set(&[1]));
    }
}
