//! Spatial primary-user model for cognitive-radio spectrum availability.
//!
//! In a CR network, licensed *primary users* occupy channels within a
//! geographic footprint; *secondary* (CR) nodes inside the footprint must
//! not use those channels. Placing primary users in the plane and carving
//! their channels out of nearby nodes' availability reproduces the "spatial
//! variations in frequency usage" that make M²HeW networks heterogeneous
//! (paper §I–II).

use crate::channel_set::ChannelSet;
use serde::{Deserialize, Serialize};

/// A licensed transmitter occupying some channels inside a disk footprint.
///
/// # Examples
///
/// ```
/// use mmhew_spectrum::{ChannelSet, PrimaryUser};
///
/// let pu = PrimaryUser::new(0.5, 0.5, 0.2, [0u16, 1].into_iter().collect());
/// assert!(pu.blocks_at(0.5, 0.6));
/// assert!(!pu.blocks_at(0.9, 0.9));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimaryUser {
    x: f64,
    y: f64,
    radius: f64,
    channels: ChannelSet,
}

impl PrimaryUser {
    /// Creates a primary user at `(x, y)` with the given footprint radius,
    /// occupying `channels`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(x: f64, y: f64, radius: f64, channels: ChannelSet) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "invalid radius");
        Self {
            x,
            y,
            radius,
            channels,
        }
    }

    /// The channels this primary user occupies.
    pub fn channels(&self) -> &ChannelSet {
        &self.channels
    }

    /// Footprint center.
    pub fn position(&self) -> (f64, f64) {
        (self.x, self.y)
    }

    /// Footprint radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// True if a node at `(x, y)` lies inside this primary user's
    /// footprint (boundary inclusive).
    pub fn blocks_at(&self, x: f64, y: f64) -> bool {
        let dx = x - self.x;
        let dy = y - self.y;
        dx * dx + dy * dy <= self.radius * self.radius
    }
}

/// A static map of spectrum occupancy: the universal channel set minus, at
/// each point, the channels of every primary user whose footprint covers
/// the point.
///
/// # Examples
///
/// ```
/// use mmhew_spectrum::{ChannelSet, PrimaryUser, SpectrumMap};
///
/// let map = SpectrumMap::new(
///     4,
///     vec![PrimaryUser::new(0.0, 0.0, 1.0, [0u16].into_iter().collect())],
/// );
/// // Inside the footprint channel 0 is gone.
/// assert_eq!(map.available_at(0.5, 0.5), [1u16, 2, 3].into_iter().collect());
/// // Far away everything is available.
/// assert_eq!(map.available_at(5.0, 5.0).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumMap {
    universe_size: u16,
    primaries: Vec<PrimaryUser>,
}

impl SpectrumMap {
    /// Creates a map over a universe of `universe_size` channels.
    pub fn new(universe_size: u16, primaries: Vec<PrimaryUser>) -> Self {
        Self {
            universe_size,
            primaries,
        }
    }

    /// Size of the universal channel set.
    pub fn universe_size(&self) -> u16 {
        self.universe_size
    }

    /// The primary users on this map.
    pub fn primaries(&self) -> &[PrimaryUser] {
        &self.primaries
    }

    /// The channel set perceived available by a CR node at `(x, y)`.
    pub fn available_at(&self, x: f64, y: f64) -> ChannelSet {
        let mut set = ChannelSet::full(self.universe_size);
        for pu in &self.primaries {
            if pu.blocks_at(x, y) {
                for c in pu.channels().iter() {
                    set.remove(c);
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelId;

    fn cs(xs: &[u16]) -> ChannelSet {
        xs.iter().copied().collect()
    }

    #[test]
    fn footprint_boundary_inclusive() {
        let pu = PrimaryUser::new(0.0, 0.0, 1.0, cs(&[0]));
        assert!(pu.blocks_at(1.0, 0.0));
        assert!(pu.blocks_at(0.0, -1.0));
        assert!(!pu.blocks_at(1.0001, 0.0));
    }

    #[test]
    fn overlapping_footprints_accumulate() {
        let map = SpectrumMap::new(
            5,
            vec![
                PrimaryUser::new(0.0, 0.0, 1.0, cs(&[0, 1])),
                PrimaryUser::new(0.5, 0.0, 1.0, cs(&[1, 2])),
            ],
        );
        // Point covered by both loses 0, 1 and 2.
        assert_eq!(map.available_at(0.25, 0.0), cs(&[3, 4]));
        // Point covered only by the second.
        assert_eq!(map.available_at(1.4, 0.0), cs(&[0, 3, 4]));
    }

    #[test]
    fn node_inside_every_footprint_may_lose_everything() {
        let map = SpectrumMap::new(2, vec![PrimaryUser::new(0.0, 0.0, 10.0, cs(&[0, 1]))]);
        assert!(map.available_at(1.0, 1.0).is_empty());
    }

    #[test]
    fn zero_radius_blocks_only_its_center() {
        let pu = PrimaryUser::new(2.0, 2.0, 0.0, cs(&[0]));
        assert!(pu.blocks_at(2.0, 2.0));
        assert!(!pu.blocks_at(2.0, 2.0001));
    }

    #[test]
    #[should_panic(expected = "invalid radius")]
    fn negative_radius_panics() {
        let _ = PrimaryUser::new(0.0, 0.0, -1.0, ChannelSet::new());
    }

    #[test]
    fn accessors() {
        let pu = PrimaryUser::new(1.0, 2.0, 3.0, cs(&[7]));
        assert_eq!(pu.position(), (1.0, 2.0));
        assert_eq!(pu.radius(), 3.0);
        assert!(pu.channels().contains(ChannelId::new(7)));
        let map = SpectrumMap::new(9, vec![pu]);
        assert_eq!(map.universe_size(), 9);
        assert_eq!(map.primaries().len(), 1);
    }
}
