//! Channel identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one wireless channel (frequency) in the universal channel
/// set.
///
/// Channels are dense small integers `0..universe_size`, which lets
/// [`crate::ChannelSet`] use a flat bitset representation.
///
/// # Examples
///
/// ```
/// use mmhew_spectrum::ChannelId;
///
/// let c = ChannelId::new(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(c.to_string(), "ch3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(u16);

impl ChannelId {
    /// Creates a channel id.
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// The dense index of this channel.
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl From<u16> for ChannelId {
    fn from(index: u16) -> Self {
        Self(index)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_ordering() {
        let a = ChannelId::new(1);
        let b = ChannelId::from(2u16);
        assert!(a < b);
        assert_eq!(b.index(), 2);
        assert_eq!(format!("{a}"), "ch1");
    }
}
