//! Generators of heterogeneous per-node available channel sets.
//!
//! The heterogeneity of an M²HeW network is entirely captured by the family
//! `{A(u)}` of available channel sets. These models span the spectrum the
//! paper discusses: the fully homogeneous case (`ρ = 1`, the assumption
//! "made frequently in the literature"), uniformly random subsets, an
//! exact-`ρ` adversarial construction, and the spatial primary-user model
//! that motivates cognitive radio.

use crate::channel::ChannelId;
use crate::channel_set::ChannelSet;
use crate::primary_user::{PrimaryUser, SpectrumMap};
use mmhew_util::SeedTree;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How per-node available channel sets are generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AvailabilityModel {
    /// Every node gets the whole universe (homogeneous network, `ρ = 1`).
    Full,
    /// Every node gets an independent uniformly random subset of the given
    /// size.
    UniformSubset {
        /// Channels per node.
        size: u16,
    },
    /// Exact span-ratio control: every node gets the `shared` channels
    /// `{0..shared}` plus `private` channels exclusive to it, so every link
    /// has span exactly the shared block and span-ratio
    /// `ρ = shared / (shared + private)`.
    PairwiseOverlap {
        /// Channels common to all nodes.
        shared: u16,
        /// Channels exclusive to each node.
        private: u16,
    },
    /// Cognitive-radio spatial model: primary users are dropped uniformly
    /// over the deployment area and their channels are carved out of the
    /// availability of every node inside their footprint.
    SpatialPrimaryUsers {
        /// Number of primary users.
        primaries: usize,
        /// Footprint radius of each primary user (same units as node
        /// positions).
        radius: f64,
        /// Channels occupied by each primary user.
        channels_per_primary: u16,
    },
    /// Spatially clustered availability: `clusters` cluster centers are
    /// dropped over the deployment area, each with its own base channel
    /// set of the given size; every node adopts the base set of its
    /// nearest center. Models metro-scale spectrum regions (all nodes in
    /// one neighborhood see the same primary users).
    Clustered {
        /// Number of spectrum regions.
        clusters: usize,
        /// Channels per region's base set.
        size: u16,
    },
    /// Fixed, explicitly provided sets (tests and hand-built scenarios).
    Explicit(Vec<ChannelSet>),
}

/// Failure to generate availability sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AvailabilityError {
    /// A requested per-node subset exceeds the universe size.
    SubsetTooLarge {
        /// Requested subset size.
        requested: u16,
        /// Universe size.
        universe: u16,
    },
    /// The universe cannot hold the shared block plus all private blocks.
    UniverseTooSmall {
        /// Channels the construction needs.
        needed: usize,
        /// Universe size.
        universe: u16,
    },
    /// An `Explicit` model was given a different number of sets than there
    /// are nodes.
    WrongNodeCount {
        /// Sets provided.
        provided: usize,
        /// Nodes required.
        required: usize,
    },
    /// An `Explicit` model references a channel outside the universe.
    ChannelOutOfUniverse {
        /// Offending channel.
        channel: ChannelId,
        /// Universe size.
        universe: u16,
    },
}

impl fmt::Display for AvailabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvailabilityError::SubsetTooLarge {
                requested,
                universe,
            } => write!(
                f,
                "requested subset of {requested} channels from a universe of {universe}"
            ),
            AvailabilityError::UniverseTooSmall { needed, universe } => write!(
                f,
                "construction needs {needed} channels but universe has {universe}"
            ),
            AvailabilityError::WrongNodeCount { provided, required } => write!(
                f,
                "explicit model provides {provided} sets for {required} nodes"
            ),
            AvailabilityError::ChannelOutOfUniverse { channel, universe } => write!(
                f,
                "explicit set contains {channel} outside universe of size {universe}"
            ),
        }
    }
}

impl std::error::Error for AvailabilityError {}

impl AvailabilityModel {
    /// Generates one available channel set per node.
    ///
    /// `positions` are the node coordinates produced by the topology
    /// generator (used only by the spatial model, but always supplied so
    /// callers need not special-case).
    ///
    /// # Errors
    ///
    /// Returns an [`AvailabilityError`] when the model parameters are
    /// inconsistent with the universe size or node count.
    pub fn assign(
        &self,
        universe: u16,
        positions: &[(f64, f64)],
        seed: SeedTree,
    ) -> Result<Vec<ChannelSet>, AvailabilityError> {
        let n = positions.len();
        match self {
            AvailabilityModel::Full => Ok((0..n).map(|_| ChannelSet::full(universe)).collect()),

            AvailabilityModel::UniformSubset { size } => {
                if *size > universe {
                    return Err(AvailabilityError::SubsetTooLarge {
                        requested: *size,
                        universe,
                    });
                }
                Ok((0..n)
                    .map(|i| {
                        let mut rng = seed.branch("uniform-subset").index(i as u64).rng();
                        random_subset(universe, *size, &mut rng)
                    })
                    .collect())
            }

            AvailabilityModel::PairwiseOverlap { shared, private } => {
                let needed = *shared as usize + n * *private as usize;
                if needed > universe as usize {
                    return Err(AvailabilityError::UniverseTooSmall { needed, universe });
                }
                Ok((0..n)
                    .map(|i| {
                        let mut set = ChannelSet::new();
                        for c in 0..*shared {
                            set.insert(ChannelId::new(c));
                        }
                        let base = *shared as usize + i * *private as usize;
                        for k in 0..*private as usize {
                            set.insert(ChannelId::new((base + k) as u16));
                        }
                        set
                    })
                    .collect())
            }

            AvailabilityModel::SpatialPrimaryUsers {
                primaries,
                radius,
                channels_per_primary,
            } => {
                if *channels_per_primary > universe {
                    return Err(AvailabilityError::SubsetTooLarge {
                        requested: *channels_per_primary,
                        universe,
                    });
                }
                let map = spatial_map(
                    universe,
                    positions,
                    *primaries,
                    *radius,
                    *channels_per_primary,
                    seed,
                );
                Ok(positions
                    .iter()
                    .map(|&(x, y)| map.available_at(x, y))
                    .collect())
            }

            AvailabilityModel::Clustered { clusters, size } => {
                if *size > universe {
                    return Err(AvailabilityError::SubsetTooLarge {
                        requested: *size,
                        universe,
                    });
                }
                if *clusters == 0 {
                    return Err(AvailabilityError::UniverseTooSmall {
                        needed: 1,
                        universe: 0,
                    });
                }
                // Cluster centers uniform over the node bounding box; each
                // gets an independent random base set.
                let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
                let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for &(x, y) in positions {
                    min_x = min_x.min(x);
                    min_y = min_y.min(y);
                    max_x = max_x.max(x);
                    max_y = max_y.max(y);
                }
                if positions.is_empty() {
                    return Ok(Vec::new());
                }
                let centers: Vec<((f64, f64), ChannelSet)> = (0..*clusters)
                    .map(|k| {
                        let mut rng = seed.branch("cluster").index(k as u64).rng();
                        let cx = if max_x > min_x {
                            rng.gen_range(min_x..=max_x)
                        } else {
                            min_x
                        };
                        let cy = if max_y > min_y {
                            rng.gen_range(min_y..=max_y)
                        } else {
                            min_y
                        };
                        ((cx, cy), random_subset(universe, *size, &mut rng))
                    })
                    .collect();
                Ok(positions
                    .iter()
                    .map(|&(x, y)| {
                        centers
                            .iter()
                            .min_by(|(a, _), (b, _)| {
                                let da = (a.0 - x).powi(2) + (a.1 - y).powi(2);
                                let db = (b.0 - x).powi(2) + (b.1 - y).powi(2);
                                da.partial_cmp(&db).expect("finite distances")
                            })
                            .map(|(_, set)| set.clone())
                            .expect("at least one cluster")
                    })
                    .collect())
            }

            AvailabilityModel::Explicit(sets) => {
                if sets.len() != n {
                    return Err(AvailabilityError::WrongNodeCount {
                        provided: sets.len(),
                        required: n,
                    });
                }
                for set in sets {
                    if let Some(c) = set.max_channel() {
                        if c.index() >= universe {
                            return Err(AvailabilityError::ChannelOutOfUniverse {
                                channel: c,
                                universe,
                            });
                        }
                    }
                }
                Ok(sets.clone())
            }
        }
    }

    /// The exact span-ratio this model guarantees, if it guarantees one.
    pub fn exact_rho(&self) -> Option<f64> {
        match self {
            AvailabilityModel::Full => Some(1.0),
            AvailabilityModel::PairwiseOverlap { shared, private } => {
                Some(*shared as f64 / (*shared + *private) as f64)
            }
            _ => None,
        }
    }
}

/// Builds the spectrum map for the spatial model: primary users uniform
/// over the node bounding box inflated by their radius.
fn spatial_map(
    universe: u16,
    positions: &[(f64, f64)],
    primaries: usize,
    radius: f64,
    channels_per_primary: u16,
    seed: SeedTree,
) -> SpectrumMap {
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y) in positions {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    if positions.is_empty() {
        min_x = 0.0;
        min_y = 0.0;
        max_x = 1.0;
        max_y = 1.0;
    }
    let users = (0..primaries)
        .map(|i| {
            let mut rng = seed.branch("primary").index(i as u64).rng();
            let x = rng.gen_range(min_x - radius..=max_x + radius);
            let y = rng.gen_range(min_y - radius..=max_y + radius);
            let channels = random_subset(universe, channels_per_primary, &mut rng);
            PrimaryUser::new(x, y, radius, channels)
        })
        .collect();
    SpectrumMap::new(universe, users)
}

/// A uniformly random `size`-subset of `{0..universe}` via partial
/// Fisher–Yates.
fn random_subset<R: Rng + ?Sized>(universe: u16, size: u16, rng: &mut R) -> ChannelSet {
    debug_assert!(size <= universe);
    let mut pool: Vec<u16> = (0..universe).collect();
    let mut set = ChannelSet::new();
    for i in 0..size as usize {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
        set.insert(ChannelId::new(pool[i]));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_positions(n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|i| (i as f64, 0.0)).collect()
    }

    #[test]
    fn full_model() {
        let sets = AvailabilityModel::Full
            .assign(6, &grid_positions(4), SeedTree::new(0))
            .expect("full model");
        assert_eq!(sets.len(), 4);
        for s in &sets {
            assert_eq!(s.len(), 6);
        }
    }

    #[test]
    fn uniform_subset_sizes_and_determinism() {
        let model = AvailabilityModel::UniformSubset { size: 5 };
        let a = model
            .assign(20, &grid_positions(10), SeedTree::new(3))
            .expect("subset model");
        let b = model
            .assign(20, &grid_positions(10), SeedTree::new(3))
            .expect("subset model");
        assert_eq!(a, b, "same seed, same sets");
        for s in &a {
            assert_eq!(s.len(), 5);
            assert!(s.max_channel().expect("non-empty").index() < 20);
        }
        let c = model
            .assign(20, &grid_positions(10), SeedTree::new(4))
            .expect("subset model");
        assert_ne!(a, c, "different seed, different sets");
    }

    #[test]
    fn uniform_subset_rejects_oversize() {
        let err = AvailabilityModel::UniformSubset { size: 21 }
            .assign(20, &grid_positions(2), SeedTree::new(0))
            .expect_err("oversize subset");
        assert_eq!(
            err,
            AvailabilityError::SubsetTooLarge {
                requested: 21,
                universe: 20
            }
        );
    }

    #[test]
    fn uniform_subset_full_size_is_whole_universe() {
        let sets = AvailabilityModel::UniformSubset { size: 8 }
            .assign(8, &grid_positions(3), SeedTree::new(1))
            .expect("full-size subset");
        for s in &sets {
            assert_eq!(s, &ChannelSet::full(8));
        }
    }

    #[test]
    fn pairwise_overlap_exact_rho() {
        let model = AvailabilityModel::PairwiseOverlap {
            shared: 2,
            private: 3,
        };
        let sets = model
            .assign(2 + 4 * 3, &grid_positions(4), SeedTree::new(0))
            .expect("overlap model");
        assert!((model.exact_rho().expect("exact") - 0.4).abs() < 1e-12);
        for (i, a) in sets.iter().enumerate() {
            assert_eq!(a.len(), 5);
            for (j, b) in sets.iter().enumerate() {
                if i != j {
                    let span = a.intersection(b);
                    assert_eq!(span.len(), 2, "span of ({i},{j})");
                    assert_eq!(span, [0u16, 1].into_iter().collect());
                }
            }
        }
    }

    #[test]
    fn pairwise_overlap_universe_check() {
        let err = AvailabilityModel::PairwiseOverlap {
            shared: 1,
            private: 2,
        }
        .assign(6, &grid_positions(3), SeedTree::new(0))
        .expect_err("universe too small");
        assert_eq!(
            err,
            AvailabilityError::UniverseTooSmall {
                needed: 7,
                universe: 6
            }
        );
    }

    #[test]
    fn spatial_model_blocks_near_primaries() {
        // One column of nodes; enough primaries that some node loses
        // channels but distant nodes keep everything.
        let positions: Vec<(f64, f64)> = (0..20).map(|i| (i as f64 * 10.0, 0.0)).collect();
        let model = AvailabilityModel::SpatialPrimaryUsers {
            primaries: 10,
            radius: 8.0,
            channels_per_primary: 3,
        };
        let sets = model
            .assign(12, &positions, SeedTree::new(5))
            .expect("spatial model");
        assert_eq!(sets.len(), 20);
        let sizes: Vec<usize> = sets.iter().map(|s| s.len()).collect();
        assert!(sizes.iter().any(|&s| s < 12), "someone must be blocked");
        assert!(sizes.iter().all(|&s| s <= 12));
        // Deterministic.
        let again = model
            .assign(12, &positions, SeedTree::new(5))
            .expect("spatial");
        assert_eq!(sets, again);
    }

    #[test]
    fn explicit_model_validates() {
        let sets = vec![
            [0u16, 1].into_iter().collect::<ChannelSet>(),
            [1u16, 2].into_iter().collect(),
        ];
        let model = AvailabilityModel::Explicit(sets.clone());
        assert_eq!(
            model
                .assign(3, &grid_positions(2), SeedTree::new(0))
                .expect("explicit"),
            sets
        );
        assert!(matches!(
            model.assign(3, &grid_positions(3), SeedTree::new(0)),
            Err(AvailabilityError::WrongNodeCount { .. })
        ));
        assert!(matches!(
            model.assign(2, &grid_positions(2), SeedTree::new(0)),
            Err(AvailabilityError::ChannelOutOfUniverse { .. })
        ));
    }

    #[test]
    fn clustered_model_assigns_nearest_region() {
        // Two far-apart groups of nodes: each group must share one base
        // set internally.
        let mut positions: Vec<(f64, f64)> = (0..5).map(|i| (i as f64 * 0.1, 0.0)).collect();
        positions.extend((0..5).map(|i| (100.0 + i as f64 * 0.1, 0.0)));
        let model = AvailabilityModel::Clustered {
            clusters: 2,
            size: 4,
        };
        let sets = model
            .assign(12, &positions, SeedTree::new(9))
            .expect("clustered model");
        assert_eq!(sets.len(), 10);
        for s in &sets {
            assert_eq!(s.len(), 4);
        }
        // With well-separated groups and 2 clusters, at most 2 distinct
        // sets exist and each contiguous group is uniform.
        let distinct: std::collections::HashSet<_> = sets.iter().collect();
        assert!(distinct.len() <= 2);
        assert!(sets[..5].iter().all(|s| s == &sets[0]));
        assert!(sets[5..].iter().all(|s| s == &sets[5]));
        // Deterministic.
        assert_eq!(
            sets,
            model
                .assign(12, &positions, SeedTree::new(9))
                .expect("again")
        );
    }

    #[test]
    fn clustered_model_validates() {
        let positions = vec![(0.0, 0.0)];
        assert!(matches!(
            AvailabilityModel::Clustered {
                clusters: 1,
                size: 9
            }
            .assign(4, &positions, SeedTree::new(0)),
            Err(AvailabilityError::SubsetTooLarge { .. })
        ));
        assert!(AvailabilityModel::Clustered {
            clusters: 0,
            size: 2
        }
        .assign(4, &positions, SeedTree::new(0))
        .is_err());
        // Single node, single cluster works.
        let sets = AvailabilityModel::Clustered {
            clusters: 1,
            size: 2,
        }
        .assign(4, &positions, SeedTree::new(1))
        .expect("valid");
        assert_eq!(sets[0].len(), 2);
    }

    #[test]
    fn error_display_is_informative() {
        let e = AvailabilityError::UniverseTooSmall {
            needed: 9,
            universe: 4,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn random_subset_is_uniformish() {
        let mut rng = SeedTree::new(8).rng();
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            for c in random_subset(10, 3, &mut rng).iter() {
                counts[c.index() as usize] += 1;
            }
        }
        // Each channel appears with probability 3/10.
        for &c in &counts {
            let p = c as f64 / 10_000.0;
            assert!((p - 0.3).abs() < 0.03, "inclusion frequency {p}");
        }
    }
}
