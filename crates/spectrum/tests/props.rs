//! Property-based tests: `ChannelSet` against a `BTreeSet` reference
//! model, and availability-model invariants.

use mmhew_spectrum::{AvailabilityModel, ChannelId, ChannelSet};
use mmhew_util::SeedTree;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn from_model(model: &BTreeSet<u16>) -> ChannelSet {
    model.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn insert_remove_contains_matches_model(
        ops in prop::collection::vec((0u16..300, prop::bool::ANY), 0..120)
    ) {
        let mut set = ChannelSet::new();
        let mut model: BTreeSet<u16> = BTreeSet::new();
        for (c, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(ChannelId::new(c)), model.insert(c));
            } else {
                prop_assert_eq!(set.remove(ChannelId::new(c)), model.remove(&c));
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
        }
        let collected: Vec<u16> = set.iter().map(|c| c.index()).collect();
        let expected: Vec<u16> = model.iter().copied().collect();
        prop_assert_eq!(collected, expected, "iteration order and content");
    }

    #[test]
    fn set_algebra_matches_model(
        a in prop::collection::btree_set(0u16..200, 0..60),
        b in prop::collection::btree_set(0u16..200, 0..60),
    ) {
        let sa = from_model(&a);
        let sb = from_model(&b);
        let inter: BTreeSet<u16> = a.intersection(&b).copied().collect();
        let union: BTreeSet<u16> = a.union(&b).copied().collect();
        prop_assert_eq!(sa.intersection(&sb), from_model(&inter));
        prop_assert_eq!(sa.union(&sb), from_model(&union));
        prop_assert_eq!(sa.intersection_len(&sb), inter.len());
        prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
        prop_assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b));
        // Algebraic identities.
        prop_assert_eq!(sa.intersection(&sb), sb.intersection(&sa));
        prop_assert!(sa.intersection(&sb).is_subset(&sa));
        prop_assert!(sa.is_subset(&sa.union(&sb)));
    }

    #[test]
    fn choose_uniform_always_returns_member(
        model in prop::collection::btree_set(0u16..200, 1..50),
        seed in 0u64..u64::MAX,
    ) {
        let set = from_model(&model);
        let mut rng = SeedTree::new(seed).rng();
        for _ in 0..20 {
            let c = set.choose_uniform(&mut rng).expect("non-empty");
            prop_assert!(model.contains(&c.index()));
        }
    }

    #[test]
    fn full_set_has_exact_membership(n in 0u16..300) {
        let set = ChannelSet::full(n);
        prop_assert_eq!(set.len(), n as usize);
        if n > 0 {
            prop_assert!(set.contains(ChannelId::new(n - 1)));
        }
        prop_assert!(!set.contains(ChannelId::new(n)));
    }

    #[test]
    fn uniform_subset_model_invariants(
        n in 1usize..20,
        universe in 1u16..40,
        size in 1u16..40,
        seed in 0u64..u64::MAX,
    ) {
        let positions: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 0.0)).collect();
        let model = AvailabilityModel::UniformSubset { size };
        let result = model.assign(universe, &positions, SeedTree::new(seed));
        if size > universe {
            prop_assert!(result.is_err());
        } else {
            let sets = result.expect("valid parameters");
            prop_assert_eq!(sets.len(), n);
            for s in &sets {
                prop_assert_eq!(s.len(), size as usize);
                if let Some(max) = s.max_channel() {
                    prop_assert!(max.index() < universe);
                }
            }
        }
    }

    #[test]
    fn pairwise_overlap_delivers_exact_rho(
        n in 2usize..8,
        shared in 1u16..5,
        private in 0u16..5,
        seed in 0u64..u64::MAX,
    ) {
        let universe = shared + n as u16 * private;
        let positions: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 0.0)).collect();
        let model = AvailabilityModel::PairwiseOverlap { shared, private };
        let sets = model
            .assign(universe, &positions, SeedTree::new(seed))
            .expect("fits the universe");
        let rho = model.exact_rho().expect("exact");
        for (i, a) in sets.iter().enumerate() {
            prop_assert_eq!(a.len(), (shared + private) as usize);
            for (j, b) in sets.iter().enumerate() {
                if i == j { continue; }
                let span = a.intersection(b);
                prop_assert_eq!(span.len(), shared as usize);
                let measured = span.len() as f64 / b.len() as f64;
                prop_assert!((measured - rho).abs() < 1e-12);
            }
        }
    }
}
