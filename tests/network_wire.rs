//! Wire-format stability for [`Network`] across the CSR migration.
//!
//! The network used to serialize via a derived `Serialize` over nested
//! `Vec<Vec<Vec<NodeId>>>` adjacency and per-node `ChannelSet`s. The CSR
//! + arena storage keeps that wire format bit-for-bit: same field names,
//! same order, same nested shapes. These tests pin the serialized bytes
//! by reassembling the historical shape field-by-field from the public
//! read API and comparing whole-document strings.

use mmhew_obs::json;
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_topology::{generators, Network, NetworkEvent, NodeId, Propagation};
use mmhew_util::SeedTree;

/// The exact JSON the pre-CSR derived serializer produced: six fields in
/// declaration order, nested `[node][channel]` adjacency, owned
/// availability sets, no `receivers_on`.
fn legacy_json(net: &Network) -> String {
    let availability: Vec<ChannelSet> = (0..net.node_count())
        .map(|i| net.available(NodeId::new(i as u32)).to_owned())
        .collect();
    let neighbors_on: Vec<Vec<Vec<NodeId>>> = (0..net.node_count())
        .map(|u| {
            (0..net.universe_size())
                .map(|c| {
                    net.neighbors_on(NodeId::new(u as u32), ChannelId::new(c))
                        .to_vec()
                })
                .collect()
        })
        .collect();
    format!(
        "{{\"topology\":{},\"universe\":{},\"availability\":{},\"propagation\":{},\"neighbors_on\":{},\"links\":{}}}",
        json::to_string(net.topology()).expect("topology"),
        json::to_string(&net.universe_size()).expect("universe"),
        json::to_string(&availability).expect("availability"),
        json::to_string(net.propagation()).expect("propagation"),
        json::to_string(&neighbors_on).expect("neighbors_on"),
        json::to_string(&net.links().to_vec()).expect("links"),
    )
}

fn demo_network() -> Network {
    let topo = generators::unit_disk(12, 6.0, 2.5, SeedTree::new(42));
    let avail: Vec<ChannelSet> = (0..12)
        .map(|i| {
            (0u16..4)
                .filter(|c| (i + usize::from(*c)) % 3 != 0)
                .collect()
        })
        .collect();
    Network::new(topo, 4, avail, Propagation::Uniform).expect("valid network")
}

#[test]
fn network_serializes_to_the_legacy_wire_bytes() {
    let net = demo_network();
    assert_eq!(json::to_string(&net).expect("network"), legacy_json(&net));
}

#[test]
fn applied_network_still_serializes_to_legacy_wire_bytes() {
    // Incremental CSR patching must not leak into the wire shape either:
    // after a burst of dynamics events the serialized document is still
    // exactly what a legacy nested network with the same state would emit.
    let mut net = demo_network();
    let events = [
        NetworkEvent::ChannelLost {
            node: NodeId::new(3),
            channel: ChannelId::new(1),
        },
        NetworkEvent::EdgeAdd {
            from: NodeId::new(0),
            to: NodeId::new(7),
        },
        NetworkEvent::NodeLeave {
            node: NodeId::new(5),
        },
        NetworkEvent::ChannelGained {
            node: NodeId::new(3),
            channel: ChannelId::new(0),
        },
    ];
    for e in &events {
        net.apply(e).expect("apply");
    }
    assert_eq!(json::to_string(&net).expect("network"), legacy_json(&net));
}

#[test]
fn per_channel_propagation_round_trips_on_the_wire() {
    let topo = generators::line(3);
    let avail: Vec<ChannelSet> = (0..3).map(|_| (0u16..2).collect()).collect();
    let net = Network::new(
        topo,
        2,
        avail,
        Propagation::PerChannelRange {
            ranges: vec![2.0, 0.5],
        },
    )
    .expect("valid network");
    let doc = json::to_string(&net).expect("network");
    assert_eq!(doc, legacy_json(&net));
    assert!(doc.contains("\"PerChannelRange\""), "doc: {doc}");
}
