//! Perfetto export guarantees: fixed-seed conversion is byte-stable on
//! both engines, the live tee and the offline converter agree exactly,
//! and the emitted protobuf is structurally sound (unique track uuids,
//! nondecreasing timestamps) under an independent in-test decoder.
//!
//! The golden `.pftrace` files under `tests/golden/` are self-blessing:
//! a missing golden is written from the current build (with a notice on
//! stderr) so the suite stays green on a fresh checkout, while a present
//! golden pins the encoding — any byte drift in the converter fails here
//! until the golden is deliberately regenerated (delete it and re-run).

use mmhew::prelude::*;
use std::path::PathBuf;

fn net(seed: &SeedTree) -> Network {
    NetworkBuilder::complete(5)
        .universe(4)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))
        .expect("build")
}

fn sync_alg(network: &Network) -> SyncAlgorithm {
    let delta = network.max_degree().max(1) as u64;
    SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive"))
}

fn async_alg(network: &Network) -> AsyncAlgorithm {
    let delta = network.max_degree().max(1) as u64;
    AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mmhew-perfetto-golden");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// Runs the fixed-seed sync scenario with a Perfetto tee and returns the
/// `.pftrace` bytes.
fn sync_pftrace(seed: u64, file: &str) -> Vec<u8> {
    let tree = SeedTree::new(seed);
    let network = net(&tree);
    let path = temp_path(file);
    Scenario::sync(&network, sync_alg(&network))
        .config(SyncRunConfig::until_complete(50_000))
        .with_perfetto(&path)
        .run(tree.branch("run"))
        .expect("run");
    let bytes = std::fs::read(&path).expect("tee file written");
    std::fs::remove_file(&path).ok();
    bytes
}

fn async_pftrace(seed: u64, file: &str) -> Vec<u8> {
    let tree = SeedTree::new(seed);
    let network = net(&tree);
    let path = temp_path(file);
    Scenario::asynchronous(&network, async_alg(&network))
        .config(AsyncRunConfig::until_complete(200_000))
        .with_perfetto(&path)
        .run(tree.branch("run"))
        .expect("run");
    let bytes = std::fs::read(&path).expect("tee file written");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn same_seed_pftrace_is_byte_identical_on_both_engines() {
    let a = sync_pftrace(0x51, "sync-a.pftrace");
    let b = sync_pftrace(0x51, "sync-b.pftrace");
    assert!(!a.is_empty());
    assert_eq!(a, b, "sync: same seed must reproduce the .pftrace exactly");
    let c = sync_pftrace(0x52, "sync-c.pftrace");
    assert_ne!(a, c, "sync: different seeds should diverge");

    let a = async_pftrace(0x51, "async-a.pftrace");
    let b = async_pftrace(0x51, "async-b.pftrace");
    assert!(!a.is_empty());
    assert_eq!(a, b, "async: same seed must reproduce the .pftrace exactly");
}

#[test]
fn live_tee_matches_offline_conversion() {
    // One run captured as JSONL, then converted offline, must produce the
    // exact bytes the live tee wrote during an identical run — the CI
    // trace-tooling job diffs the two paths the same way.
    let tree = SeedTree::new(0x53);
    let network = net(&tree);

    let mut jsonl = JsonlTraceSink::new(Vec::new());
    Scenario::sync(&network, sync_alg(&network))
        .config(SyncRunConfig::until_complete(50_000))
        .with_sink(&mut jsonl)
        .run(tree.branch("run"))
        .expect("run");
    let jsonl_bytes = jsonl.finish().expect("no io error");

    let mut converter = PerfettoConverter::new();
    for item in TraceReader::new(jsonl_bytes.as_slice()) {
        converter.push(&item.expect("trace line decodes"));
    }
    let offline = converter.finish();

    let teed = sync_pftrace(0x53, "tee.pftrace");
    assert_eq!(offline, teed, "offline conversion and live tee must agree");
}

#[test]
fn converting_the_same_trace_twice_is_deterministic() {
    let tree = SeedTree::new(0x54);
    let network = net(&tree);
    let mut jsonl = JsonlTraceSink::new(Vec::new());
    Scenario::sync(&network, sync_alg(&network))
        .config(SyncRunConfig::until_complete(50_000))
        .with_sink(&mut jsonl)
        .run(tree.branch("run"))
        .expect("run");
    let jsonl_bytes = jsonl.finish().expect("no io error");

    let convert = || {
        let mut c = PerfettoConverter::new();
        for item in TraceReader::new(jsonl_bytes.as_slice()) {
            c.push(&item.expect("decodes"));
        }
        c.finish()
    };
    assert_eq!(convert(), convert());
}

#[test]
fn golden_files_pin_the_encoding() {
    let goldens = [
        (
            "tests/golden/perfetto_sync_seed66.pftrace",
            sync_pftrace(0x66, "g-sync.pftrace"),
        ),
        (
            "tests/golden/perfetto_async_seed66.pftrace",
            async_pftrace(0x66, "g-async.pftrace"),
        ),
    ];
    for (path, bytes) in goldens {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
        match std::fs::read(&path) {
            Ok(golden) => assert_eq!(
                golden,
                bytes,
                "{} drifted — the converter's encoding changed; if intentional, \
                 delete the golden and re-run to re-bless",
                path.display()
            ),
            Err(_) => {
                std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
                std::fs::write(&path, &bytes).expect("bless golden");
                eprintln!(
                    "blessed new golden {} ({} bytes)",
                    path.display(),
                    bytes.len()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Independent protobuf reader — deliberately NOT using mmhew::perfetto's
// writer helpers, so an encoding bug cannot hide behind its own inverse.
// ---------------------------------------------------------------------

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// One pass over a protobuf message, yielding `(field, wire, payload)`
/// where payload is the varint value or the length-delimited slice range.
fn fields(bytes: &[u8]) -> Vec<(u32, u32, u64, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let key = read_varint(bytes, &mut pos);
        let field = (key >> 3) as u32;
        let wire = (key & 7) as u32;
        match wire {
            0 => {
                let v = read_varint(bytes, &mut pos);
                out.push((field, wire, v, 0..0));
            }
            1 => {
                out.push((field, wire, 0, pos..pos + 8));
                pos += 8;
            }
            2 => {
                let len = read_varint(bytes, &mut pos) as usize;
                out.push((field, wire, len as u64, pos..pos + len));
                pos += len;
            }
            other => panic!("unexpected wire type {other} at {pos}"),
        }
    }
    out
}

fn varint_field(msg: &[u8], want: u32) -> Option<u64> {
    fields(msg)
        .into_iter()
        .find(|(f, w, _, _)| *f == want && *w == 0)
        .map(|(_, _, v, _)| v)
}

#[test]
fn decoded_trace_has_unique_tracks_and_monotonic_timestamps() {
    for (engine, bytes) in [
        ("sync", sync_pftrace(0x55, "d-sync.pftrace")),
        ("async", async_pftrace(0x55, "d-async.pftrace")),
    ] {
        let mut track_uuids = Vec::new();
        let mut referenced = Vec::new();
        let mut last_ts = 0u64;
        let mut track_events = 0u64;
        for (field, wire, _, range) in fields(&bytes) {
            assert_eq!((field, wire), (1, 2), "{engine}: Trace has only packet=1");
            let packet = &bytes[range];
            // trusted_packet_sequence_id = 10 on every packet.
            assert_eq!(
                varint_field(packet, 10),
                Some(1),
                "{engine}: packet missing sequence id"
            );
            let descriptor = fields(packet)
                .into_iter()
                .find(|(f, w, _, _)| (*f, *w) == (60, 2));
            if let Some((_, _, _, d)) = descriptor {
                // TrackDescriptor.uuid = 1.
                let uuid = varint_field(&packet[d], 1).expect("descriptor has uuid");
                track_uuids.push(uuid);
                continue;
            }
            let event = fields(packet)
                .into_iter()
                .find(|(f, w, _, _)| (*f, *w) == (11, 2))
                .expect("packet is a descriptor or a track event");
            // TracePacket.timestamp = 8 must never decrease.
            let ts = varint_field(packet, 8).expect("event packet has timestamp");
            assert!(
                ts >= last_ts,
                "{engine}: timestamp went backwards ({ts} < {last_ts})"
            );
            last_ts = ts;
            track_events += 1;
            // TrackEvent.track_uuid = 11 must reference a declared track.
            referenced.push(varint_field(&packet[event.3], 11).expect("event has track uuid"));
        }
        assert!(track_events > 0, "{engine}: no events decoded");
        let declared = track_uuids.len();
        track_uuids.sort_unstable();
        track_uuids.dedup();
        assert_eq!(
            declared,
            track_uuids.len(),
            "{engine}: duplicate track uuid"
        );
        for uuid in referenced {
            assert!(
                track_uuids.binary_search(&uuid).is_ok(),
                "{engine}: event references undeclared track {uuid}"
            );
        }
    }
}
