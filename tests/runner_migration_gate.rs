//! Migration gate: no non-shim workspace code may call the deprecated
//! `run_*` discovery entry points. The shims live on only as a
//! compatibility surface — `crates/core/src/runner.rs` defines them, the
//! umbrella prelude and `mmhew-discovery`'s root re-export them, and the
//! integration-test suites exercise them deliberately. Everything else
//! must go through the `Scenario` builder; this test fails the build (CI
//! runs it alongside clippy's `-D warnings` deprecation lint) if a legacy
//! call sneaks back into library, binary, bench, or example code.

use std::fs;
use std::path::{Path, PathBuf};

/// Identifier prefixes of the deprecated runner matrix. Prefix matching
/// covers the whole family (`run_sync_discovery_faulted_observed`, …).
const LEGACY_PREFIXES: &[&str] = &[
    "run_sync_discovery",
    "run_async_discovery",
    "run_continuous_discovery",
];

/// Files allowed to mention the legacy names: the shim definitions and the
/// two designated re-export surfaces.
const ALLOWED: &[&str] = &[
    "crates/core/src/runner.rs",
    "crates/core/src/lib.rs",
    "src/lib.rs",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            // Integration-test trees are the compatibility contract and
            // may keep calling the shims (under `#![allow(deprecated)]`).
            if name == "target" || name == "tests" || name == ".git" {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strips line comments so doc references to the legacy names (migration
/// notes, deprecation messages) don't trip the gate.
fn code_lines(source: &str) -> impl Iterator<Item = (usize, &str)> {
    source.lines().enumerate().filter_map(|(i, line)| {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            return None;
        }
        let code = line.split("//").next().unwrap_or(line);
        Some((i + 1, code))
    })
}

fn is_identifier_use(code: &str, start: usize) -> bool {
    // Reject matches embedded in a longer identifier on the left; the
    // prefix match already accepts longer names on the right.
    if start > 0 {
        let before = code.as_bytes()[start - 1];
        if before == b'_' || before.is_ascii_alphanumeric() {
            return false;
        }
        // A quoted mention (deprecation note, log string) is not a call.
        if before == b'"' {
            return false;
        }
    }
    true
}

#[test]
fn no_workspace_code_calls_the_deprecated_runner_matrix() {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["src", "examples", "crates"] {
        rust_files(&root.join(dir), &mut files);
    }
    files.sort();
    assert!(
        files.len() > 20,
        "gate walked suspiciously few files ({}) — directory layout changed?",
        files.len()
    );

    let allowed: Vec<PathBuf> = ALLOWED.iter().map(|p| root.join(p)).collect();
    let mut violations = Vec::new();
    for file in &files {
        if allowed.iter().any(|a| a == file) {
            continue;
        }
        let Ok(source) = fs::read_to_string(file) else {
            continue;
        };
        for (line_no, code) in code_lines(&source) {
            for prefix in LEGACY_PREFIXES {
                let mut from = 0;
                while let Some(pos) = code[from..].find(prefix) {
                    let at = from + pos;
                    if is_identifier_use(code, at) {
                        violations.push(format!(
                            "{}:{line_no}: references `{prefix}…` — use the Scenario builder",
                            file.strip_prefix(&root).unwrap_or(file).display()
                        ));
                        break;
                    }
                    from = at + prefix.len();
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "deprecated runner calls outside the shim surface:\n{}",
        violations.join("\n")
    );
}

#[test]
fn the_shim_surface_still_exists() {
    // The allow-list must track reality: if the shims move, update both
    // the list above and this test.
    let root = workspace_root();
    for path in ALLOWED {
        let full = root.join(path);
        let source = fs::read_to_string(&full)
            .unwrap_or_else(|_| panic!("allow-listed file {path} is missing"));
        assert!(
            LEGACY_PREFIXES.iter().any(|p| source.contains(p)),
            "{path} no longer mentions the legacy runners — trim the allow-list"
        );
    }
}
