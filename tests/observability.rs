//! Observability guarantees: traces are deterministic, metrics reconcile
//! exactly with engine outcomes, and both engines speak the shared event
//! vocabulary.
// These suites predate the `Scenario` builder and deliberately keep
// calling the deprecated `run_*` shims: they are the compatibility
// contract that the shims must keep honoring until removal.
#![allow(deprecated)]

use mmhew::obs::CollectSink;
use mmhew::prelude::*;

fn net(seed: &SeedTree) -> Network {
    NetworkBuilder::complete(5)
        .universe(4)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))
        .expect("build")
}

fn sync_alg(network: &Network) -> SyncAlgorithm {
    let delta = network.max_degree().max(1) as u64;
    SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive"))
}

fn trace_bytes(seed: u64) -> Vec<u8> {
    let tree = SeedTree::new(seed);
    let network = net(&tree);
    let mut sink = JsonlTraceSink::new(Vec::new());
    run_sync_discovery_observed(
        &network,
        sync_alg(&network),
        StartSchedule::Identical,
        SyncRunConfig::until_complete(50_000),
        tree.branch("run"),
        &mut sink,
    )
    .expect("run");
    assert!(sink.events() > 0, "trace captured no events");
    sink.finish().expect("no io error")
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = trace_bytes(0xAB);
    let b = trace_bytes(0xAB);
    assert_eq!(a, b, "same seed must reproduce the trace byte-for-byte");
    let c = trace_bytes(0xAC);
    assert_ne!(a, c, "different seeds should diverge");
    // Every line is one JSON object keyed by a known event kind.
    let text = String::from_utf8(a).expect("utf8");
    for line in text.lines() {
        assert!(line.starts_with("{\"") && line.ends_with('}'), "{line}");
    }
}

#[test]
fn metrics_reconcile_with_sync_action_counts() {
    let tree = SeedTree::new(0xB0);
    let network = net(&tree);
    let mut metrics = MetricsSink::new();
    let out = run_sync_discovery_observed(
        &network,
        sync_alg(&network),
        StartSchedule::Staggered { window: 16 },
        SyncRunConfig::until_complete(50_000),
        tree.branch("run"),
        &mut metrics,
    )
    .expect("run");
    assert!(out.completed());
    assert_eq!(metrics.slots(), out.slots_executed());
    assert_eq!(metrics.deliveries(), out.deliveries());
    for (i, counts) in out.action_counts().iter().enumerate() {
        let node = metrics.node(i);
        assert_eq!(node.transmit, counts.transmit, "node {i} transmit");
        assert_eq!(node.listen, counts.listen, "node {i} listen");
        assert_eq!(node.quiet, counts.quiet, "node {i} quiet");
    }
    // `links()` enumerates directed links — exactly what the tracker and
    // the LinkCovered events count.
    let expected_links = network.links().len() as u64;
    assert_eq!(metrics.link_progress(), (expected_links, expected_links));
}

#[test]
fn metrics_reconcile_with_async_action_counts() {
    let tree = SeedTree::new(0xB1);
    let network = net(&tree);
    let delta = network.max_degree().max(1) as u64;
    let mut metrics = MetricsSink::new();
    let out = run_async_discovery_observed(
        &network,
        AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
        AsyncRunConfig::until_complete(200_000),
        tree.branch("run"),
        &mut metrics,
    )
    .expect("run");
    assert!(out.completed());
    assert_eq!(metrics.deliveries(), out.deliveries());
    for (i, counts) in out.action_counts().iter().enumerate() {
        let node = metrics.node(i);
        assert_eq!(node.transmit, counts.transmit, "node {i} transmit");
        assert_eq!(node.listen, counts.listen, "node {i} listen");
    }
}

#[test]
fn engines_share_event_vocabulary_at_zero_drift() {
    let tree = SeedTree::new(0xB2);
    let network = net(&tree);
    let delta = network.max_degree().max(1) as u64;

    let mut sync_sink = CollectSink::new();
    run_sync_discovery_observed(
        &network,
        sync_alg(&network),
        StartSchedule::Identical,
        SyncRunConfig::until_complete(50_000),
        tree.branch("sync"),
        &mut sync_sink,
    )
    .expect("run");
    let sync_kinds = sync_sink.kinds();
    for kind in [
        "slot_start",
        "action",
        "channel",
        "delivery",
        "link_covered",
        "phase",
    ] {
        assert!(
            sync_kinds.contains(&kind),
            "sync missing {kind}: {sync_kinds:?}"
        );
    }

    let mut async_sink = CollectSink::new();
    run_async_discovery_observed(
        &network,
        AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
        AsyncRunConfig::until_complete(200_000),
        tree.branch("async"),
        &mut async_sink,
    )
    .expect("run");
    let async_kinds = async_sink.kinds();
    for kind in [
        "frame_start",
        "frame_end",
        "action",
        "delivery",
        "link_covered",
    ] {
        assert!(
            async_kinds.contains(&kind),
            "async missing {kind}: {async_kinds:?}"
        );
    }

    // The engine-agnostic core of the vocabulary appears in both streams.
    for kind in ["action", "delivery", "link_covered"] {
        assert!(
            sync_kinds.contains(&kind) && async_kinds.contains(&kind),
            "{kind}"
        );
    }
}

#[test]
fn dynamics_events_serialize_stably() {
    // The JSONL trace format is a contract: each dynamics variant has a
    // fixed kind tag and a deterministic, externally-tagged JSON shape.
    use mmhew::obs::json::to_string;
    use mmhew::obs::Stamp;
    let cases: Vec<(SimEvent, &str, &str)> = vec![
        (
            SimEvent::NodeJoined {
                at: Stamp::Slot(7),
                node: NodeId::new(3),
            },
            "node_joined",
            r#"{"node_joined":{"at":{"slot":7},"node":3}}"#,
        ),
        (
            SimEvent::NodeLeft {
                at: Stamp::Slot(8),
                node: NodeId::new(0),
            },
            "node_left",
            r#"{"node_left":{"at":{"slot":8},"node":0}}"#,
        ),
        (
            SimEvent::EdgeChanged {
                at: Stamp::Slot(9),
                from: NodeId::new(1),
                to: NodeId::new(2),
                added: true,
            },
            "edge_changed",
            r#"{"edge_changed":{"at":{"slot":9},"from":1,"to":2,"added":true}}"#,
        ),
        (
            SimEvent::ChannelChanged {
                at: Stamp::Real(RealTime::from_nanos(5_000)),
                node: NodeId::new(4),
                channel: ChannelId::new(2),
                gained: false,
            },
            "channel_changed",
            r#"{"channel_changed":{"at":{"real":5000},"node":4,"channel":2,"gained":false}}"#,
        ),
        (
            SimEvent::GroundTruthChanged {
                at: Stamp::Slot(10),
                covered: 3,
                expected: 12,
            },
            "ground_truth_changed",
            r#"{"ground_truth_changed":{"at":{"slot":10},"covered":3,"expected":12}}"#,
        ),
    ];
    for (event, kind, json) in cases {
        assert_eq!(event.kind(), kind);
        assert_eq!(to_string(&event).expect("serializes"), json);
    }
}

fn dynamic_trace_bytes(seed: u64, dynamics: Option<DynamicsSchedule>) -> (SyncOutcome, Vec<u8>) {
    let tree = SeedTree::new(seed);
    let network = net(&tree);
    let mut sink = JsonlTraceSink::new(Vec::new());
    let out = match dynamics {
        Some(schedule) => mmhew::discovery::run_sync_discovery_dynamic_observed(
            &network,
            sync_alg(&network),
            StartSchedule::Identical,
            schedule,
            SyncRunConfig::until_complete(50_000),
            tree.branch("run"),
            &mut sink,
        ),
        None => run_sync_discovery_observed(
            &network,
            sync_alg(&network),
            StartSchedule::Identical,
            SyncRunConfig::until_complete(50_000),
            tree.branch("run"),
            &mut sink,
        ),
    }
    .expect("run");
    (out, sink.finish().expect("no io error"))
}

#[test]
fn empty_dynamics_schedule_is_trace_neutral() {
    // Acceptance criterion of the dynamics subsystem: a frozen (zero-event)
    // schedule produces byte-identical outcomes AND traces to the same
    // seed without dynamics attached.
    let (plain, plain_trace) = dynamic_trace_bytes(0xD1, None);
    let (frozen, frozen_trace) = dynamic_trace_bytes(0xD1, Some(DynamicsSchedule::empty()));
    assert_eq!(plain.completion_slot(), frozen.completion_slot());
    assert_eq!(plain.deliveries(), frozen.deliveries());
    assert_eq!(plain.collisions(), frozen.collisions());
    assert_eq!(plain.action_counts(), frozen.action_counts());
    assert_eq!(
        plain.link_coverage(),
        frozen.link_coverage(),
        "coverage stamps must match"
    );
    assert_eq!(plain_trace, frozen_trace, "traces must be byte-identical");
}

#[test]
fn empty_dynamics_schedule_is_trace_neutral_async() {
    let tree = SeedTree::new(0xD2);
    let network = net(&tree);
    let delta = network.max_degree().max(1) as u64;
    let alg = || AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive"));
    let config = AsyncRunConfig::until_complete(200_000);
    let mut plain_sink = JsonlTraceSink::new(Vec::new());
    let plain = run_async_discovery_observed(
        &network,
        alg(),
        config.clone(),
        tree.branch("run"),
        &mut plain_sink,
    )
    .expect("run");
    let mut frozen_sink = JsonlTraceSink::new(Vec::new());
    let frozen = mmhew::discovery::run_async_discovery_dynamic_observed(
        &network,
        alg(),
        DynamicsSchedule::empty(),
        config,
        tree.branch("run"),
        &mut frozen_sink,
    )
    .expect("run");
    assert_eq!(plain.completion_time(), frozen.completion_time());
    assert_eq!(plain.deliveries(), frozen.deliveries());
    assert_eq!(plain.action_counts(), frozen.action_counts());
    assert_eq!(
        plain_sink.finish().expect("no io error"),
        frozen_sink.finish().expect("no io error"),
        "async traces must be byte-identical"
    );
}

/// The engine emits per-channel medium resolutions by visiting only the
/// channels touched this slot. This must be observably identical to the
/// straightforward algorithm it replaced: scan every universe channel in
/// ascending order and skip the ones nobody used. Regenerate the expected
/// event sequence from the actions and deliveries in the trace itself.
#[test]
fn channel_resolutions_match_per_universe_bruteforce() {
    use mmhew::obs::MediumResolution;
    use mmhew::radio::SlotAction;

    let tree = SeedTree::new(0xC4);
    let network = net(&tree);
    let universe = network.universe_size() as usize;
    let mut sink = CollectSink::new();
    run_sync_discovery_observed(
        &network,
        sync_alg(&network),
        StartSchedule::Staggered { window: 8 },
        SyncRunConfig::until_complete(50_000),
        tree.branch("run"),
        &mut sink,
    )
    .expect("run");

    let mut slots: Vec<Vec<SimEvent>> = Vec::new();
    for e in &sink.events {
        if matches!(e, SimEvent::SlotStart { .. }) {
            slots.push(Vec::new());
        } else if let Some(current) = slots.last_mut() {
            current.push(*e);
        }
    }
    assert!(!slots.is_empty());
    let mut saw_channel_event = false;
    for slot_events in &slots {
        let mut tx_count = vec![0u32; universe];
        let mut tx_node = vec![NodeId::new(0); universe];
        let mut listeners = vec![0u32; universe];
        let mut rx_count = vec![0u32; universe];
        let mut observed = Vec::new();
        for e in slot_events {
            match *e {
                SimEvent::Action { node, action, .. } => match action {
                    SlotAction::Transmit { channel } => {
                        tx_count[channel.index() as usize] += 1;
                        tx_node[channel.index() as usize] = node;
                    }
                    SlotAction::Listen { channel } => listeners[channel.index() as usize] += 1,
                    SlotAction::Quiet => {}
                },
                SimEvent::Delivery { channel, .. } => rx_count[channel.index() as usize] += 1,
                SimEvent::Channel {
                    channel,
                    resolution,
                    ..
                } => observed.push((channel, resolution)),
                _ => {}
            }
        }
        let mut expected = Vec::new();
        for c in 0..universe {
            let resolution = match tx_count[c] {
                0 if listeners[c] == 0 => continue,
                0 => MediumResolution::Silence {
                    listeners: listeners[c],
                },
                1 => MediumResolution::Clear {
                    tx: tx_node[c],
                    rx_count: rx_count[c],
                },
                contenders => MediumResolution::Collision { contenders },
            };
            expected.push((ChannelId::new(c as u16), resolution));
        }
        saw_channel_event |= !expected.is_empty();
        assert_eq!(observed, expected, "channel event sequence diverged");
    }
    assert!(saw_channel_event, "run produced no channel activity");
}

fn spectrum_schedule() -> DynamicsSchedule {
    DynamicsSchedule::new(vec![
        TimedEvent::new(
            3,
            NetworkEvent::ChannelLost {
                node: NodeId::new(0),
                channel: ChannelId::new(1),
            },
        ),
        TimedEvent::new(
            7,
            NetworkEvent::EdgeRemove {
                from: NodeId::new(1),
                to: NodeId::new(2),
            },
        ),
        TimedEvent::new(
            15,
            NetworkEvent::ChannelGained {
                node: NodeId::new(0),
                channel: ChannelId::new(1),
            },
        ),
        TimedEvent::new(
            21,
            NetworkEvent::EdgeAdd {
                from: NodeId::new(1),
                to: NodeId::new(2),
            },
        ),
    ])
}

#[test]
fn same_seed_dynamic_traces_are_byte_identical() {
    // The beacon cache is invalidated by spectrum events; a same-seed rerun
    // under a non-empty schedule must still reproduce the trace exactly.
    let (out_a, a) = dynamic_trace_bytes(0xD3, Some(spectrum_schedule()));
    let (out_b, b) = dynamic_trace_bytes(0xD3, Some(spectrum_schedule()));
    assert_eq!(out_a.deliveries(), out_b.deliveries());
    assert_eq!(out_a.link_coverage(), out_b.link_coverage());
    assert_eq!(a, b, "same seed + schedule must reproduce the trace");
    let text = String::from_utf8(a).expect("utf8");
    assert!(
        text.contains("\"channel_changed\""),
        "schedule events must appear in the trace"
    );
}

#[test]
fn same_seed_async_traces_are_byte_identical() {
    let mk = |seed: u64| {
        let tree = SeedTree::new(seed);
        let network = net(&tree);
        let delta = network.max_degree().max(1) as u64;
        let mut sink = JsonlTraceSink::new(Vec::new());
        let out = run_async_discovery_observed(
            &network,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
            AsyncRunConfig::until_complete(200_000),
            tree.branch("run"),
            &mut sink,
        )
        .expect("run");
        assert!(out.completed());
        sink.finish().expect("no io error")
    };
    let a = mk(0xE7);
    let b = mk(0xE7);
    assert_eq!(a, b, "async same-seed traces must be byte-identical");
    let c = mk(0xE8);
    assert_ne!(a, c, "different seeds should diverge");
}

fn faulted_trace_bytes(
    seed: u64,
    dynamics: DynamicsSchedule,
    faults: FaultPlan,
) -> (SyncOutcome, Vec<u8>) {
    let tree = SeedTree::new(seed);
    let network = net(&tree);
    let mut sink = JsonlTraceSink::new(Vec::new());
    let out = mmhew::discovery::run_sync_discovery_faulted_observed(
        &network,
        sync_alg(&network),
        StartSchedule::Identical,
        dynamics,
        faults,
        SyncRunConfig::until_complete(50_000),
        tree.branch("run"),
        &mut sink,
    )
    .expect("run");
    (out, sink.finish().expect("no io error"))
}

#[test]
fn empty_fault_plan_is_trace_neutral() {
    // Acceptance criterion of the fault subsystem: an empty FaultPlan
    // produces byte-identical outcomes AND traces to the same seed with no
    // plan attached.
    let (plain, plain_trace) = dynamic_trace_bytes(0xF1, None);
    let (faulted, faulted_trace) =
        faulted_trace_bytes(0xF1, DynamicsSchedule::empty(), FaultPlan::new());
    assert_eq!(plain.completion_slot(), faulted.completion_slot());
    assert_eq!(plain.deliveries(), faulted.deliveries());
    assert_eq!(plain.collisions(), faulted.collisions());
    assert_eq!(plain.action_counts(), faulted.action_counts());
    assert_eq!(plain.link_coverage(), faulted.link_coverage());
    assert_eq!(faulted.beacon_losses(), 0);
    assert_eq!(faulted.jam_losses(), 0);
    assert_eq!(faulted.capture_deliveries(), 0);
    assert_eq!(plain_trace, faulted_trace, "traces must be byte-identical");
}

#[test]
fn empty_fault_plan_is_trace_neutral_under_dynamics() {
    // Neutrality must also hold when the run already carries a non-empty
    // dynamics schedule: the plan-free and empty-plan code paths interleave
    // identically with dynamics application.
    let (dynamic, dynamic_trace) = dynamic_trace_bytes(0xF2, Some(spectrum_schedule()));
    let (faulted, faulted_trace) = faulted_trace_bytes(0xF2, spectrum_schedule(), FaultPlan::new());
    assert_eq!(dynamic.completion_slot(), faulted.completion_slot());
    assert_eq!(dynamic.deliveries(), faulted.deliveries());
    assert_eq!(dynamic.link_coverage(), faulted.link_coverage());
    assert_eq!(
        dynamic_trace, faulted_trace,
        "dynamics + empty plan must not perturb the trace"
    );
}

#[test]
fn empty_fault_plan_is_trace_neutral_async() {
    let tree = SeedTree::new(0xF3);
    let network = net(&tree);
    let delta = network.max_degree().max(1) as u64;
    let alg = || AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive"));
    let config = AsyncRunConfig::until_complete(200_000);
    let mut plain_sink = JsonlTraceSink::new(Vec::new());
    let plain = run_async_discovery_observed(
        &network,
        alg(),
        config.clone(),
        tree.branch("run"),
        &mut plain_sink,
    )
    .expect("run");
    let mut faulted_sink = JsonlTraceSink::new(Vec::new());
    let faulted = mmhew::discovery::run_async_discovery_faulted_observed(
        &network,
        alg(),
        DynamicsSchedule::empty(),
        FaultPlan::new(),
        config,
        tree.branch("run"),
        &mut faulted_sink,
    )
    .expect("run");
    assert_eq!(plain.completion_time(), faulted.completion_time());
    assert_eq!(plain.deliveries(), faulted.deliveries());
    assert_eq!(plain.action_counts(), faulted.action_counts());
    assert_eq!(faulted.beacon_losses(), 0);
    assert_eq!(faulted.jam_losses(), 0);
    assert_eq!(
        plain_sink.finish().expect("no io error"),
        faulted_sink.finish().expect("no io error"),
        "async traces must be byte-identical"
    );
}

#[test]
fn fault_events_appear_in_traces_and_counters_reconcile() {
    use mmhew::faults::{GilbertElliott, LinkLossModel};
    // A chain pinned to the bad state with certain loss: every clear
    // reception becomes a beacon_lost event.
    let plan = FaultPlan::new().with_default_loss(LinkLossModel::GilbertElliott(
        GilbertElliott::new(1.0, 0.0, 0.0, 1.0),
    ));
    let tree = SeedTree::new(0xF4);
    let network = net(&tree);
    let mut metrics = MetricsSink::new();
    let out = mmhew::discovery::run_sync_discovery_faulted_observed(
        &network,
        sync_alg(&network),
        StartSchedule::Identical,
        DynamicsSchedule::empty(),
        plan,
        SyncRunConfig::fixed(200),
        tree.branch("run"),
        &mut metrics,
    )
    .expect("run");
    assert_eq!(out.deliveries(), 0, "blackout delivers nothing");
    assert!(out.beacon_losses() > 0, "losses must occur in 200 slots");
    assert_eq!(
        metrics.beacons_lost(),
        out.beacon_losses(),
        "sink and outcome must agree"
    );
}

#[test]
fn fault_events_serialize_stably() {
    // The JSONL trace format is a contract: each fault variant has a fixed
    // kind tag and a deterministic, externally-tagged JSON shape.
    use mmhew::obs::json::to_string;
    use mmhew::obs::Stamp;
    let cases: Vec<(SimEvent, &str, &str)> = vec![
        (
            SimEvent::BeaconLost {
                at: Stamp::Slot(5),
                from: NodeId::new(1),
                to: NodeId::new(2),
            },
            "beacon_lost",
            r#"{"beacon_lost":{"at":{"slot":5},"from":1,"to":2}}"#,
        ),
        (
            SimEvent::SlotJammed {
                at: Stamp::Slot(6),
                channel: ChannelId::new(3),
                losses: 2,
            },
            "slot_jammed",
            r#"{"slot_jammed":{"at":{"slot":6},"channel":3,"losses":2}}"#,
        ),
        (
            SimEvent::CaptureDelivery {
                at: Stamp::Slot(7),
                to: NodeId::new(0),
                from: NodeId::new(4),
                contenders: 3,
            },
            "capture_delivery",
            r#"{"capture_delivery":{"at":{"slot":7},"to":0,"from":4,"contenders":3}}"#,
        ),
        (
            SimEvent::NodeCrashed {
                at: Stamp::Slot(8),
                node: NodeId::new(2),
            },
            "node_crashed",
            r#"{"node_crashed":{"at":{"slot":8},"node":2}}"#,
        ),
        (
            SimEvent::NodeRecovered {
                at: Stamp::Real(RealTime::from_nanos(5_000)),
                node: NodeId::new(2),
            },
            "node_recovered",
            r#"{"node_recovered":{"at":{"real":5000},"node":2}}"#,
        ),
    ];
    for (event, kind, json) in cases {
        assert_eq!(event.kind(), kind);
        assert_eq!(to_string(&event).expect("serializes"), json);
    }
}

fn perfetto_tee_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mmhew-obs-perfetto");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

#[test]
fn perfetto_tee_is_outcome_and_trace_neutral() {
    // Acceptance criterion of the Perfetto subsystem: `with_perfetto`
    // only observes. Same seed ⇒ same outcome AND a byte-identical JSONL
    // trace whether or not the tee is attached.
    let run = |tee: Option<std::path::PathBuf>| {
        let tree = SeedTree::new(0x9F);
        let network = net(&tree);
        let mut sink = JsonlTraceSink::new(Vec::new());
        let mut scenario = Scenario::sync(&network, sync_alg(&network))
            .config(SyncRunConfig::until_complete(50_000))
            .with_sink(&mut sink);
        if let Some(path) = tee {
            scenario = scenario.with_perfetto(path);
        }
        let out = scenario.run(tree.branch("run")).expect("run");
        (out, sink.finish().expect("no io error"))
    };
    let (plain, plain_trace) = run(None);
    let path = perfetto_tee_path("sync-neutrality.pftrace");
    let (teed, teed_trace) = run(Some(path.clone()));
    assert_eq!(plain.completion_slot(), teed.completion_slot());
    assert_eq!(plain.deliveries(), teed.deliveries());
    assert_eq!(plain.collisions(), teed.collisions());
    assert_eq!(plain.action_counts(), teed.action_counts());
    assert_eq!(
        plain_trace, teed_trace,
        "the tee must not perturb the JSONL trace"
    );
    assert!(
        std::fs::metadata(&path).expect("tee file written").len() > 0,
        "the tee must still produce a non-empty .pftrace"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn perfetto_tee_is_outcome_and_trace_neutral_async() {
    let run = |tee: Option<std::path::PathBuf>| {
        let tree = SeedTree::new(0xA0);
        let network = net(&tree);
        let delta = network.max_degree().max(1) as u64;
        let mut sink = JsonlTraceSink::new(Vec::new());
        let mut scenario = Scenario::asynchronous(
            &network,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
        )
        .config(AsyncRunConfig::until_complete(200_000))
        .with_sink(&mut sink);
        if let Some(path) = tee {
            scenario = scenario.with_perfetto(path);
        }
        let out = scenario.run(tree.branch("run")).expect("run");
        (out, sink.finish().expect("no io error"))
    };
    let (plain, plain_trace) = run(None);
    let path = perfetto_tee_path("async-neutrality.pftrace");
    let (teed, teed_trace) = run(Some(path.clone()));
    assert_eq!(plain.completion_time(), teed.completion_time());
    assert_eq!(plain.deliveries(), teed.deliveries());
    assert_eq!(plain.action_counts(), teed.action_counts());
    assert_eq!(
        plain_trace, teed_trace,
        "the tee must not perturb the async JSONL trace"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn attaching_a_sink_does_not_change_the_simulation() {
    let tree = SeedTree::new(0xB3);
    let network = net(&tree);
    let plain = run_sync_discovery(
        &network,
        sync_alg(&network),
        StartSchedule::Identical,
        SyncRunConfig::until_complete(50_000),
        tree.branch("run"),
    )
    .expect("run");
    let mut sink = CollectSink::new();
    let observed = run_sync_discovery_observed(
        &network,
        sync_alg(&network),
        StartSchedule::Identical,
        SyncRunConfig::until_complete(50_000),
        tree.branch("run"),
        &mut sink,
    )
    .expect("run");
    assert_eq!(plain.completion_slot(), observed.completion_slot());
    assert_eq!(plain.deliveries(), observed.deliveries());
    assert_eq!(plain.collisions(), observed.collisions());
    assert_eq!(plain.action_counts(), observed.action_counts());
}
