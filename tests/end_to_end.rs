//! End-to-end correctness: every algorithm × every topology family ×
//! every availability model completes and reproduces the ground truth
//! exactly.
// These suites predate the `Scenario` builder and deliberately keep
// calling the deprecated `run_*` shims: they are the compatibility
// contract that the shims must keep honoring until removal.
#![allow(deprecated)]

use mmhew::prelude::*;

fn networks(seed: SeedTree) -> Vec<(String, Network)> {
    let mut nets = Vec::new();
    let builders: Vec<(&str, NetworkBuilder)> = vec![
        ("line6", NetworkBuilder::line(6)),
        ("ring8", NetworkBuilder::ring(8)),
        ("grid3x3", NetworkBuilder::grid(3, 3)),
        ("star7", NetworkBuilder::star(7)),
        ("complete5", NetworkBuilder::complete(5)),
        ("disk15", NetworkBuilder::unit_disk(15, 8.0, 3.5)),
        ("er12", NetworkBuilder::erdos_renyi(12, 0.4)),
    ];
    let avail_models: Vec<(&str, AvailabilityModel)> = vec![
        ("full", AvailabilityModel::Full),
        ("subset", AvailabilityModel::UniformSubset { size: 4 }),
        (
            "overlap",
            AvailabilityModel::PairwiseOverlap {
                shared: 2,
                private: 2,
            },
        ),
    ];
    for (bname, builder) in &builders {
        for (aname, model) in &avail_models {
            let universe = match model {
                AvailabilityModel::PairwiseOverlap { shared, private } => *shared + 15 * *private,
                _ => 8,
            };
            let net = builder
                .clone()
                .universe(universe)
                .availability(model.clone())
                .build(seed.branch(bname).branch(aname))
                .expect("valid configuration");
            nets.push((format!("{bname}/{aname}"), net));
        }
    }
    nets
}

#[test]
fn all_sync_algorithms_reach_exact_ground_truth() {
    let seed = SeedTree::new(0xE2E);
    for (name, net) in networks(seed.branch("nets")) {
        let delta = net.max_degree().max(1) as u64;
        let algorithms: Vec<(&str, SyncAlgorithm)> = vec![
            (
                "alg1",
                SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
            ),
            ("alg2", SyncAlgorithm::Adaptive),
            (
                "alg3",
                SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            ),
        ];
        for (alg_name, alg) in algorithms {
            let out = run_sync_discovery(
                &net,
                alg,
                StartSchedule::Identical,
                SyncRunConfig::until_complete(3_000_000),
                seed.branch("run").branch(&name).branch(alg_name),
            )
            .expect("non-empty availability");
            assert!(out.completed(), "{name}/{alg_name} did not complete");
            assert!(
                tables_match_ground_truth(&net, out.tables()),
                "{name}/{alg_name} tables diverge from ground truth"
            );
        }
    }
}

#[test]
fn baseline_reaches_exact_ground_truth() {
    let seed = SeedTree::new(0xBA5E);
    let net = NetworkBuilder::complete(5)
        .universe(12)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("net"))
        .expect("valid configuration");
    let out = run_sync_discovery(
        &net,
        SyncAlgorithm::PerChannelBirthday {
            tx_probability: 0.5,
        },
        StartSchedule::Identical,
        SyncRunConfig::until_complete(3_000_000),
        seed.branch("run"),
    )
    .expect("non-empty availability");
    assert!(out.completed());
    assert!(tables_match_ground_truth(&net, out.tables()));
}

#[test]
fn async_algorithm_reaches_exact_ground_truth_on_all_families() {
    let seed = SeedTree::new(0xA57C);
    for (name, net) in networks(seed.branch("nets")) {
        let delta = net.max_degree().max(1) as u64;
        let config = AsyncRunConfig::until_complete(2_000_000)
            .with_clocks(ClockConfig {
                drift: DriftModel::RandomPiecewise {
                    bound: DriftBound::PAPER,
                    segment: RealDuration::from_micros(20),
                },
                offset_window: LocalDuration::from_micros(10),
            })
            .with_starts(AsyncStartSchedule::Staggered {
                window: RealDuration::from_micros(15),
            });
        let out = run_async_discovery(
            &net,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
            config,
            seed.branch("run").branch(&name),
        )
        .expect("non-empty availability");
        assert!(out.completed(), "{name} async did not complete");
        assert!(
            tables_match_ground_truth(&net, out.tables()),
            "{name} async tables diverge from ground truth"
        );
    }
}

#[test]
fn variable_starts_still_reach_ground_truth() {
    let seed = SeedTree::new(0x57A6);
    let net = NetworkBuilder::grid(3, 4)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("net"))
        .expect("valid configuration");
    let delta = net.max_degree().max(1) as u64;
    for window in [10u64, 1_000, 50_000] {
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            StartSchedule::Staggered { window },
            SyncRunConfig::until_complete(window + 3_000_000),
            seed.branch("run").index(window),
        )
        .expect("non-empty availability");
        assert!(out.completed(), "window {window} did not complete");
        assert!(tables_match_ground_truth(&net, out.tables()));
        assert!(out.completion_slot().expect("complete") >= out.latest_start());
    }
}

#[test]
fn isolated_node_discovers_nothing_and_blocks_nobody() {
    // Two cliques joined by nothing; plus a node with a disjoint channel
    // set inside one clique (link-isolated even though graph-adjacent).
    let seed = SeedTree::new(0x150);
    let mut topo = Topology::new(5);
    for (a, b) in [(0u32, 1u32), (1, 2), (0, 2), (3, 4)] {
        topo.add_bidirectional(NodeId::new(a), NodeId::new(b));
    }
    let sets = vec![
        [0u16, 1].into_iter().collect::<ChannelSet>(),
        [0u16, 1].into_iter().collect(),
        [4u16, 5].into_iter().collect(), // adjacent to 0,1 but no common channel
        [2u16, 3].into_iter().collect(),
        [2u16, 3].into_iter().collect(),
    ];
    let net = NetworkBuilder::from_topology(topo)
        .universe(6)
        .availability(AvailabilityModel::Explicit(sets))
        .build(seed.branch("net"))
        .expect("valid configuration");
    // Node 2 has no links at all.
    assert!(net
        .links()
        .iter()
        .all(|l| l.from != NodeId::new(2) && l.to != NodeId::new(2)));
    let out = run_sync_discovery(
        &net,
        SyncAlgorithm::Adaptive,
        StartSchedule::Identical,
        SyncRunConfig::until_complete(1_000_000),
        seed.branch("run"),
    )
    .expect("non-empty availability");
    assert!(out.completed(), "isolated node must not block completion");
    assert!(out.table(NodeId::new(2)).is_empty());
    assert!(tables_match_ground_truth(&net, out.tables()));
}
