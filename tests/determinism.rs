//! Reproducibility: every simulation is a pure function of its master
//! seed, across both engines and all layers of the stack.
// These suites predate the `Scenario` builder and deliberately keep
// calling the deprecated `run_*` shims: they are the compatibility
// contract that the shims must keep honoring until removal.
#![allow(deprecated)]

use mmhew::prelude::*;

fn hetero_net(seed: SeedTree) -> Network {
    NetworkBuilder::unit_disk(20, 9.0, 3.5)
        .universe(10)
        .availability(AvailabilityModel::UniformSubset { size: 5 })
        .build(seed)
        .expect("valid configuration")
}

#[test]
fn network_generation_is_seed_deterministic() {
    let a = hetero_net(SeedTree::new(1).branch("net"));
    let b = hetero_net(SeedTree::new(1).branch("net"));
    assert_eq!(a, b);
    let c = hetero_net(SeedTree::new(2).branch("net"));
    assert_ne!(a, c);
}

#[test]
fn sync_runs_replay_exactly() {
    let net = hetero_net(SeedTree::new(3).branch("net"));
    let delta = net.max_degree().max(1) as u64;
    let run = |seed: u64| {
        run_sync_discovery(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
            StartSchedule::Staggered { window: 100 },
            SyncRunConfig::until_complete(2_000_000),
            SeedTree::new(seed),
        )
        .expect("non-empty availability")
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.completion_slot(), b.completion_slot());
    assert_eq!(a.link_coverage(), b.link_coverage());
    assert_eq!(a.deliveries(), b.deliveries());
    assert_eq!(a.collisions(), b.collisions());
    assert_eq!(a.tables(), b.tables());

    let c = run(43);
    assert_ne!(
        a.link_coverage(),
        c.link_coverage(),
        "different seeds must explore different schedules"
    );
}

#[test]
fn async_runs_replay_exactly_under_drift() {
    let net = hetero_net(SeedTree::new(4).branch("net"));
    let delta = net.max_degree().max(1) as u64;
    let config = AsyncRunConfig::until_complete(1_000_000)
        .with_clocks(ClockConfig {
            drift: DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_micros(25),
            },
            offset_window: LocalDuration::from_micros(20),
        })
        .with_starts(AsyncStartSchedule::Staggered {
            window: RealDuration::from_micros(10),
        });
    let run = |seed: u64| {
        run_async_discovery(
            &net,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
            config.clone(),
            SeedTree::new(seed),
        )
        .expect("non-empty availability")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.completion_time(), b.completion_time());
    assert_eq!(a.link_coverage(), b.link_coverage());
    assert_eq!(a.deliveries(), b.deliveries());
    assert_eq!(a.tables(), b.tables());
}

#[test]
fn seed_tree_isolation_between_components() {
    // Changing the run seed must not change the (separately seeded)
    // network, and vice versa.
    let net_seed = SeedTree::new(10).branch("net");
    let a = hetero_net(net_seed);
    let _ = run_sync_discovery(
        &a,
        SyncAlgorithm::Adaptive,
        StartSchedule::Identical,
        SyncRunConfig::until_complete(10_000),
        SeedTree::new(999),
    );
    let b = hetero_net(net_seed);
    assert_eq!(a, b, "running a simulation must not perturb generation");
}
