//! Migration gate for the `TopologyView` read API: no non-shim workspace
//! code may call the deprecated owned topology accessors or re-materialize
//! what the CSR/bitset storage already exposes as borrowed views.
//!
//! `crates/topology/src/network.rs` keeps `available_set`,
//! `neighbors_on_owned`, and `receivers_on_owned` alive as a deprecated
//! compatibility surface (and exercises them in its own shim test); every
//! other library, binary, bench, or example must use the slice/view
//! returning `neighbors_on` / `receivers_on` / `available`. The gate also
//! bans the hot-path allocation idioms the redesign removed: cloning an
//! adjacency slice back into a `Vec` and calling `.clone()` on the `Copy`
//! availability view (the pre-CSR spelling of "materialize an owned
//! `ChannelSet`" — the rare legitimate owned copy is spelled
//! `.to_owned()`, which makes the allocation explicit).

use std::fs;
use std::path::{Path, PathBuf};

/// Deprecated owned accessors. Exact-name matching with identifier
/// boundary checks on both sides.
const LEGACY_NAMES: &[&str] = &["available_set", "neighbors_on_owned", "receivers_on_owned"];

/// Hot-path re-materialization idioms: `(method, banned continuation)` —
/// a line violates when the continuation appears after a call to the
/// method *with arguments* (the argument requirement keeps zero-arg
/// getters like `Beacon::available()`, which returns `&ChannelSet` and is
/// legitimately cloned, out of scope). `.clone()` on the network's
/// `available(u)` is doubly wrong post-redesign: `ChannelSetRef` is
/// `Copy`, so it silently clones the *reference*.
const BANNED_CHAINS: &[(&str, &str)] = &[
    ("neighbors_on", ".to_vec()"),
    ("receivers_on", ".to_vec()"),
    ("available", ".clone()"),
];

/// Files allowed to mention the legacy names: the shim definitions (and
/// their conformance test) live in the network module itself.
const ALLOWED: &[&str] = &["crates/topology/src/network.rs"];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strips line comments so doc references (migration notes, deprecation
/// messages) don't trip the gate.
fn code_lines(source: &str) -> impl Iterator<Item = (usize, &str)> {
    source.lines().enumerate().filter_map(|(i, line)| {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            return None;
        }
        let code = line.split("//").next().unwrap_or(line);
        Some((i + 1, code))
    })
}

fn ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// True when `code[start..start + name.len()]` is the identifier itself,
/// not a fragment of a longer one or a quoted mention.
fn is_identifier_use(code: &str, start: usize, name: &str) -> bool {
    if start > 0 {
        let before = code.as_bytes()[start - 1];
        if ident_byte(before) || before == b'"' {
            return false;
        }
    }
    let end = start + name.len();
    if end < code.len() && ident_byte(code.as_bytes()[end]) {
        return false;
    }
    true
}

/// Finds `method(` … `)` immediately followed by `chain` on one line,
/// matching the parenthesis that closes the call.
fn chained_call_at(code: &str, method: &str, chain: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(method) {
        let at = from + pos;
        from = at + method.len();
        if !is_identifier_use(code, at, method) {
            continue;
        }
        let rest = &code[at + method.len()..];
        if !rest.starts_with('(') || rest.starts_with("()") {
            continue;
        }
        let mut depth = 0usize;
        for (i, b) in rest.bytes().enumerate() {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        if rest[i + 1..].starts_with(chain) {
                            return true;
                        }
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    false
}

fn collect_workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in ["src", "examples", "crates", "tests"] {
        rust_files(&root.join(dir), &mut files);
    }
    files.sort();
    assert!(
        files.len() > 20,
        "gate walked suspiciously few files ({}) — directory layout changed?",
        files.len()
    );
    files
}

#[test]
fn no_workspace_code_calls_the_deprecated_topology_accessors() {
    let root = workspace_root();
    let allowed: Vec<PathBuf> = ALLOWED.iter().map(|p| root.join(p)).collect();
    let mut violations = Vec::new();
    for file in collect_workspace_files(&root) {
        if allowed.iter().any(|a| *a == file) || file == root.join(file!()) {
            continue;
        }
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        for (line_no, code) in code_lines(&source) {
            for name in LEGACY_NAMES {
                let mut from = 0;
                while let Some(pos) = code[from..].find(name) {
                    let at = from + pos;
                    if is_identifier_use(code, at, name) {
                        violations.push(format!(
                            "{}:{line_no}: calls deprecated `{name}` — use the borrowed view API",
                            file.strip_prefix(&root).unwrap_or(&file).display()
                        ));
                        break;
                    }
                    from = at + name.len();
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "deprecated topology accessors outside the shim surface:\n{}",
        violations.join("\n")
    );
}

#[test]
fn no_workspace_code_rematerializes_views_on_the_hot_path() {
    let root = workspace_root();
    // The shim bodies are the one place allowed to re-materialize: that is
    // their whole job.
    let allowed: Vec<PathBuf> = ALLOWED.iter().map(|p| root.join(p)).collect();
    let mut violations = Vec::new();
    for file in collect_workspace_files(&root) {
        if allowed.iter().any(|a| *a == file) || file == root.join(file!()) {
            continue;
        }
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        for (line_no, code) in code_lines(&source) {
            for (method, chain) in BANNED_CHAINS {
                if chained_call_at(code, method, chain) {
                    violations.push(format!(
                        "{}:{line_no}: `{method}(…){chain}` re-materializes a borrowed view \
                         — keep the slice/view, or spell an owned copy `.to_owned()`",
                        file.strip_prefix(&root).unwrap_or(&file).display()
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "hot-path view re-materialization:\n{}",
        violations.join("\n")
    );
}

#[test]
fn the_shim_surface_still_exists() {
    // The allow-list must track reality: if the shims move, update both
    // the list above and this test.
    let root = workspace_root();
    for path in ALLOWED {
        let full = root.join(path);
        let source = fs::read_to_string(&full)
            .unwrap_or_else(|_| panic!("allow-listed file {path} is missing"));
        assert!(
            LEGACY_NAMES.iter().any(|n| source.contains(n)),
            "{path} no longer mentions the deprecated accessors — trim the allow-list"
        );
    }
}
