//! The theorems' bounds must hold empirically: measured completion never
//! exceeds the predicted slot/frame budgets (at the stated failure
//! probability), across heterogeneous networks.
// These suites predate the `Scenario` builder and deliberately keep
// calling the deprecated `run_*` shims: they are the compatibility
// contract that the shims must keep honoring until removal.
#![allow(deprecated)]

use mmhew::prelude::*;

const EPSILON: f64 = 0.05;

fn test_networks(seed: SeedTree) -> Vec<(String, Network)> {
    vec![
        (
            "ring12/full".into(),
            NetworkBuilder::ring(12)
                .universe(4)
                .build(seed.branch("a"))
                .expect("valid"),
        ),
        (
            "grid3x3/subset".into(),
            NetworkBuilder::grid(3, 3)
                .universe(8)
                .availability(AvailabilityModel::UniformSubset { size: 4 })
                .build(seed.branch("b"))
                .expect("valid"),
        ),
        (
            "complete6/overlap".into(),
            NetworkBuilder::complete(6)
                .universe(2 + 6 * 2)
                .availability(AvailabilityModel::PairwiseOverlap {
                    shared: 2,
                    private: 2,
                })
                .build(seed.branch("c"))
                .expect("valid"),
        ),
    ]
}

#[test]
fn theorem1_bound_holds() {
    let seed = SeedTree::new(0x71);
    for (name, net) in test_networks(seed.branch("nets")) {
        let delta = net.max_degree().max(1) as u64;
        let bound = Bounds::from_network(&net, delta, EPSILON).theorem1_slots();
        for rep in 0..5u64 {
            let out = run_sync_discovery(
                &net,
                SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
                StartSchedule::Identical,
                SyncRunConfig::until_complete(bound.ceil() as u64),
                seed.branch("run").branch(&name).index(rep),
            )
            .expect("non-empty availability");
            assert!(
                out.completed(),
                "{name} rep {rep}: did not finish within the Theorem 1 budget {bound:.0}"
            );
        }
    }
}

#[test]
fn theorem3_bound_holds_with_staggered_starts() {
    let seed = SeedTree::new(0x73);
    for (name, net) in test_networks(seed.branch("nets")) {
        let delta = net.max_degree().max(1) as u64;
        let bound = Bounds::from_network(&net, delta, EPSILON).theorem3_slots();
        let window = 2_000u64;
        for rep in 0..5u64 {
            let out = run_sync_discovery(
                &net,
                SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
                StartSchedule::Staggered { window },
                SyncRunConfig::until_complete(window + bound.ceil() as u64),
                seed.branch("run").branch(&name).index(rep),
            )
            .expect("non-empty availability");
            assert!(
                out.completed(),
                "{name} rep {rep}: did not finish within T_s + Theorem 3 budget {bound:.0}"
            );
            assert!(
                (out.slots_to_complete().expect("complete") as f64) <= bound,
                "{name} rep {rep}: {} slots after T_s exceeds the bound {bound:.0}",
                out.slots_to_complete().expect("complete")
            );
        }
    }
}

#[test]
fn theorem9_frame_bound_holds_at_max_drift() {
    let seed = SeedTree::new(0x79);
    for (name, net) in test_networks(seed.branch("nets")) {
        let delta = net.max_degree().max(1) as u64;
        let bound = Bounds::from_network(&net, delta, EPSILON).theorem9_frames();
        let config = AsyncRunConfig::until_complete(bound.ceil() as u64 * 2)
            .with_clocks(ClockConfig {
                drift: DriftModel::RandomPiecewise {
                    bound: DriftBound::PAPER,
                    segment: RealDuration::from_micros(15),
                },
                offset_window: LocalDuration::from_micros(30),
            })
            .with_starts(AsyncStartSchedule::Staggered {
                window: RealDuration::from_micros(30),
            });
        for rep in 0..3u64 {
            let out = run_async_discovery(
                &net,
                AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
                config.clone(),
                seed.branch("run").branch(&name).index(rep),
            )
            .expect("non-empty availability");
            let frames = out
                .min_full_frames_at_completion()
                .unwrap_or_else(|| panic!("{name} rep {rep}: async run incomplete"));
            assert!(
                (frames as f64) <= bound,
                "{name} rep {rep}: {frames} frames exceeds Theorem 9 bound {bound:.0}"
            );
        }
    }
}

#[test]
fn empirical_failure_rate_below_epsilon() {
    // Sharper statistical check on one network: at the ε=0.2 budget, at
    // most ~20% of 30 runs may fail; observing more than 40% would be a
    // >99%-confidence violation.
    let seed = SeedTree::new(0x7F);
    let net = NetworkBuilder::ring(10)
        .universe(4)
        .build(seed.branch("net"))
        .expect("valid");
    let eps = 0.2;
    let budget = Bounds::from_network(&net, 4, eps).theorem1_slots().ceil() as u64;
    let reps = 30u64;
    let failures = (0..reps)
        .filter(|&rep| {
            !run_sync_discovery(
                &net,
                SyncAlgorithm::Staged(SyncParams::new(4).expect("positive")),
                StartSchedule::Identical,
                SyncRunConfig::until_complete(budget),
                seed.branch("run").index(rep),
            )
            .expect("non-empty availability")
            .completed()
        })
        .count();
    assert!(
        (failures as f64 / reps as f64) <= 2.0 * eps,
        "{failures}/{reps} failures at ε={eps} budget"
    );
}
