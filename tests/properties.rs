//! Cross-crate property-based tests: random networks and random
//! configurations must uphold the model invariants end-to-end.
// These suites predate the `Scenario` builder and deliberately keep
// calling the deprecated `run_*` shims: they are the compatibility
// contract that the shims must keep honoring until removal.
#![allow(deprecated)]

use mmhew::prelude::*;
use proptest::prelude::*;

/// Strategy: a random connected-ish heterogeneous network description.
fn network_strategy() -> impl Strategy<Value = (Network, u64)> {
    (
        3usize..12,     // nodes
        2u16..10,       // universe
        1u16..6,        // subset size (clamped to universe)
        0.2f64..1.0,    // ER edge probability
        0u64..u64::MAX, // seed
    )
        .prop_map(|(n, universe, size, p, seed)| {
            let size = size.min(universe);
            let net = NetworkBuilder::erdos_renyi(n, p)
                .universe(universe)
                .availability(AvailabilityModel::UniformSubset { size })
                .build(SeedTree::new(seed))
                .expect("always valid");
            (net, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's parameter constraints hold for every generated network:
    /// ρ ∈ [1/S, 1] when links exist, Δ ≤ N−1, spans ⊆ intersections.
    #[test]
    fn network_invariants((net, _seed) in network_strategy()) {
        let s = net.s_max();
        prop_assert!(s >= 1);
        prop_assert!(net.max_degree() < net.node_count());
        if !net.links().is_empty() {
            prop_assert!(net.rho() <= 1.0 + 1e-12);
            prop_assert!(net.rho() >= 1.0 / s as f64 - 1e-12);
        }
        for link in net.links() {
            let span = net.span(link.from, link.to);
            prop_assert!(!span.is_empty(), "links must have non-empty span");
            let inter = net.available(link.from).intersection(net.available(link.to));
            prop_assert!(span.is_subset(&inter));
            // Symmetric ER graph: reverse link must exist too.
            let reverse = Link {
                from: link.to,
                to: link.from,
            };
            prop_assert!(net.links().contains(&reverse));
        }
        // Per-channel degree is consistent with neighbor lists.
        for i in 0..net.node_count() {
            let u = NodeId::new(i as u32);
            for c in 0..net.universe_size() {
                let c = ChannelId::new(c);
                prop_assert_eq!(net.degree_on(u, c), net.neighbors_on(u, c).len());
                for &v in net.neighbors_on(u, c) {
                    prop_assert!(net.available(v).contains(c));
                    prop_assert!(net.available(u).contains(c));
                }
            }
        }
    }

    /// Any partial synchronous run is sound (no phantom neighbors, no
    /// inflated channel sets), and completed runs match ground truth.
    #[test]
    fn sync_runs_always_sound((net, seed) in network_strategy(), budget in 1u64..3_000) {
        let delta = net.max_degree().max(1) as u64;
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
            StartSchedule::Identical,
            SyncRunConfig::until_complete(budget),
            SeedTree::new(seed ^ 0xABCD),
        ).expect("non-empty availability");
        prop_assert!(tables_are_sound(&net, out.tables()));
        if out.completed() {
            prop_assert!(tables_match_ground_truth(&net, out.tables()));
            // A network with no links completes vacuously with no
            // completion slot.
            if let Some(slot) = out.completion_slot() {
                prop_assert!(slot < budget);
            } else {
                prop_assert!(net.links().is_empty());
            }
        }
        // Coverage times are within the executed window.
        for (_, t) in out.link_coverage() {
            if let Some(t) = t {
                prop_assert!(*t < out.slots_executed());
            }
        }
    }

    /// Any partial asynchronous run is likewise sound, under arbitrary
    /// admissible drift and offsets.
    #[test]
    fn async_runs_always_sound(
        (net, seed) in network_strategy(),
        frames in 1u64..400,
        offset_us in 0u64..50,
    ) {
        let delta = net.max_degree().max(1) as u64;
        let config = AsyncRunConfig::until_complete(frames)
            .with_clocks(ClockConfig {
                drift: DriftModel::RandomPiecewise {
                    bound: DriftBound::PAPER,
                    segment: RealDuration::from_micros(7),
                },
                offset_window: LocalDuration::from_micros(offset_us),
            })
            .with_starts(AsyncStartSchedule::Staggered {
                window: RealDuration::from_micros(offset_us),
            });
        let out = run_async_discovery(
            &net,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
            config,
            SeedTree::new(seed ^ 0x1234),
        ).expect("non-empty availability");
        prop_assert!(tables_are_sound(&net, out.tables()));
        if out.completed() {
            prop_assert!(tables_match_ground_truth(&net, out.tables()));
        }
    }

    /// A recorded discovery implies a real link whose span is non-empty,
    /// and the recorded set is exactly A(v) ∩ A(u) under uniform
    /// propagation.
    #[test]
    fn recorded_sets_are_exact_intersections((net, seed) in network_strategy()) {
        let delta = net.max_degree().max(1) as u64;
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            StartSchedule::Identical,
            SyncRunConfig::until_complete(5_000),
            SeedTree::new(seed ^ 0x77),
        ).expect("non-empty availability");
        for (i, table) in out.tables().iter().enumerate() {
            let u = NodeId::new(i as u32);
            for (v, recorded) in table.iter() {
                let expected = net.available(v).intersection(net.available(u));
                prop_assert_eq!(recorded, &expected);
            }
        }
    }
}
