//! Adversarial and degraded configurations: the system must degrade
//! predictably, never silently corrupt results.
// These suites predate the `Scenario` builder and deliberately keep
// calling the deprecated `run_*` shims: they are the compatibility
// contract that the shims must keep honoring until removal.
#![allow(deprecated)]

use mmhew::prelude::*;

#[test]
fn empty_availability_is_rejected_not_ignored() {
    let seed = SeedTree::new(1);
    let net = NetworkBuilder::line(3)
        .universe(2)
        .availability(AvailabilityModel::Explicit(vec![
            ChannelSet::full(2),
            ChannelSet::new(),
            ChannelSet::full(2),
        ]))
        .build(seed.branch("net"))
        .expect("network itself is valid");
    for alg in [
        SyncAlgorithm::Adaptive,
        SyncAlgorithm::Staged(SyncParams::new(2).expect("positive")),
    ] {
        let err = run_sync_discovery(
            &net,
            alg,
            StartSchedule::Identical,
            SyncRunConfig::until_complete(100),
            seed.branch("run"),
        )
        .expect_err("node without channels cannot participate");
        assert_eq!(err, ProtocolError::EmptyChannelSet);
    }
    let err = run_async_discovery(
        &net,
        AsyncAlgorithm::FrameBased(AsyncParams::new(2).expect("positive")),
        AsyncRunConfig::until_complete(100),
        seed.branch("async"),
    )
    .expect_err("async likewise rejects empty sets");
    assert_eq!(err, ProtocolError::EmptyChannelSet);
}

#[test]
fn totally_dead_channels_never_complete_but_stay_sound() {
    let seed = SeedTree::new(2);
    let net = NetworkBuilder::ring(6)
        .universe(3)
        .build(seed.branch("net"))
        .expect("valid");
    let out = run_sync_discovery(
        &net,
        SyncAlgorithm::Uniform(SyncParams::new(2).expect("positive")),
        StartSchedule::Identical,
        SyncRunConfig::until_complete(5_000)
            .with_impairments(Impairments::with_delivery_probability(0.0)),
        seed.branch("run"),
    )
    .expect("valid protocols");
    assert!(!out.completed(), "nothing can be delivered at q=0");
    assert_eq!(out.deliveries(), 0);
    assert!(out.tables().iter().all(NeighborTable::is_empty));
    assert!(out.impairment_losses() > 0, "losses must be accounted");
}

#[test]
fn single_common_channel_bottleneck_completes() {
    // The entire network funnels through channel 0: worst-case contention,
    // ρ = 1/|A| for nodes with private channels.
    let seed = SeedTree::new(3);
    let sets: Vec<ChannelSet> = (0..8u16)
        .map(|i| [0u16, i + 1, i + 9].into_iter().collect())
        .collect();
    let net = NetworkBuilder::complete(8)
        .universe(17)
        .availability(AvailabilityModel::Explicit(sets))
        .build(seed.branch("net"))
        .expect("valid");
    assert!((net.rho() - 1.0 / 3.0).abs() < 1e-12);
    let delta = net.max_degree().max(1) as u64;
    let out = run_sync_discovery(
        &net,
        SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
        StartSchedule::Identical,
        SyncRunConfig::until_complete(5_000_000),
        seed.branch("run"),
    )
    .expect("valid protocols");
    assert!(out.completed());
    assert!(tables_match_ground_truth(&net, out.tables()));
}

#[test]
fn rho_at_absolute_minimum_still_completes() {
    // ρ = 1/S: a single shared channel among S-channel sets.
    let seed = SeedTree::new(4);
    let net = NetworkBuilder::complete(4)
        .universe(1 + 4 * 3)
        .availability(AvailabilityModel::PairwiseOverlap {
            shared: 1,
            private: 3,
        })
        .build(seed.branch("net"))
        .expect("valid");
    assert!((net.rho() - 0.25).abs() < 1e-12);
    assert_eq!(net.s_max(), 4);
    let out = run_sync_discovery(
        &net,
        SyncAlgorithm::Adaptive,
        StartSchedule::Identical,
        SyncRunConfig::until_complete(5_000_000),
        seed.branch("run"),
    )
    .expect("valid protocols");
    assert!(out.completed());
    assert!(tables_match_ground_truth(&net, out.tables()));
}

#[test]
fn heavy_loss_slows_but_does_not_corrupt() {
    let seed = SeedTree::new(5);
    let net = NetworkBuilder::ring(6)
        .universe(2)
        .build(seed.branch("net"))
        .expect("valid");
    let clean = run_sync_discovery(
        &net,
        SyncAlgorithm::Uniform(SyncParams::new(2).expect("positive")),
        StartSchedule::Identical,
        SyncRunConfig::until_complete(5_000_000),
        seed.branch("clean"),
    )
    .expect("valid protocols");
    let lossy = run_sync_discovery(
        &net,
        SyncAlgorithm::Uniform(SyncParams::new(2).expect("positive")),
        StartSchedule::Identical,
        SyncRunConfig::until_complete(5_000_000)
            .with_impairments(Impairments::with_delivery_probability(0.1)),
        seed.branch("lossy"),
    )
    .expect("valid protocols");
    assert!(clean.completed() && lossy.completed());
    assert!(
        lossy.completion_slot().expect("complete") > clean.completion_slot().expect("complete"),
        "loss must slow discovery"
    );
    assert!(tables_match_ground_truth(&net, lossy.tables()));
}

#[test]
fn drift_beyond_assumption_still_sound_even_if_slower() {
    // δ = 1/3 exceeds Assumption 1: Theorem 9's bound is void, but the
    // simulation itself must stay sound (no phantom discoveries), and on
    // this tiny network discovery still eventually happens.
    let seed = SeedTree::new(6);
    let net = NetworkBuilder::line(3)
        .universe(2)
        .build(seed.branch("net"))
        .expect("valid");
    let config = AsyncRunConfig::until_complete(500_000).with_clocks(ClockConfig {
        drift: DriftModel::RandomPiecewise {
            bound: DriftBound::new(1, 3),
            segment: RealDuration::from_micros(10),
        },
        offset_window: LocalDuration::from_micros(10),
    });
    let out = run_async_discovery(
        &net,
        AsyncAlgorithm::FrameBased(AsyncParams::new(2).expect("positive")),
        config,
        seed.branch("run"),
    )
    .expect("valid protocols");
    assert!(tables_are_sound(&net, out.tables()));
    assert!(out.completed(), "tiny network should still complete");
}

#[test]
fn zero_budget_runs_are_clean_noops() {
    let seed = SeedTree::new(7);
    let net = NetworkBuilder::line(2)
        .universe(1)
        .build(seed.branch("net"))
        .expect("valid");
    let out = run_sync_discovery(
        &net,
        SyncAlgorithm::Adaptive,
        StartSchedule::Identical,
        SyncRunConfig::until_complete(0),
        seed.branch("run"),
    )
    .expect("valid protocols");
    assert!(!out.completed());
    assert_eq!(out.slots_executed(), 0);
    assert_eq!(out.deliveries(), 0);
}
