//! Cross-engine consistency: the asynchronous engine with ideal clocks,
//! zero offsets and identical starts degenerates into a frame-granular
//! slotted process, so its statistics must agree with a synchronous run of
//! the equivalent protocol.
// These suites predate the `Scenario` builder and deliberately keep
// calling the deprecated `run_*` shims: they are the compatibility
// contract that the shims must keep honoring until removal.
#![allow(deprecated)]

use mmhew::prelude::*;

/// With ideal clocks and identical starts, every node's frames coincide
/// exactly; a frame behaves like one synchronous "slot" in which a node
/// transmits with probability `p = min(1/2, |A|/(3Δ_est))`. Running
/// Algorithm 3 with a degree estimate chosen so its per-slot probability
/// matches (`Δ'_est = 3Δ_est`) must produce statistically indistinguishable
/// completion counts.
#[test]
fn async_ideal_equals_sync_with_matched_probability() {
    let seed = SeedTree::new(0xCE);
    let net = NetworkBuilder::ring(10)
        .universe(4)
        .build(seed.branch("net"))
        .expect("build");
    let delta_est = 4u64;
    let reps = 30u64;

    let mut async_frames = Vec::new();
    let mut sync_slots = Vec::new();
    for rep in 0..reps {
        let a = run_async_discovery(
            &net,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est).expect("positive")),
            AsyncRunConfig::until_complete(500_000),
            seed.branch("async").index(rep),
        )
        .expect("run");
        async_frames.push(a.min_full_frames_at_completion().expect("completed") as f64);

        let s = run_sync_discovery(
            &net,
            // Matched probability: min(1/2, |A|/(3Δ_est)).
            SyncAlgorithm::Uniform(SyncParams::new(3 * delta_est).expect("positive")),
            StartSchedule::Identical,
            SyncRunConfig::until_complete(500_000),
            seed.branch("sync").index(rep),
        )
        .expect("run");
        sync_slots.push(s.slots_to_complete().expect("completed") as f64);
    }

    let async_mean = Summary::from_samples(&async_frames).mean;
    let sync_mean = Summary::from_samples(&sync_slots).mean;
    let ratio = async_mean / sync_mean;
    assert!(
        (0.6..1.7).contains(&ratio),
        "aligned async frames ({async_mean:.1}) should match matched-probability sync \
         slots ({sync_mean:.1}); ratio {ratio:.2}"
    );
}

/// The aligned degenerate case must also produce identical *coverage
/// semantics*: per-frame, a unique transmitting neighbor on the listener's
/// channel is always heard (no partial-overlap effects exist when frames
/// coincide).
#[test]
fn async_ideal_aligned_deliveries_match_slotted_rules() {
    let seed = SeedTree::new(0xCF);
    let net = NetworkBuilder::complete(4)
        .universe(2)
        .build(seed.branch("net"))
        .expect("build");
    let out = run_async_discovery(
        &net,
        AsyncAlgorithm::FrameBased(AsyncParams::new(3).expect("positive")),
        AsyncRunConfig::until_complete(200_000),
        seed.branch("run"),
    )
    .expect("run");
    assert!(out.completed());
    assert!(tables_match_ground_truth(&net, out.tables()));
    // Every recorded coverage time must fall on a frame boundary multiple
    // (bursts end at slot boundaries; with ideal clocks these are exact
    // multiples of L/3 = 1000ns).
    for (_, t) in out.link_coverage() {
        let t = t.expect("complete").as_nanos();
        assert_eq!(t % 1_000, 0, "coverage time {t} not on a slot boundary");
    }
}

/// Drift must not change *what* is discoverable — only when. The same
/// network driven at δ=0 and δ=1/7 reaches the same ground truth.
#[test]
fn drift_changes_timing_not_results() {
    let seed = SeedTree::new(0xD0);
    let net = NetworkBuilder::grid(3, 3)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))
        .expect("build");
    let delta_est = net.max_degree().max(1) as u64;
    for (tag, drift) in [
        ("ideal", DriftModel::Ideal),
        (
            "limit",
            DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_micros(10),
            },
        ),
    ] {
        let out = run_async_discovery(
            &net,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est).expect("positive")),
            AsyncRunConfig::until_complete(500_000).with_clocks(ClockConfig {
                drift,
                offset_window: LocalDuration::from_micros(10),
            }),
            seed.branch(tag),
        )
        .expect("run");
        assert!(out.completed(), "{tag} did not complete");
        assert!(
            tables_match_ground_truth(&net, out.tables()),
            "{tag} produced different discoveries"
        );
    }
}
