//! Golden-trace regression tests: the determinism contract, pinned.
//!
//! Every simulation is specified to be a pure function of its master seed
//! — across platforms, thread counts and releases. These tests pin exact
//! outcomes for fixed seeds so that any accidental change to RNG
//! consumption order, medium resolution, or event scheduling is caught
//! immediately rather than silently shifting every experiment.
//!
//! If a change *intentionally* alters the trace (e.g. an algorithm fix
//! that draws randomness differently), update the constants here and note
//! it in the changelog — that is a reproducibility-breaking release.
// These suites predate the `Scenario` builder and deliberately keep
// calling the deprecated `run_*` shims: they are the compatibility
// contract that the shims must keep honoring until removal.
#![allow(deprecated)]

use mmhew::prelude::*;

fn golden_net(seed: SeedTree) -> Network {
    NetworkBuilder::grid(3, 3)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("net"))
        .expect("build")
}

#[test]
fn golden_network_parameters() {
    let net = golden_net(SeedTree::new(0x601D));
    assert_eq!(net.s_max(), 4);
    assert_eq!(net.max_degree(), 3);
    assert!((net.rho() - 0.25).abs() < 1e-12);
    assert_eq!(net.links().len(), 22);
}

#[test]
fn golden_sync_traces() {
    let seed = SeedTree::new(0x601D);
    let net = golden_net(seed);
    let cases: [(&str, SyncAlgorithm, u64, u64, u64); 3] = [
        (
            "alg1",
            SyncAlgorithm::Staged(SyncParams::new(4).expect("positive")),
            150,
            78,
            5,
        ),
        ("alg2", SyncAlgorithm::Adaptive, 470, 181, 8),
        (
            "alg3",
            SyncAlgorithm::Uniform(SyncParams::new(4).expect("positive")),
            154,
            83,
            4,
        ),
    ];
    for (name, alg, completion, deliveries, collisions) in cases {
        let out = run_sync_discovery(
            &net,
            alg,
            StartSchedule::Identical,
            SyncRunConfig::until_complete(1_000_000),
            seed.branch(name),
        )
        .expect("run");
        assert_eq!(
            out.completion_slot(),
            Some(completion),
            "{name}: completion slot drifted"
        );
        assert_eq!(
            out.deliveries(),
            deliveries,
            "{name}: delivery count drifted"
        );
        assert_eq!(
            out.collisions(),
            collisions,
            "{name}: collision count drifted"
        );
    }
}

#[test]
fn golden_async_trace() {
    let seed = SeedTree::new(0x601D);
    let net = golden_net(seed);
    let out = run_async_discovery(
        &net,
        AsyncAlgorithm::FrameBased(AsyncParams::new(4).expect("positive")),
        AsyncRunConfig::until_complete(1_000_000),
        seed.branch("alg4"),
    )
    .expect("run");
    assert_eq!(
        out.completion_time(),
        Some(RealTime::from_nanos(616_000)),
        "async completion time drifted"
    );
    assert_eq!(out.min_full_frames_at_completion(), Some(205));
    assert_eq!(out.deliveries(), 100);
}
