//! Heterogeneity sweep: watch discovery slow down as `ρ` shrinks.
//!
//! The span-ratio `ρ` is the paper's measure of how heterogeneous channel
//! availability is; every theorem carries a `1/ρ` factor. This example
//! fixes `|A(u)| = 4` and dials the common/private channel split so that
//! `ρ` walks from 1 down to 1/4, printing the measured slowdown.
//!
//! ```text
//! cargo run --release --example heterogeneity_sweep
//! ```

use mmhew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(99);
    let nodes = 6;
    let reps = 12u64;

    println!("complete graph of {nodes}, |A(u)|=4, Algorithm 1, {reps} reps per point\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "ρ", "mean slots", "slots × ρ", "Thm1 bound"
    );

    let mut baseline = None;
    for (shared, private) in [(4u16, 0u16), (3, 1), (2, 2), (1, 3)] {
        let universe = shared + nodes as u16 * private;
        let network = NetworkBuilder::complete(nodes)
            .universe(universe)
            .availability(AvailabilityModel::PairwiseOverlap { shared, private })
            .build(seed.branch("net").index(shared as u64))?;
        let delta_est = network.max_degree().max(1) as u64;
        let bounds = Bounds::from_network(&network, delta_est, 0.01);

        let mut slots = Vec::new();
        for rep in 0..reps {
            let outcome =
                Scenario::sync(&network, SyncAlgorithm::Staged(SyncParams::new(delta_est)?))
                    .config(SyncRunConfig::until_complete(2_000_000))
                    .run(seed.branch("run").index(shared as u64).index(rep))?;
            slots.push(outcome.slots_to_complete().expect("completed") as f64);
        }
        let summary = Summary::from_samples(&slots);
        println!(
            "{:>6.2} {:>12.1} {:>12.1} {:>12.0}",
            network.rho(),
            summary.mean,
            summary.mean * network.rho(),
            bounds.theorem1_slots()
        );
        baseline.get_or_insert(summary.mean);
    }

    println!(
        "\nthe slots × ρ column stays roughly constant: time ∝ 1/ρ, exactly as the analysis predicts"
    );
    Ok(())
}
