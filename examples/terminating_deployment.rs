//! A deployment-faithful run: nodes decide locally when to stop.
//!
//! The paper's algorithms loop forever; its analysis tells an *outside
//! observer* when discovery has probably finished. A real node has no such
//! observer, so here every node wraps Algorithm 3 in a quiescence detector
//! ("no new neighbor for q slots → shut down") and the simulation ends
//! when the network goes silent on its own — no global completion oracle
//! involved.
//!
//! ```text
//! cargo run --release --example terminating_deployment
//! ```

use mmhew::engine::EnergyModel;
use mmhew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(88);

    let network = NetworkBuilder::unit_disk(30, 14.0, 4.5)
        .universe(10)
        .availability(AvailabilityModel::UniformSubset { size: 5 })
        .build(seed.branch("net"))?;
    let delta_est = network.max_degree().max(1) as u64;

    println!(
        "deployment: N={}, S={}, Δ={}, ρ={:.2}, {} links",
        network.node_count(),
        network.s_max(),
        network.max_degree(),
        network.rho(),
        network.links().len()
    );

    for quiet_slots in [50u64, 500, 5_000] {
        let outcome = Scenario::sync(
            &network,
            SyncAlgorithm::Uniform(SyncParams::new(delta_est)?),
        )
        .terminating(quiet_slots)
        .starts(StartSchedule::Staggered { window: 200 })
        .config(SyncRunConfig::until_all_terminated(5_000_000))
        .run(seed.branch("run").index(quiet_slots))?;
        let missed = outcome
            .link_coverage()
            .iter()
            .filter(|(_, t)| t.is_none())
            .count();
        let energy = outcome.total_energy(&EnergyModel::default());
        println!(
            "q={quiet_slots:>5}: stopped at slot {:>6}, missed {missed:>2} links, \
             energy {energy:>9.0}",
            outcome.terminated_slot().expect("quiescence fires"),
        );
        assert!(outcome.all_terminated());
        assert!(tables_are_sound(&network, outcome.tables()));
    }

    println!(
        "\nsmall q stops fast but misses slow links; large q finds everything and idles a \
         while before deciding — the trade-off every real deployment must pick"
    );
    Ok(())
}
