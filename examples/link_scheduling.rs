//! What neighbor discovery is *for*: building a collision-free link
//! schedule.
//!
//! The paper's introduction motivates neighbor discovery as the first step
//! before MAC, clustering and collision-free scheduling, which "implicitly
//! assume that all nodes know their one-hop … neighbors". This example
//! closes that loop: run Algorithm 1, then greedily color the discovered
//! links into TDMA slots such that no two links sharing a node — or
//! colliding at a common receiver on the same channel — are scheduled
//! together, and verify the schedule against the network ground truth.
//!
//! ```text
//! cargo run --release --example link_scheduling
//! ```

use mmhew::prelude::*;
use std::collections::BTreeMap;

/// One scheduled transmission: a directed link plus the channel it uses.
#[derive(Debug, Clone, Copy)]
struct ScheduledLink {
    from: NodeId,
    to: NodeId,
    channel: ChannelId,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(31);

    let network = NetworkBuilder::unit_disk(24, 12.0, 4.0)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed.branch("net"))?;
    let delta_est = network.max_degree().max(1) as u64;

    // Phase 1: neighbor discovery (Algorithm 1).
    let outcome = Scenario::sync(&network, SyncAlgorithm::Staged(SyncParams::new(delta_est)?))
        .config(SyncRunConfig::until_complete(3_000_000))
        .run(seed.branch("discovery"))?;
    assert!(outcome.completed());
    println!(
        "discovery: {} links found in {} slots",
        network.links().len(),
        outcome.slots_to_complete().expect("completed")
    );

    // Phase 2: greedy TDMA coloring from the *discovered* tables only.
    // Each directed link picks its lowest common channel; two links
    // conflict if they share an endpoint (half-duplex) or have the same
    // receiver-side channel busy at a common neighbor of the receiver.
    let mut links: Vec<ScheduledLink> = Vec::new();
    for i in 0..network.node_count() {
        let to = NodeId::new(i as u32);
        for (from, common) in outcome.table(to).iter() {
            let channel = common.iter().next().expect("non-empty common set");
            links.push(ScheduledLink { from, to, channel });
        }
    }
    let mut slot_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, link) in links.iter().enumerate() {
        let mut slot = 0usize;
        'search: loop {
            for (j, other) in links.iter().enumerate().take(i) {
                if slot_of[&j] != slot {
                    continue;
                }
                let endpoint_clash = link.from == other.from
                    || link.from == other.to
                    || link.to == other.from
                    || link.to == other.to;
                // Same-channel interference in either direction: the other
                // transmitter audible at our receiver, or ours at theirs.
                let interference = link.channel == other.channel
                    && (network
                        .neighbors_on(link.to, link.channel)
                        .contains(&other.from)
                        || network
                            .neighbors_on(other.to, other.channel)
                            .contains(&link.from));
                if endpoint_clash || interference {
                    slot += 1;
                    continue 'search;
                }
            }
            break;
        }
        slot_of.insert(i, slot);
    }
    let num_slots = slot_of.values().max().map_or(0, |m| m + 1);
    println!(
        "schedule: {} links packed into {} TDMA slots (lower bound from max node degree: {})",
        links.len(),
        num_slots,
        network.max_degree() + 1,
    );

    // Phase 3: verify collision-freedom against the physical model.
    for slot in 0..num_slots {
        let active: Vec<&ScheduledLink> = links
            .iter()
            .enumerate()
            .filter(|(i, _)| slot_of[i] == slot)
            .map(|(_, l)| l)
            .collect();
        for l in &active {
            // The receiver must hear exactly its own transmitter on its
            // channel among all active transmitters.
            let interferers = active
                .iter()
                .filter(|o| {
                    o.channel == l.channel
                        && o.from != l.from
                        && network.neighbors_on(l.to, l.channel).contains(&o.from)
                })
                .count();
            assert_eq!(interferers, 0, "collision at {} in slot {slot}", l.to);
            assert!(
                network.neighbors_on(l.to, l.channel).contains(&l.from),
                "scheduled link must be physically real"
            );
        }
    }
    println!("verification: every slot is collision-free against the ground-truth network ✓");
    Ok(())
}
