//! Discovery through hostile spectrum: a sweeping jammer, bursty links,
//! and a crashed node — and the repetition wrapper that restores the
//! paper's success guarantee under heavy loss.
//!
//! Part 1 runs Algorithm 3 under a composite `FaultPlan` (a jammer
//! sweeping the universe, Gilbert–Elliott bursty loss on every link, one
//! node crashed for the first stretch of the run) and shows discovery
//! still completing — multichannel hopping degrades gracefully.
//!
//! Part 2 makes the conclusion's unreliable-channel claim concrete: under
//! 70% i.i.d. loss the unwrapped algorithm blows a budget it met cleanly,
//! while `RobustDiscovery` with the `⌈ln(N²/ε)/ln(1/p)⌉` repetition
//! factor completes within the proportionally inflated budget.
//!
//! ```text
//! cargo run --release --example jammed_discovery
//! # also write Part 1 as a Perfetto trace (open at ui.perfetto.dev):
//! cargo run --release --example jammed_discovery -- hostile.pftrace
//! ```

use mmhew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(11);
    let pftrace = std::env::args().nth(1);

    // A complete graph of 6 nodes over a 5-channel universe.
    let network = NetworkBuilder::complete(6)
        .universe(5)
        .build(seed.branch("net"))?;
    let delta = network.max_degree().max(1) as u64;
    let universe = network.universe_size();

    // --- Part 1: composite faults -------------------------------------
    // A jammer dwelling 200 slots per channel sweeps the whole universe;
    // every link is a bursty Gilbert-Elliott channel losing 20% of beacons
    // in mean bursts of 6; node 5's radio is down for the first 300 slots.
    let plan = FaultPlan::new()
        .with_default_loss(LinkLossModel::GilbertElliott(GilbertElliott::bursty(
            0.2, 6.0,
        )))
        .with_jamming(JamSchedule::sweeping(universe, 200, 50_000))
        .with_crashes(CrashSchedule::outage(NodeId::new(5), 0, 300));

    let mut scenario = Scenario::sync(&network, SyncAlgorithm::Uniform(SyncParams::new(delta)?))
        .with_faults(plan)
        .config(SyncRunConfig::until_complete(500_000));
    if let Some(path) = &pftrace {
        scenario = scenario.with_perfetto(path.as_str());
    }
    let outcome = scenario.run(seed.branch("hostile"))?;
    let slots = outcome.slots_to_complete().expect("completed");
    println!("hostile spectrum: jammer sweep + bursty links + crashed node");
    if let Some(path) = &pftrace {
        println!("  wrote {path} — open it at https://ui.perfetto.dev");
    }
    println!(
        "  completed in {slots} slots ({} beacons lost to links, {} to jamming)",
        outcome.beacon_losses(),
        outcome.jam_losses()
    );
    assert!(outcome.completed(), "hopping must route around the jammer");
    assert!(tables_match_ground_truth(&network, outcome.tables()));
    println!("  all 6 tables match the ground truth ✓");

    // --- Part 2: the repetition factor --------------------------------
    // Calibrate a budget on a clean channel, then impose 70% loss.
    let clean = Scenario::sync(&network, SyncAlgorithm::Uniform(SyncParams::new(delta)?))
        .config(SyncRunConfig::until_complete(500_000))
        .run(seed.branch("clean"))?;
    let budget = 2 * clean.slots_to_complete().expect("completed");
    let p_loss = 0.7;
    let lossy = FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
        delivery_probability: 1.0 - p_loss,
    });

    let unwrapped = Scenario::sync(&network, SyncAlgorithm::Uniform(SyncParams::new(delta)?))
        .with_faults(lossy.clone())
        .config(SyncRunConfig::until_complete(budget))
        .run(seed.branch("unwrapped"))?;
    println!(
        "\n70% loss, budget {budget} slots: unwrapped completed = {}",
        unwrapped.completed()
    );

    let r = repetition_factor(network.node_count(), 0.1, p_loss);
    let robust = Scenario::sync(&network, SyncAlgorithm::Uniform(SyncParams::new(delta)?))
        .robust(r)
        .with_faults(lossy)
        .config(SyncRunConfig::until_complete(r * budget))
        .run(seed.branch("robust"))?;
    println!(
        "robust r={r} (ε=0.1), budget {} slots: completed = {}",
        r * budget,
        robust.completed()
    );
    assert!(robust.completed(), "repetition restores the guarantee");
    assert!(tables_match_ground_truth(&network, robust.tables()));
    println!("repetition wrapper recovered every link through the loss ✓");
    Ok(())
}
