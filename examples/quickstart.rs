//! Quickstart: build a heterogeneous network, run Algorithm 1, and inspect
//! what a node discovered.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mmhew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(42);

    // A 4x4 grid deployment. The universe has 12 channels; spatial spectrum
    // use means each node only perceives 6 of them as available.
    let network = NetworkBuilder::grid(4, 4)
        .universe(12)
        .availability(AvailabilityModel::UniformSubset { size: 6 })
        .build(seed.branch("net"))?;

    println!(
        "network: N={} nodes, |U|={} channels",
        network.node_count(),
        network.universe_size()
    );
    println!(
        "paper parameters: S={}, Δ={}, ρ={:.2}, links to discover={}",
        network.s_max(),
        network.max_degree(),
        network.rho(),
        network.links().len()
    );

    // All nodes agree on an upper bound for the maximum per-channel degree.
    let delta_est = network.max_degree().max(1) as u64;
    let bounds = Bounds::from_network(&network, delta_est, 0.01);
    println!(
        "Theorem 1 bound (ε=0.01): {:.0} slots",
        bounds.theorem1_slots()
    );

    // Run Algorithm 1: synchronous, identical start times, known Δ_est.
    let outcome = Scenario::sync(&network, SyncAlgorithm::Staged(SyncParams::new(delta_est)?))
        .config(SyncRunConfig::until_complete(1_000_000))
        .run(seed.branch("run"))?;

    println!(
        "\ndiscovery completed in {} slots ({} deliveries, {} collisions)",
        outcome.slots_to_complete().expect("completed"),
        outcome.deliveries(),
        outcome.collisions()
    );

    // What did the corner node learn?
    let corner = NodeId::new(0);
    println!("\nnode {corner} (A = {}):", network.available(corner));
    for (neighbor, common) in outcome.table(corner).iter() {
        println!("  discovered {neighbor} with common channels {common}");
    }

    // Every node's table must equal the ground truth exactly.
    assert!(tables_match_ground_truth(&network, outcome.tables()));
    println!(
        "\nall {} nodes match the ground truth ✓",
        network.node_count()
    );
    Ok(())
}
