//! Why not just run single-channel discovery on every channel?
//!
//! The paper's introduction dismantles the obvious multi-channel
//! extension: time-multiplex one birthday-protocol instance per channel of
//! the *universal* set. Its running time is linear in `|U|` even when
//! every node only owns a handful of channels. This example pits that
//! strawman against Algorithm 3 while the universe grows and the available
//! sets stay fixed.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use mmhew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(5);
    let nodes = 6;
    let reps = 10u64;

    println!("complete graph of {nodes}; every node owns channels {{0..4}}; {reps} reps\n");
    println!(
        "{:>6} {:>12} {:>16} {:>10}",
        "|U|", "Alg3 slots", "strawman slots", "speedup"
    );

    for universe in [8u16, 16, 32, 64] {
        let shared: ChannelSet = (0u16..4).collect();
        let network = NetworkBuilder::complete(nodes)
            .universe(universe)
            .availability(AvailabilityModel::Explicit(vec![shared; nodes]))
            .build(seed.branch("net").index(universe as u64))?;
        let delta_est = network.max_degree().max(1) as u64;

        let mean = |alg: SyncAlgorithm, tag: &str| -> Result<f64, ProtocolError> {
            let mut total = 0.0;
            for rep in 0..reps {
                let outcome = Scenario::sync(&network, alg)
                    .config(SyncRunConfig::until_complete(2_000_000))
                    .run(seed.branch(tag).index(universe as u64).index(rep))?;
                total += outcome.slots_to_complete().expect("completed") as f64;
            }
            Ok(total / reps as f64)
        };

        let ours = mean(SyncAlgorithm::Uniform(SyncParams::new(delta_est)?), "ours")?;
        let strawman = mean(
            SyncAlgorithm::PerChannelBirthday {
                tx_probability: 0.5,
            },
            "strawman",
        )?;
        println!(
            "{universe:>6} {ours:>12.1} {strawman:>16.1} {:>9.1}x",
            strawman / ours
        );
    }

    println!(
        "\nthe strawman pays for every channel in the universe; the paper's algorithms only pay \
         for the channels nodes actually have"
    );
    Ok(())
}
