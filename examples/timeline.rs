//! Slot-by-slot timeline of a discovery run — watch the randomized
//! protocol work.
//!
//! Renders the first slots of Algorithm 1 on a small heterogeneous
//! network: one row per node, one column per slot. Uppercase letters are
//! transmissions (A = channel 0, B = channel 1, ...), lowercase are
//! listens, `.` is quiet; `!` flags a slot in which the node received a
//! clear beacon.
//!
//! The drawing itself is `mmhew_obs::TimelineSink` — the same renderer
//! `simulate --timeline` uses — attached to the engine as an event sink.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use mmhew::discovery::{StagedDiscovery, SyncParams};
use mmhew::engine::{SyncEngine, SyncProtocol, SyncRunConfig};
use mmhew::prelude::*;

const SLOTS_TO_SHOW: usize = 72;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(11);
    let network = NetworkBuilder::ring(8)
        .universe(3)
        .availability(AvailabilityModel::UniformSubset { size: 2 })
        .build(seed.branch("net"))?;
    let delta_est = network.max_degree().max(1) as u64;

    println!(
        "ring of {}, universe {}, S={}, Δ={}, ρ={:.2} — Algorithm 1, Δ_est={delta_est}\n",
        network.node_count(),
        network.universe_size(),
        network.s_max(),
        network.max_degree(),
        network.rho()
    );

    let protocols: Vec<Box<dyn SyncProtocol>> = (0..network.node_count())
        .map(|i| {
            let available = network.available(NodeId::new(i as u32)).to_owned();
            Box::new(
                StagedDiscovery::new(available, SyncParams::new(delta_est).expect("positive"))
                    .expect("non-empty set"),
            ) as Box<dyn SyncProtocol>
        })
        .collect();
    let mut sink = TimelineSink::new(SLOTS_TO_SHOW);
    let engine = SyncEngine::new(
        &network,
        protocols,
        vec![0; network.node_count()],
        seed.branch("run"),
    )
    .with_sink(&mut sink);
    let outcome = engine.run(SyncRunConfig::fixed(SLOTS_TO_SHOW as u64));

    println!("slot      {}", sink.ruler());
    for (i, row) in sink.rows().iter().enumerate() {
        let u = NodeId::new(i as u32);
        println!("node {i:<3}  {row}   A = {}", network.available(u));
    }
    println!(
        "\nlegend: UPPERCASE = transmit on channel, lowercase = listen, ! = clear beacon \
         received, . = quiet"
    );
    let covered = outcome
        .link_coverage()
        .iter()
        .filter(|(_, t)| t.is_some())
        .count();
    println!(
        "{} clear deliveries in {SLOTS_TO_SHOW} slots; {}/{} links covered so far",
        sink.deliveries(),
        covered,
        outcome.link_coverage().len()
    );
    Ok(())
}
