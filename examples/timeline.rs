//! Slot-by-slot timeline of a discovery run — watch the randomized
//! protocol work.
//!
//! Renders the first slots of Algorithm 1 on a small heterogeneous
//! network: one row per node, one column per slot. Uppercase letters are
//! transmissions (A = channel 0, B = channel 1, ...), lowercase are
//! listens, `.` is quiet; `!` flags a slot in which the node received a
//! clear beacon.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use mmhew::discovery::{StagedDiscovery, SyncParams};
use mmhew::engine::{SyncEngine, SyncProtocol, SyncRunConfig};
use mmhew::prelude::*;
use mmhew::radio::SlotAction;

const SLOTS_TO_SHOW: usize = 72;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(11);
    let network = NetworkBuilder::ring(8)
        .universe(3)
        .availability(AvailabilityModel::UniformSubset { size: 2 })
        .build(seed.branch("net"))?;
    let delta_est = network.max_degree().max(1) as u64;

    println!(
        "ring of {}, universe {}, S={}, Δ={}, ρ={:.2} — Algorithm 1, Δ_est={delta_est}\n",
        network.node_count(),
        network.universe_size(),
        network.s_max(),
        network.max_degree(),
        network.rho()
    );

    let protocols: Vec<Box<dyn SyncProtocol>> = (0..network.node_count())
        .map(|i| {
            let available = network.available(NodeId::new(i as u32)).clone();
            Box::new(
                StagedDiscovery::new(available, SyncParams::new(delta_est).expect("positive"))
                    .expect("non-empty set"),
            ) as Box<dyn SyncProtocol>
        })
        .collect();
    let mut engine = SyncEngine::new(
        &network,
        protocols,
        vec![0; network.node_count()],
        seed.branch("run"),
    );

    // Record the timeline.
    let config = SyncRunConfig::fixed(SLOTS_TO_SHOW as u64);
    let mut rows = vec![String::new(); network.node_count()];
    let mut total_deliveries = 0;
    for _ in 0..SLOTS_TO_SHOW {
        let (actions, outcome) = engine.step_traced(&config);
        for (i, action) in actions.iter().enumerate() {
            let received = outcome.deliveries.iter().any(|d| d.to.index() as usize == i);
            let ch = |c: ChannelId| (b'a' + (c.index() % 26) as u8) as char;
            let symbol = match action {
                SlotAction::Transmit { channel } => ch(*channel).to_ascii_uppercase(),
                SlotAction::Listen { channel } => {
                    if received {
                        '!'
                    } else {
                        ch(*channel)
                    }
                }
                SlotAction::Quiet => '.',
            };
            rows[i].push(symbol);
        }
        total_deliveries += outcome.deliveries.len();
    }

    println!("slot      {}", ruler(SLOTS_TO_SHOW));
    for (i, row) in rows.iter().enumerate() {
        let u = NodeId::new(i as u32);
        println!("node {i:<3}  {row}   A = {}", network.available(u));
    }
    println!(
        "\nlegend: UPPERCASE = transmit on channel, lowercase = listen, ! = clear beacon \
         received, . = quiet"
    );
    println!(
        "{} clear deliveries in {SLOTS_TO_SHOW} slots; {}/{} links covered so far",
        total_deliveries,
        engine.tracker().covered(),
        engine.tracker().expected()
    );
    Ok(())
}

fn ruler(width: usize) -> String {
    (0..width)
        .map(|i| {
            if i % 10 == 0 {
                char::from_digit(((i / 10) % 10) as u32, 10).expect("digit")
            } else {
                '·'
            }
        })
        .collect()
}
