//! Asynchronous sensor grid: Algorithm 4 under worst-case clock drift.
//!
//! A grid of battery-powered sensors wakes up over a 100 µs window. Their
//! cheap oscillators drift — magnitude and sign changing over time — right
//! up to the paper's Assumption 1 limit `δ = 1/7`, with arbitrary clock
//! offsets. No slot synchronization exists anywhere. Algorithm 4 must
//! still discover every link, within Theorem 9's frame bound.
//!
//! ```text
//! cargo run --release --example sensor_grid_async
//! ```

use mmhew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(7);

    let network = NetworkBuilder::grid(4, 4)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(seed.branch("net"))?;
    let delta_est = network.max_degree().max(1) as u64;

    println!(
        "sensor grid: N={}, S={}, Δ={}, ρ={:.2}",
        network.node_count(),
        network.s_max(),
        network.max_degree(),
        network.rho()
    );

    // Frames of 3 µs (1 µs slots); drift resampled every 15 µs within
    // ±1/7; offsets up to 30 µs; starts spread over 100 µs.
    let frame_len = LocalDuration::from_nanos(3_000);
    let config = AsyncRunConfig::until_complete(2_000_000)
        .with_frame_len(frame_len)
        .with_clocks(ClockConfig {
            drift: DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_nanos(15_000),
            },
            offset_window: LocalDuration::from_nanos(30_000),
        })
        .with_starts(AsyncStartSchedule::Staggered {
            window: RealDuration::from_nanos(100_000),
        });

    let outcome = Scenario::asynchronous(
        &network,
        AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est)?),
    )
    .config(config)
    .run(seed.branch("run"))?;

    let bounds = Bounds::from_network(&network, delta_est, 0.01);
    let frames = outcome
        .min_full_frames_at_completion()
        .expect("discovery completed");
    println!("\nlast node started at  T_s = {}", outcome.latest_start());
    println!(
        "discovery complete at T_c = {}",
        outcome.completion_time().expect("completed")
    );
    println!(
        "frames after T_s: {frames} measured vs {:.0} Theorem 9 bound",
        bounds.theorem9_frames()
    );
    println!(
        "real time after T_s: {:.1} µs measured vs {:.1} µs Theorem 10 bound",
        outcome
            .completion_time()
            .expect("completed")
            .saturating_duration_since(outcome.latest_start())
            .as_nanos() as f64
            / 1_000.0,
        bounds.theorem10_realtime_ns(frame_len.as_nanos(), 1.0 / 7.0) / 1_000.0,
    );

    assert!((frames as f64) < bounds.theorem9_frames());
    assert!(tables_match_ground_truth(&network, outcome.tables()));
    println!("\nall tables match the ground truth despite drift and misalignment ✓");
    Ok(())
}
