//! Head-to-head: the paper's algorithms vs the rival shelf.
//!
//! Every synchronous protocol registered in `mmhew_rivals::catalog` is
//! raced on the same network with the same seeds: a complete graph where
//! each node owns a random 3-channel subset of a 5-channel universe —
//! heterogeneous availability, the regime the paper targets and the
//! deterministic rivals were not designed for. A second pass on full
//! availability shows the rivals at their best.
//!
//! ```text
//! cargo run --release --example rivals_head_to_head
//! ```

use mmhew::prelude::*;
use mmhew::rivals::{catalog, Family};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(20260807);
    let nodes = 8;
    let universe = 5u16;
    let reps = 8u64;
    let budget = 400_000u64;
    let model = EnergyModel::default();

    for (label, availability) in [
        (
            "full availability (rival-friendly)",
            AvailabilityModel::Full,
        ),
        (
            "random 3-of-5 subsets (heterogeneous)",
            AvailabilityModel::UniformSubset { size: 3 },
        ),
    ] {
        let network = NetworkBuilder::complete(nodes)
            .universe(universe)
            .availability(availability)
            .build(seed.branch("net").branch(label))?;
        let delta_est = network.max_degree().max(1) as u64;

        println!("complete graph of {nodes}, |U|={universe}, {label}; {reps} reps");
        println!(
            "{:>12} {:>12} {:>12} {:>14} {:>9}",
            "protocol", "mean slots", "max slots", "energy/nd/slot", "failures"
        );

        for name in catalog::names(Family::Sync) {
            let kind = catalog::by_name(name).expect("listed name resolves");
            let mut slots = Vec::new();
            let mut energy = 0.0;
            let mut failures = 0u64;
            for rep in 0..reps {
                let stack = kind.build_sync(&network, delta_est)?;
                let outcome = Scenario::sync_stack(&network, stack)
                    .config(SyncRunConfig::until_complete(budget))
                    .run(seed.branch("run").branch(label).index(rep))?;
                match outcome.slots_to_complete() {
                    Some(s) => slots.push(s as f64),
                    None => failures += 1,
                }
                let denom = (nodes as u64 * outcome.slots_executed()).max(1) as f64;
                energy += outcome.total_energy(&model) / denom;
            }
            let s = Summary::from_samples(&slots);
            let fmt = |v: f64| {
                if v.is_finite() {
                    format!("{v:.0}")
                } else {
                    "—".to_string()
                }
            };
            println!(
                "{:>12} {:>12} {:>12} {:>14.3} {:>9}",
                name,
                fmt(s.mean),
                fmt(s.max),
                energy / reps as f64,
                failures
            );
        }
        println!();
    }

    println!(
        "deterministic hopping is cheap and fast when every node owns every channel, but \
         heterogeneous subsets break its coverage guarantee — the paper's randomized \
         algorithms keep completing either way"
    );
    Ok(())
}
