//! Cognitive-radio city: the scenario from the paper's introduction.
//!
//! Secondary (CR) nodes are scattered over a city. Licensed primary users
//! — TV stations, public-safety radios — occupy channels within their
//! footprints, so each CR node perceives a *different* subset of the
//! spectrum as available. No node knows the maximum degree, so the nodes
//! run Algorithm 2 (adaptive estimate).
//!
//! ```text
//! cargo run --release --example cognitive_radio_city
//! ```

use mmhew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(2026);

    // 40 CR nodes in a 20x20 km city, radio range 6 km, 16-channel
    // universe, 7 primary users each occupying 4 channels within 8 km.
    let mut network = None;
    for attempt in 0..32u64 {
        let candidate = NetworkBuilder::unit_disk(40, 20.0, 6.0)
            .universe(16)
            .availability(AvailabilityModel::SpatialPrimaryUsers {
                primaries: 7,
                radius: 8.0,
                channels_per_primary: 4,
            })
            .build(seed.branch("net").index(attempt))?;
        // A node inside many footprints can lose its whole spectrum; such
        // a node cannot participate (the paper assumes A(u) ≠ ∅), so we
        // resample the deployment — in practice that node would relocate
        // or wait for spectrum to free up.
        let ok = (0..candidate.node_count())
            .all(|i| !candidate.available(NodeId::new(i as u32)).is_empty());
        if ok {
            network = Some(candidate);
            break;
        }
    }
    let network = network.expect("a viable deployment within 32 attempts");

    println!("CR city: N={} secondary users", network.node_count());
    let sizes: Vec<usize> = (0..network.node_count())
        .map(|i| network.available(NodeId::new(i as u32)).len())
        .collect();
    println!(
        "available channels per node: min={} max={} (universe {})",
        sizes.iter().min().expect("nodes"),
        sizes.iter().max().expect("nodes"),
        network.universe_size()
    );
    println!(
        "heterogeneity: S={}, Δ={}, ρ={:.2}, {} directed links",
        network.s_max(),
        network.max_degree(),
        network.rho(),
        network.links().len()
    );

    // Nobody knows Δ here — Algorithm 2 estimates it online.
    let outcome = Scenario::sync(&network, SyncAlgorithm::Adaptive)
        .config(SyncRunConfig::until_complete(5_000_000))
        .run(seed.branch("run"))?;

    println!(
        "\nAlgorithm 2 (no degree knowledge) completed in {} slots",
        outcome.slots_to_complete().expect("completed")
    );
    assert!(tables_match_ground_truth(&network, outcome.tables()));

    // Show the most and least connected nodes.
    let mut by_degree: Vec<(usize, usize)> = (0..network.node_count())
        .map(|i| (i, outcome.table(NodeId::new(i as u32)).len()))
        .collect();
    by_degree.sort_by_key(|&(_, d)| d);
    let (lone, lone_d) = by_degree[0];
    let (hub, hub_d) = by_degree[by_degree.len() - 1];
    println!("least connected: node {lone} with {lone_d} neighbors");
    println!("most connected:  node {hub} with {hub_d} neighbors");
    println!("\nall tables match the directed ground truth ✓");
    Ok(())
}
