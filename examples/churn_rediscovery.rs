//! Churn re-discovery: a node joins a *running* network and is discovered
//! within the static Theorem 3 budget.
//!
//! Five nodes run Algorithm 3 from slot 0 and finish discovering each
//! other. A sixth node then joins mid-run — a `DynamicsSchedule` inserts
//! the node and its edges, and an explicit start schedule wakes its
//! protocol at the same slot. Because Algorithm 3 tolerates arbitrary
//! start times, Theorem 3 prices this join exactly like a fresh start at
//! `T_s = join slot`: the paper's static analysis transfers to the
//! dynamic setting unchanged.
//!
//! ```text
//! cargo run --release --example churn_rediscovery
//! ```

use mmhew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = SeedTree::new(7);

    // A complete graph of 6 nodes over a 4-channel universe (full
    // availability keeps the example's focus on the dynamics).
    let network = NetworkBuilder::complete(6)
        .universe(4)
        .build(seed.branch("net"))?;
    let joiner = NodeId::new(5);
    let delta = network.max_degree().max(1) as u64;
    let bound = Bounds::from_network(&network, delta, 0.01).theorem3_slots();

    // The join happens long after the incumbents have finished among
    // themselves, so the tail of the run isolates the re-discovery.
    let join_slot = bound.ceil() as u64 * 2;
    println!(
        "N=6 complete graph, Δ={delta}; Theorem 3 budget {:.0} slots",
        bound
    );
    println!("node {joiner} leaves at slot 0 and rejoins at slot {join_slot}");

    // The mutation schedule: remove the joiner before the run starts,
    // then re-insert it (node + both edge directions) at `join_slot`.
    let mut events = vec![TimedEvent::new(0, NetworkEvent::NodeLeave { node: joiner })];
    events.push(TimedEvent::new(
        join_slot,
        NetworkEvent::NodeJoin {
            node: joiner,
            position: network.topology().position(joiner),
            available: network.available(joiner).to_owned(),
        },
    ));
    for i in 0..5 {
        let other = NodeId::new(i);
        events.push(TimedEvent::new(
            join_slot,
            NetworkEvent::EdgeAdd {
                from: joiner,
                to: other,
            },
        ));
        events.push(TimedEvent::new(
            join_slot,
            NetworkEvent::EdgeAdd {
                from: other,
                to: joiner,
            },
        ));
    }
    let schedule = DynamicsSchedule::new(events);

    // Incumbents start at slot 0; the joiner's protocol wakes at the
    // slot its `NodeJoin` event fires.
    let starts: Vec<u64> = (0..6).map(|i| if i == 5 { join_slot } else { 0 }).collect();
    let outcome = Scenario::sync(&network, SyncAlgorithm::Uniform(SyncParams::new(delta)?))
        .starts(StartSchedule::Explicit(starts))
        .with_dynamics(schedule)
        .config(SyncRunConfig::until_complete(
            join_slot + bound.ceil() as u64 * 4,
        ))
        .run(seed.branch("run"))?;

    // `slots_to_complete` counts from the *latest* start — the join slot —
    // so it is exactly the re-discovery latency Theorem 3 bounds.
    let rediscovery = outcome.slots_to_complete().expect("completed");
    println!(
        "\nre-discovered in {rediscovery} slots after the join \
         ({:.0}% of the static budget)",
        100.0 * rediscovery as f64 / bound
    );
    assert!((rediscovery as f64) < bound, "within the Theorem 3 bound");

    // After the join the network is back to the full complete graph, so
    // every table must match the original ground truth exactly.
    assert!(tables_match_ground_truth(&network, outcome.tables()));
    println!("all 6 tables match the ground truth ✓");
    Ok(())
}
